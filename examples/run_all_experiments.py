#!/usr/bin/env python3
"""Regenerate every reconstructed table/figure of the paper (E1..E9).

This is the one-stop reproduction driver: it runs each experiment at full
scale and prints the table/series the paper reported.  Expect a few
minutes of wall clock.

Run:  python examples/run_all_experiments.py [E2 E9 ...]
"""

import sys
import time

from repro.experiments import EXPERIMENTS, run_experiment


def main() -> None:
    requested = sys.argv[1:] or sorted(EXPERIMENTS)
    for experiment_id in requested:
        start = time.time()
        result = run_experiment(experiment_id)
        elapsed = time.time() - start
        print(result.render())
        print(f"({elapsed:.1f} s)")
        print()


if __name__ == "__main__":
    main()

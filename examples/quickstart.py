#!/usr/bin/env python3
"""Quickstart: run the power-aware online-testing manycore simulator.

Builds the paper's default platform (8x8 mesh at 16 nm under an 80 W TDP),
offers it a dynamic task-graph workload, and lets the proposed power-aware
test scheduler screen cores in their idle periods — then prints what
happened.

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, run_system
from repro.metrics import format_table


def main() -> None:
    config = SystemConfig(
        width=8,
        height=8,
        node_name="16nm",
        tdp_w=80.0,
        horizon_us=30_000.0,       # 30 ms of chip time
        arrival_rate_per_ms=8.0,
        test_policy="power-aware",  # the paper's scheduler
        mapper="test-aware",        # the paper's mapper
        seed=1,
    )
    print(
        f"platform: {config.width}x{config.height} mesh @ {config.node_name}, "
        f"TDP {config.tdp_w:.0f} W"
    )
    result = run_system(config)

    summary = result.summary()
    rows = [[key, value] for key, value in summary.items()]
    print(format_table(["metric", "value"], rows, precision=4))

    print()
    print(
        f"tests completed: {result.tests_completed} across "
        f"{len(result.per_core_tests)} cores, "
        f"{result.test_power_share * 100:.2f}% of chip energy"
    )
    print(
        f"budget violations: {result.metrics.audit.violations} "
        f"(rate {result.metrics.audit.violation_rate:.4f})"
    )


if __name__ == "__main__":
    main()

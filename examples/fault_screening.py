#!/usr/bin/env python3
"""Fault-screening campaign: inject aging-driven permanent faults and watch
the online test schedulers find them.

Latent faults are injected with an age-dependent hazard and manifest only
at (or above) a random DVFS corner, so schedulers that rotate test levels
catch marginal defects the nominal-only policy misses.  The script reports
per-scheduler detection rate, latency, and the exposure time during which
a faulty core kept computing undetected.

Run:  python examples/fault_screening.py
"""

from dataclasses import replace

from repro import SystemConfig, run_system
from repro.metrics import format_table


def main() -> None:
    base = SystemConfig(
        horizon_us=60_000.0,
        arrival_rate_per_ms=8.0,
        fault_hazard_per_us=5e-6,   # accelerated wear-out for the demo
        seed=13,
    )
    rows = []
    for policy in ("power-aware", "round-robin", "unaware", "none"):
        result = run_system(replace(base, test_policy=policy))
        records = result.fault_records
        detected = [r for r in records if r.detected]
        latencies = [r.detection_latency() for r in detected]
        rows.append(
            [
                policy,
                len(records),
                len(detected),
                f"{100.0 * len(detected) / len(records):.0f}%" if records else "-",
                f"{sum(latencies) / len(latencies):.0f}" if latencies else "-",
                f"{max(latencies):.0f}" if latencies else "-",
            ]
        )
    print(
        format_table(
            [
                "scheduler", "injected", "detected", "rate",
                "mean latency (us)", "max latency (us)",
            ],
            rows,
            title="permanent-fault screening over 60 ms (hazard accelerated)",
        )
    )
    print()
    print(
        "note: 'none' never detects — exactly the silent-corruption risk "
        "online testing exists to remove."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Mapping playground: visualise what the test-aware mapper changes.

Runs the same moderate workload under the contiguous baseline and the
proposed test-aware utilization-oriented mapper, then draws an ASCII heat
map of the chip: per-core busy time and per-core completed tests.  The
test-aware mapper spreads stress and leaves criticality hot-spots idle
long enough to be tested, without giving up region contiguity.

Run:  python examples/mapping_playground.py
"""

from dataclasses import replace
from typing import Dict

from repro import SystemConfig, run_system
from repro.metrics import format_table


def heat_map(values: Dict[int, float], width: int, height: int, title: str) -> str:
    """Render per-core values as a width x height ASCII grid (0-9 scale)."""
    peak = max(values.values()) if values else 0.0
    lines = [title]
    for y in range(height):
        cells = []
        for x in range(width):
            v = values.get(y * width + x, 0.0)
            scaled = int(round(9 * v / peak)) if peak > 0 else 0
            cells.append(str(scaled))
        lines.append(" ".join(cells))
    return "\n".join(lines)


def main() -> None:
    base = SystemConfig(
        horizon_us=60_000.0,
        arrival_rate_per_ms=3.0,   # moderate load: the mapper has choices
        seed=11,
    )
    rows = []
    for mapper in ("contiguous", "test-aware"):
        result = run_system(replace(base, mapper=mapper))
        stats = result.test_stats
        rows.append(
            [
                mapper,
                result.throughput_ops_per_us,
                result.noc_avg_hops,
                stats.completed,
                stats.aborted,
                stats.mean_gap_us(),
                stats.max_gap_us(),
            ]
        )
        print(
            heat_map(
                {k: float(v) for k, v in result.per_core_busy_us.items()},
                base.width, base.height,
                f"[{mapper}] busy time per core (0-9 scale)",
            )
        )
        print(
            heat_map(
                {k: float(v) for k, v in result.per_core_tests.items()},
                base.width, base.height,
                f"[{mapper}] tests per core (0-9 scale)",
            )
        )
        print()
    print(
        format_table(
            [
                "mapper", "throughput", "avg hops", "tests",
                "aborted", "mean gap (us)", "max gap (us)",
            ],
            rows,
            precision=2,
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Online-test campaign: the paper's headline comparison, end to end.

Runs the same 60 ms workload under four test schedulers and reports the
throughput penalty each pays, the power-budget violations each causes,
and a sparkline of chip power against the TDP — the scenario the paper's
introduction motivates (screen aging cores at runtime without hurting the
workload or the power cap).

Run:  python examples/online_test_campaign.py
"""

from dataclasses import replace

from repro import SystemConfig, run_system
from repro.metrics import format_table, sparkline


def main() -> None:
    base = SystemConfig(
        horizon_us=60_000.0,
        arrival_rate_per_ms=8.0,
        seed=11,
    )
    print(f"TDP cap: {base.tdp_w:.0f} W, horizon {base.horizon_us / 1000:.0f} ms")
    print()

    baseline_throughput = None
    rows = []
    power_lines = []
    for policy in ("none", "power-aware", "unaware", "round-robin"):
        result = run_system(replace(base, test_policy=policy))
        throughput = result.throughput_ops_per_us
        if baseline_throughput is None:
            baseline_throughput = throughput
        penalty = 100.0 * (1.0 - throughput / baseline_throughput)
        rows.append(
            [
                policy,
                throughput,
                penalty,
                result.tests_completed,
                result.test_power_share * 100.0,
                result.metrics.audit.violation_rate * 100.0,
            ]
        )
        grid = [i * 500.0 for i in range(int(base.horizon_us / 500.0))]
        series = result.metrics.trace.resample("power.total", grid)
        power_lines.append((policy, sparkline(series)))

    print(
        format_table(
            [
                "scheduler", "throughput(ops/us)", "penalty(%)",
                "tests", "test-energy(%)", "violations(%)",
            ],
            rows,
            precision=2,
        )
    )
    print()
    print("chip power over time (each line spans the run, cap is the ceiling):")
    for policy, line in power_lines:
        print(f"  {policy:12s} {line}")
    print()
    proposed = rows[1]
    print(
        f"=> proposed scheduler: {proposed[3]} tests at "
        f"{proposed[2]:.2f}% throughput penalty "
        f"(paper claim: < 1%) and {proposed[5]:.1f}% budget violations"
    )


if __name__ == "__main__":
    main()

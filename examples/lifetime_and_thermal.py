#!/usr/bin/env python3
"""Lifetime and thermal view of the online-testing system.

Two extensions on top of the DATE'15 baseline evaluation:

1. **Lifetime** (the authors' DATE'16 companion direction): the
   utilization-oriented mapper levels wear-out stress across the die,
   which extends the chip's expected time-to-first-failure.  We run the
   same workload under three mappers and extrapolate lifetime with a
   Weibull wear-out law.
2. **Thermal**: with the RC thermal model enabled, the high-toggle SBST
   sessions are deferred whenever the die is within a margin of the
   junction limit; the run reports the observed peak temperature.

Run:  python examples/lifetime_and_thermal.py
"""

from dataclasses import replace

from repro import SystemConfig, run_system
from repro.aging import LifetimeAnalyzer, LifetimeParameters
from repro.metrics import format_table


def lifetime_view() -> None:
    base = SystemConfig(horizon_us=40_000.0, arrival_rate_per_ms=3.0, seed=11)
    analyzer = LifetimeAnalyzer(LifetimeParameters())
    rows = []
    baseline_report = None
    for mapper in ("contiguous", "scatter", "test-aware"):
        result = run_system(replace(base, mapper=mapper))
        report = analyzer.analyze(result.per_core_age_stress, base.horizon_us)
        if mapper == "contiguous":
            baseline_report = report
        gain = LifetimeAnalyzer.lifetime_gain_pct(baseline_report, report)
        rows.append(
            [
                mapper,
                report.stress_max,
                report.wear_imbalance,
                report.expected_lifetime_hours,
                gain,
            ]
        )
    print(
        format_table(
            [
                "mapper", "max stress", "wear imbalance",
                "expected lifetime (h)", "gain vs contiguous (%)",
            ],
            rows,
            precision=2,
            title="lifetime extrapolation (Weibull wear-out on accrued stress)",
        )
    )


def thermal_view() -> None:
    base = SystemConfig(
        horizon_us=40_000.0,
        arrival_rate_per_ms=8.0,
        seed=11,
        thermal_enabled=True,
    )
    rows = []
    for margin in (0.0, 5.0, 20.0):
        result = run_system(replace(base, thermal_test_margin_c=margin))
        rows.append(
            [
                margin,
                result.peak_temperature_c,
                result.tests_completed,
                result.throughput_ops_per_us,
            ]
        )
    print(
        format_table(
            ["test margin (C)", "peak temp (C)", "tests", "throughput"],
            rows,
            precision=2,
            title="thermal guard: defer tests when the die runs hot",
        )
    )


def main() -> None:
    lifetime_view()
    print()
    thermal_view()


if __name__ == "__main__":
    main()

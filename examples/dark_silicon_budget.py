#!/usr/bin/env python3
"""Dark-silicon arithmetic and the budget squeeze across technology nodes.

Shows (a) the static picture — how many cores of an 8x8 chip can run at
peak under a fixed 80 W TDP at each node — and (b) the dynamic picture:
the same workload simulated at 45 nm and 16 nm, with the PID power manager
absorbing the squeeze through fine-grained DVFS while the proposed test
scheduler keeps screening cores from whatever budget is left over.

Run:  python examples/dark_silicon_budget.py
"""

from dataclasses import replace

from repro import SystemConfig, get_node, node_names, run_system
from repro.metrics import format_table


def static_picture(n_cores: int, tdp_w: float) -> None:
    rows = []
    for name in node_names():
        node = get_node(name)
        lit = node.lit_fraction(n_cores, tdp_w)
        rows.append(
            [
                name,
                node.peak_core_power(),
                n_cores * node.peak_core_power(),
                lit * 100.0,
                (1.0 - lit) * 100.0,
                int(lit * n_cores),
            ]
        )
    print(
        format_table(
            [
                "node", "peak W/core", "demand (W)",
                "lit (%)", "dark (%)", "cores at peak",
            ],
            rows,
            precision=1,
            title=f"static dark-silicon picture, {n_cores} cores, TDP {tdp_w:.0f} W",
        )
    )


def dynamic_picture() -> None:
    base = SystemConfig(horizon_us=30_000.0, arrival_rate_per_ms=8.0, seed=11)
    rows = []
    for name in ("45nm", "16nm"):
        result = run_system(replace(base, node_name=name))
        rows.append(
            [
                name,
                result.throughput_ops_per_us,
                result.metrics.average_power(base.horizon_us),
                result.metrics.audit.violation_rate,
                result.tests_completed,
                result.test_power_share * 100.0,
            ]
        )
    print(
        format_table(
            [
                "node", "throughput(ops/us)", "avg power (W)",
                "violations", "tests", "test-energy(%)",
            ],
            rows,
            precision=2,
            title="dynamic picture: same workload, PID budgeting + power-aware test",
        )
    )


def main() -> None:
    static_picture(n_cores=64, tdp_w=80.0)
    print()
    dynamic_picture()


if __name__ == "__main__":
    main()

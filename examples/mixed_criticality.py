#!/usr/bin/env python3
"""Mixed-criticality scheduling: hard/soft/no real-time priorities.

The ICCD'14 power-management substrate "distinguishes applications with
hard Real-Time, soft Real-Time and no Real-Time constraints and treats
them with appropriate priorities".  This script offers the chip a
three-class mix and compares plain FIFO service with priority service:
the queue is served in class order, and the PID's fine-grained DVFS
favours real-time cores when distributing the power budget.

Run:  python examples/mixed_criticality.py
"""

from dataclasses import replace

from repro import SystemConfig, run_system
from repro.metrics import format_table
from repro.workload.scenarios import scenario_config_kwargs


def main() -> None:
    base = replace(
        SystemConfig(horizon_us=60_000.0, seed=11),
        **scenario_config_kwargs("mixed-criticality"),
    )
    rows = []
    for enabled in (False, True):
        result = run_system(replace(base, rt_priorities=enabled))
        waits = result.metrics.mean_waiting_by_class()
        rows.append(
            [
                "priorities" if enabled else "fifo",
                waits.get("hard-rt", float("nan")),
                waits.get("soft-rt", float("nan")),
                waits.get("best-effort", float("nan")),
                result.throughput_ops_per_us,
                result.metrics.audit.violation_rate,
            ]
        )
    print(
        format_table(
            [
                "queueing", "hard-rt wait (us)", "soft-rt wait (us)",
                "best-effort wait (us)", "throughput", "violations",
            ],
            rows,
            precision=1,
            title="mixed-criticality service (30% hard-rt, 40% soft-rt, 30% best-effort)",
        )
    )
    print()
    fifo, prio = rows
    print(
        f"=> hard real-time waiting: {fifo[1]:.0f} us under FIFO vs "
        f"{prio[1]:.0f} us with priorities "
        f"({fifo[1] / max(prio[1], 1e-9):.0f}x better), "
        "with the TDP still never violated"
    )


if __name__ == "__main__":
    main()

"""SBST test substrate: routine models, runner, baseline schedulers."""

from repro.testing.runner import TestRunner, TestSession, TestStats
from repro.testing.sbst import SBSTLibrary, SBSTRoutine, default_library
from repro.testing.schedulers import (
    NoTestScheduler,
    PowerUnawareTestScheduler,
    RoundRobinTestScheduler,
    TestSchedulerBase,
)

__all__ = [
    "NoTestScheduler",
    "PowerUnawareTestScheduler",
    "RoundRobinTestScheduler",
    "SBSTLibrary",
    "SBSTRoutine",
    "TestRunner",
    "TestSchedulerBase",
    "TestSession",
    "TestStats",
    "default_library",
]

"""Software-Based Self-Test (SBST) routine models.

An SBST routine is a functional test program a core runs on itself.  The
scheduler only needs three observable properties per routine (see
DESIGN.md substitutions — we model routines parametrically rather than
porting actual test programs):

* ``cycles`` — length of the routine in clock cycles, so its wall-clock
  duration depends on the DVFS level it runs at (``cycles / f``);
* ``power_factor`` — switching-activity multiplier; good SBST maximises
  toggling, so routines typically burn *more* dynamic power than average
  workload (factor > 1);
* ``coverage`` — probability that the routine exposes a fault that
  manifests at the tested operating point.

A full test session for a core is a suite of routines targeting different
units; :class:`SBSTLibrary` aggregates them and answers duration/power/
coverage queries for a whole session at a given V/F level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.platform.coretypes import CoreType
from repro.platform.dvfs import VFLevel
from repro.platform.techmodel import TechnologyModel
from repro.platform.technology import TechnologyNode


@dataclass(frozen=True)
class SBSTRoutine:
    """One self-test program targeting a functional unit."""

    name: str
    cycles: float
    power_factor: float = 1.1
    coverage: float = 0.9

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError(f"{self.name}: cycles must be positive")
        if self.power_factor <= 0:
            raise ValueError(f"{self.name}: power_factor must be positive")
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError(f"{self.name}: coverage must be in (0, 1]")

    def duration_at(self, level: VFLevel) -> float:
        """Wall-clock duration (µs) at DVFS ``level``."""
        return self.cycles / level.f_mhz


class SBSTLibrary:
    """A suite of routines executed back-to-back as one test session."""

    def __init__(self, routines: Sequence[SBSTRoutine]) -> None:
        if not routines:
            raise ValueError("library needs at least one routine")
        names = [r.name for r in routines]
        if len(set(names)) != len(names):
            raise ValueError("duplicate routine names")
        self.routines: List[SBSTRoutine] = list(routines)
        # Per-core-type derived libraries, built lazily by ``scaled_for``.
        self._typed: Dict[str, "SBSTLibrary"] = {}

    def __len__(self) -> int:
        return len(self.routines)

    def __iter__(self):
        return iter(self.routines)

    @property
    def total_cycles(self) -> float:
        return sum(r.cycles for r in self.routines)

    def session_duration(self, level: VFLevel) -> float:
        """Duration (µs) of the full suite at ``level``."""
        return self.total_cycles / level.f_mhz

    def session_power_factor(self) -> float:
        """Cycle-weighted mean power factor of the suite."""
        return (
            sum(r.cycles * r.power_factor for r in self.routines)
            / self.total_cycles
        )

    def session_coverage(self) -> float:
        """Probability the suite exposes a manifesting fault.

        Routines target disjoint units, so the session misses a fault only
        if every routine misses it: ``1 - Π(1 - coverage_i)``.
        """
        miss = 1.0
        for routine in self.routines:
            miss *= 1.0 - routine.coverage
        return 1.0 - miss

    def detection_profile(self) -> List[float]:
        """Cumulative detection probability after each routine, in order.

        Element ``k`` is the probability the first ``k+1`` routines expose
        a manifesting fault — a CDF over suite progress, so the list is
        monotone non-decreasing and ends at :meth:`session_coverage`.
        """
        profile: List[float] = []
        miss = 1.0
        for routine in self.routines:
            miss *= 1.0 - routine.coverage
            profile.append(1.0 - miss)
        return profile

    def scaled_for(self, ctype: CoreType) -> "SBSTLibrary":
        """This suite adapted to one core type.

        Routine lengths scale by ``sbst_cycles_scale`` (longer patterns
        for wider pipelines) and coverages by ``detection_scale``.  For a
        type with both scales at 1.0 — notably ``std`` — returns ``self``,
        so degenerate configs share the exact library object (and floats)
        the homogeneous engine used.
        """
        if ctype.sbst_cycles_scale == 1.0 and ctype.detection_scale == 1.0:
            return self
        try:
            return self._typed[ctype.name]
        except KeyError:
            scaled = SBSTLibrary(
                [
                    SBSTRoutine(
                        name=r.name,
                        cycles=r.cycles * ctype.sbst_cycles_scale,
                        power_factor=r.power_factor,
                        coverage=r.coverage * ctype.detection_scale,
                    )
                    for r in self.routines
                ]
            )
            self._typed[ctype.name] = scaled
            return scaled

    def session_power(self, node: TechnologyNode, level: VFLevel) -> float:
        """Estimated power (W) of a core running the suite at ``level``."""
        return (
            node.dynamic_power(level.vdd, level.f_mhz, self.session_power_factor())
            + node.leakage_power(level.vdd)
        )

    def session_power_model(
        self,
        model: TechnologyModel,
        node: TechnologyNode,
        ctype: CoreType,
        level: VFLevel,
    ) -> float:
        """:meth:`session_power` routed through a technology model.

        Under the baseline model with the ``std`` type this is bit-equal
        to :meth:`session_power` (every factor multiplies by exactly 1.0).
        """
        return model.dynamic_power(
            node, ctype, level.vdd, level.f_mhz, self.session_power_factor()
        ) + model.leakage_power(node, ctype, level.vdd)


def default_library(scale: float = 1.0) -> SBSTLibrary:
    """The default per-core test suite (≈120k cycles at scale=1).

    Roughly 35 µs at a 3.5 GHz nominal level — long enough that tests
    visibly consume budget, short enough to fit typical idle periods, in
    line with published SBST program lengths for small embedded cores.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return SBSTLibrary(
        [
            SBSTRoutine("alu-march", cycles=30_000 * scale, power_factor=1.20, coverage=0.70),
            SBSTRoutine("regfile-walk", cycles=20_000 * scale, power_factor=1.05, coverage=0.55),
            SBSTRoutine("pipeline-hazard", cycles=25_000 * scale, power_factor=1.15, coverage=0.60),
            SBSTRoutine("cache-march", cycles=30_000 * scale, power_factor=0.95, coverage=0.65),
            SBSTRoutine("branch-predictor", cycles=15_000 * scale, power_factor=1.10, coverage=0.45),
        ]
    )

"""Baseline online-test scheduling policies.

These are the comparison points for the paper's power-aware scheduler:

* :class:`NoTestScheduler` — never tests; defines the throughput baseline
  against which penalty is measured.
* :class:`PowerUnawareTestScheduler` — the state-of-the-art-before-this-
  paper strawman: tests every idle core as soon as it is due, at nominal
  V/F, with **no regard for the chip power budget**.  The tests' power
  forces the power manager to throttle the workload, which is exactly the
  throughput hit the paper's abstract calls out.
* :class:`RoundRobinTestScheduler` — classic non-intrusive periodic
  testing: at most ``max_concurrent`` sessions chip-wide, cores visited in
  round-robin order when idle and due.  Power-unaware but low-intensity.

All schedulers share the due-core bookkeeping and level-selection helpers
of :class:`TestSchedulerBase`; the proposed policy lives in
:mod:`repro.core.scheduler` and subclasses the same base, so policy
differences are isolated to the ``tick`` logic.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.journal import NULL_JOURNAL
from repro.telemetry.registry import NULL_TELEMETRY
from repro.platform.chip import Chip
from repro.platform.core import Core
from repro.platform.dvfs import VFLevel
from repro.testing.runner import TestRunner


class TestSchedulerBase:
    """Shared machinery for test-scheduling policies."""

    name = "base"
    #: May the mapper abort this scheduler's sessions to claim cores?
    #: Non-intrusive preemptable testing is part of the *proposed* method;
    #: the baselines hold a core until their session completes, which is
    #: exactly what makes classic online testing intrusive.
    preemptable = False

    def __init__(
        self,
        chip: Chip,
        runner: TestRunner,
        min_interval_us: float = 2000.0,
        level_policy: str = "rotate",
    ) -> None:
        if min_interval_us < 0:
            raise ValueError("min_interval_us must be non-negative")
        if level_policy not in ("rotate", "nominal"):
            raise ValueError(f"unknown level policy {level_policy!r}")
        self.chip = chip
        self.runner = runner
        self.min_interval_us = min_interval_us
        self.level_policy = level_policy
        #: Observability sink (no-op by default; the system installs the
        #: run's journal when journaling is enabled).
        self.journal = NULL_JOURNAL
        #: Telemetry registry (no-op by default; installed by the system).
        self.telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def testable_cores(self) -> List[Core]:
        """Cores a non-intrusive test could start on right now."""
        return [c for c in self.chip.idle_cores() if c.owner_app is None]

    def due_cores(self, now: float) -> List[Core]:
        """Testable cores whose re-test interval has elapsed."""
        due = [
            c
            for c in self.chip.idle_cores()
            if c.owner_app is None
            and now - c.last_test_end >= self.min_interval_us
        ]
        # Longest-untested first: a deterministic, fair default order.
        due.sort(key=lambda c: (c.last_test_end, c.core_id))
        return due

    def pick_level(self, core: Core, now: float) -> VFLevel:
        """V/F level for the next session on ``core``.

        ``rotate`` picks the least-recently-tested level so that, over a
        campaign, every level of every core gets covered (the TC'16
        extension); ``nominal`` always tests at the top level.

        Among never-tested levels the rotation is staggered by core id, so
        chip-wide all levels are exercised already in the first test round
        instead of every core starting from the same corner.
        """
        table = self.chip.vf_table
        if self.level_policy == "nominal":
            return table.max_level
        n = len(table)
        best_index = min(
            range(n),
            key=lambda i: (
                core.level_last_test.get(i, -1.0),
                -((i + core.core_id) % n),
            ),
        )
        return table[best_index]

    def session_cost(self, core: Core, level: VFLevel) -> float:
        """Estimated power (W) one session on ``core`` at ``level`` adds.

        The single point where scheduling policies price a test: routed
        through the runner's per-type estimate so heterogeneous tiles are
        costed with their own suite and power scales.
        """
        return self.runner.estimated_power(level, core)

    def tick(self, now: float, dt: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NoTestScheduler(TestSchedulerBase):
    """Never schedules a test (throughput baseline)."""

    name = "none"
    preemptable = True  # vacuous; it never starts a session

    def tick(self, now: float, dt: float) -> None:
        return


class PowerUnawareTestScheduler(TestSchedulerBase):
    """Tests every due idle core immediately, ignoring the power budget."""

    name = "unaware"

    def tick(self, now: float, dt: float) -> None:
        for core in self.due_cores(now):
            self.runner.start(core, self.pick_level(core, now))


class RoundRobinTestScheduler(TestSchedulerBase):
    """At most ``max_concurrent`` sessions, cores visited round-robin."""

    name = "round-robin"

    def __init__(
        self,
        chip: Chip,
        runner: TestRunner,
        min_interval_us: float = 2000.0,
        level_policy: str = "rotate",
        max_concurrent: int = 2,
    ) -> None:
        super().__init__(chip, runner, min_interval_us, level_policy)
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self._cursor = 0

    def tick(self, now: float, dt: float) -> None:
        slots = self.max_concurrent - len(self.runner.active_sessions())
        if slots <= 0:
            return
        due_ids = {c.core_id for c in self.due_cores(now)}
        if not due_ids:
            return
        n = len(self.chip)
        start_cursor = self._cursor
        for offset in range(n):
            if slots <= 0:
                break
            core = self.chip.core((start_cursor + offset) % n)
            if core.core_id in due_ids:
                self.runner.start(core, self.pick_level(core, now))
                self._cursor = (core.core_id + 1) % n
                slots -= 1

"""Test execution: runs an SBST session on a core inside the simulation.

The runner is the single place where a test changes platform state:

* start — the core moves to ``TESTING`` at the session's V/F level and its
  power-meter activity becomes the suite's power factor;
* completion — the core returns to ``IDLE``, its ``stress_since_test``
  resets, the tested level is recorded, and fault detection is attempted
  through the injector; a detected fault retires the core (``FAULTY``);
* abort — a non-intrusive scheduler may abandon a session early (e.g. the
  mapper wants the core, or the chip went over budget); nothing is credited.

Schedulers (baseline or proposed) decide *when*, *where* and *at which
level*; the runner guarantees the bookkeeping is identical for all of
them, so scheduler comparisons measure policy, not implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.aging.faults import FaultInjector
from repro.aging.model import AgingModel
from repro.obs.journal import NULL_JOURNAL
from repro.telemetry.registry import NULL_TELEMETRY
from repro.platform.chip import Chip
from repro.platform.core import Core, CoreState
from repro.platform.dvfs import VFLevel
from repro.power.meter import PowerMeter
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.testing.sbst import SBSTLibrary


@dataclass
class TestSession:
    """One in-flight SBST session."""

    core: Core
    level: VFLevel
    started_at: float
    duration_us: float
    finish_event: Event
    #: Suite time (µs) already executed before this session (checkpoint).
    resumed_offset_us: float = 0.0

    @property
    def ends_at(self) -> float:
        return self.started_at + self.duration_us


@dataclass
class TestStats:
    """Aggregate test-campaign statistics."""

    started: int = 0
    completed: int = 0
    aborted: int = 0
    resumed: int = 0
    detections: int = 0
    test_time_us: float = 0.0
    per_core_completed: Dict[int, int] = field(default_factory=dict)
    per_level_completed: Dict[int, int] = field(default_factory=dict)
    #: Gaps (µs) between successive completed tests of the same core —
    #: the staleness a mapper/scheduler pair leaves on the die.
    test_gaps_us: List[float] = field(default_factory=list)

    def mean_gap_us(self) -> float:
        if not self.test_gaps_us:
            return 0.0
        return sum(self.test_gaps_us) / len(self.test_gaps_us)

    def max_gap_us(self) -> float:
        if not self.test_gaps_us:
            return 0.0
        return max(self.test_gaps_us)


class TestRunner:
    """Executes SBST sessions on cores.

    With ``checkpointing`` enabled, an aborted session saves the cycles it
    already executed; the next session on that core at the *same* V/F
    level resumes from the checkpoint instead of restarting the suite —
    SBST runs as a program, so saving its position is a store of a few
    registers. A checkpoint is only valid for the level it was taken at
    (a partially-run suite at another operating point proves nothing
    about this one) and is consumed on use.
    """

    def __init__(
        self,
        sim: Simulator,
        chip: Chip,
        meter: PowerMeter,
        library: SBSTLibrary,
        aging: Optional[AgingModel] = None,
        injector: Optional[FaultInjector] = None,
        checkpointing: bool = False,
    ) -> None:
        self.sim = sim
        self.chip = chip
        self.meter = meter
        self.library = library
        self.aging = aging
        self.injector = injector
        self.checkpointing = checkpointing
        self.stats = TestStats()
        self._sessions: Dict[int, TestSession] = {}
        # (type name, level index) -> estimated added power; the inputs
        # (node, model, library, gated leak fraction) are fixed for the
        # runner's lifetime and the scheduler asks for the same handful
        # of (type, level) pairs every tick.
        self._estimated_power_cache: Dict[tuple, float] = {}
        # type_index -> the library adapted to that core type; ``std``
        # maps to ``library`` itself (see SBSTLibrary.scaled_for).
        self._typed_libraries: Dict[int, SBSTLibrary] = {}
        # core_id -> (level_index, elapsed_us already executed)
        self._checkpoints: Dict[int, tuple] = {}
        #: Hooks invoked with (core, session) on lifecycle transitions.
        self.on_complete: List[Callable[[Core, TestSession], None]] = []
        self.on_detect: List[Callable[[Core, TestSession], None]] = []
        #: Observability sink (no-op by default; installed by the system).
        self.journal = NULL_JOURNAL
        #: Telemetry registry (no-op by default; installed by the system).
        self.telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def session_of(self, core: Core) -> Optional[TestSession]:
        return self._sessions.get(core.core_id)

    def active_sessions(self) -> List[TestSession]:
        return list(self._sessions.values())

    def library_for(self, core: Core) -> SBSTLibrary:
        """The SBST suite adapted to ``core``'s type (``self.library`` for std)."""
        tidx = core.type_index
        try:
            return self._typed_libraries[tidx]
        except KeyError:
            lib = self.library.scaled_for(core.core_type)
            self._typed_libraries[tidx] = lib
            return lib

    def estimated_power(self, level: VFLevel, core: Optional[Core] = None) -> float:
        """Power one test session adds at ``level`` (on an idle core).

        The idle core already leaks a gated fraction; the added cost is the
        session power minus the gated leakage it replaces.  ``core`` picks
        the per-type suite and power scales; omitting it means a baseline
        (``std``) tile, which is exact on homogeneous-std chips.
        """
        if core is None:
            ctype = self.chip.core_types[0]
            library = self.library
        else:
            ctype = core.core_type
            library = self.library_for(core)
        key = (ctype.name, level.index)
        try:
            return self._estimated_power_cache[key]
        except KeyError:
            pass
        model = self.chip.tech_model
        node = self.chip.node
        full = library.session_power_model(model, node, ctype, level)
        gated = (
            model.leakage_power(node, ctype, level.vdd)
            * self.meter.gated_leak_fraction
        )
        value = full - gated
        self._estimated_power_cache[key] = value
        return value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, core: Core, level: VFLevel) -> TestSession:
        """Begin a test session on an idle, healthy, unowned core."""
        if not core.is_idle():
            raise ValueError(f"core {core.core_id} not idle: {core.state}")
        if core.owner_app is not None:
            raise ValueError(f"core {core.core_id} owned by app {core.owner_app}")
        now = self.sim.now
        library = self.library_for(core)
        duration = library.session_duration(level) / core.speed_factor
        checkpoint = self._checkpoints.pop(core.core_id, None)
        resumed_offset = 0.0
        if (
            self.checkpointing
            and checkpoint is not None
            and checkpoint[0] == level.index
        ):
            resumed_offset = min(checkpoint[1], duration)
            duration -= resumed_offset
            self.stats.resumed += 1
            self.telemetry.counter("test.sessions.resumed").inc()
        core.state = CoreState.TESTING
        core.level = level
        core.testing_until = now + duration
        self.meter.set_core_activity(core, library.session_power_factor())
        event = self.sim.schedule(duration, self._finish, core)
        session = TestSession(
            core, level, now, duration, event, resumed_offset_us=resumed_offset
        )
        self._sessions[core.core_id] = session
        self.stats.started += 1
        self.telemetry.counter("test.sessions.started").inc()
        if self.journal.enabled:
            self.journal.emit(
                "test.start",
                now,
                core=core.core_id,
                level=level.index,
                duration_us=duration,
                resumed=resumed_offset > 0.0,
            )
        return session

    def abort(self, core: Core) -> None:
        """Abandon the session on ``core`` (no credit, no stress reset)."""
        session = self._sessions.pop(core.core_id, None)
        if session is None:
            raise ValueError(f"core {core.core_id} has no active test")
        session.finish_event.cancel()
        elapsed = self.sim.now - session.started_at
        if self.aging is not None:
            self.aging.accrue_test(core, elapsed, session.level)
        progressed = session.resumed_offset_us + elapsed
        if self.checkpointing and progressed > 0:
            self._checkpoints[core.core_id] = (
                session.level.index,
                progressed,
            )
        self.stats.aborted += 1
        self.stats.test_time_us += elapsed
        self.telemetry.counter("test.sessions.aborted").inc()
        core.test_time_total += elapsed
        if self.journal.enabled:
            self.journal.emit(
                "test.abort",
                self.sim.now,
                core=core.core_id,
                level=session.level.index,
                elapsed_us=elapsed,
            )
        self._to_idle(core)

    def _finish(self, core: Core) -> None:
        session = self._sessions.pop(core.core_id, None)
        if session is None:  # aborted concurrently; event should be cancelled
            return
        now = self.sim.now
        if self.aging is not None:
            self.aging.accrue_test(core, session.duration_us, session.level)
        core.tests_completed += 1
        core.test_time_total += session.duration_us
        gap_us = now - core.last_test_end
        self.stats.test_gaps_us.append(gap_us)
        core.last_test_end = now
        core.stress_since_test = 0.0
        core.tested_levels.add(session.level.index)
        core.level_last_test[session.level.index] = now
        self.stats.completed += 1
        self.stats.test_time_us += session.duration_us
        self.stats.per_core_completed[core.core_id] = (
            self.stats.per_core_completed.get(core.core_id, 0) + 1
        )
        self.stats.per_level_completed[session.level.index] = (
            self.stats.per_level_completed.get(session.level.index, 0) + 1
        )
        if self.telemetry.enabled:
            self.telemetry.counter("test.sessions.completed").inc()
            self.telemetry.histogram("test.session_us").observe(
                session.duration_us
            )

        detected = None
        if self.injector is not None:
            detected = self.injector.try_detect(
                core,
                now,
                session.level.index,
                self.library_for(core).session_coverage(),
            )
        if detected is not None:
            self.stats.detections += 1
            self.telemetry.counter("test.detections").inc()
            self._retire(core)
            for hook in self.on_detect:
                hook(core, session)
        else:
            self._to_idle(core)
        if self.journal.enabled:
            self.journal.emit(
                "test.complete",
                now,
                core=core.core_id,
                level=session.level.index,
                detected=detected is not None,
                gap_us=gap_us,
            )
        for hook in self.on_complete:
            hook(core, session)

    # ------------------------------------------------------------------
    def _to_idle(self, core: Core) -> None:
        core.state = CoreState.IDLE
        core.testing_until = 0.0
        core.level = self.chip.vf_table.max_level
        self.meter.set_core_activity(core, None)

    def _retire(self, core: Core) -> None:
        core.state = CoreState.FAULTY
        core.testing_until = 0.0
        self.meter.set_core_activity(core, None)

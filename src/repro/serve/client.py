"""Client library for the repro simulation service.

Three layers, smallest first:

* :func:`fetch_status` / :func:`fetch_json` — synchronous one-shot
  GETs over :mod:`urllib`, used by ``repro top --url`` and scripts;
* :class:`ServeClient` — an asyncio client speaking the JSONL streaming
  protocol: submit sweeps and campaigns, iterate events as they arrive,
  and optionally honor ``Retry-After`` backoff on 429 rejections;
* :class:`LocalServer` — a subprocess harness that boots ``repro
  serve`` on an ephemeral port, waits for readiness via the port file,
  and can kill it gracefully (SIGTERM) or brutally (SIGKILL) — the
  benchmarks and the serve-smoke CI job drive servers through it.

Everything here is stdlib-only, like the server.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from typing import AsyncIterator, Dict, List, Optional, Sequence

from repro.serve.protocol import decode_line

__all__ = [
    "BusyError",
    "LocalServer",
    "QuotaError",
    "ServeClient",
    "ServerError",
    "fetch_json",
    "fetch_status",
    "sweep_request_doc",
]


class ServerError(RuntimeError):
    """A non-success HTTP response from the server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class QuotaError(ServerError):
    """A 429 rejection; ``retry_after_s`` says when to try again."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(429, message)
        self.retry_after_s = retry_after_s


class BusyError(ServerError):
    """A 503 rejection — the server is draining for shutdown."""

    def __init__(self, message: str, retry_after_s: float = 5.0) -> None:
        super().__init__(503, message)
        self.retry_after_s = retry_after_s


# ----------------------------------------------------------------------
# Synchronous one-shot helpers
# ----------------------------------------------------------------------
def fetch_json(url: str, timeout_s: float = 10.0) -> Dict[str, object]:
    """GET ``url`` and parse the JSON body (raises on HTTP errors)."""
    request = urllib.request.Request(url, method="GET")
    with urllib.request.urlopen(request, timeout=timeout_s) as reply:
        data = json.loads(reply.read().decode("utf-8"))
    if not isinstance(data, dict):
        raise ServerError(502, f"{url} did not return a JSON object")
    return data


def fetch_status(url: str, timeout_s: float = 10.0) -> Dict[str, object]:
    """Fetch a server's ``/status`` document given its base URL.

    Accepts ``host:port``, ``http://host:port`` or a full ``/status``
    URL; used by ``repro top --url``.
    """
    base = url if "://" in url else f"http://{url}"
    if not base.rstrip("/").endswith("/status"):
        base = base.rstrip("/") + "/status"
    return fetch_json(base, timeout_s=timeout_s)


def sweep_request_doc(
    points: Sequence[Dict[str, object]],
    tenant: str = "default",
    base: Optional[Dict[str, object]] = None,
    seeds: Optional[Sequence[int]] = None,
    request_id: Optional[str] = None,
) -> Dict[str, object]:
    """Assemble a ``/v1/sweep`` request document from its parts."""
    doc: Dict[str, object] = {"tenant": tenant, "points": list(points)}
    if base:
        doc["base"] = dict(base)
    if seeds is not None:
        doc["seeds"] = list(seeds)
    if request_id is not None:
        doc["request_id"] = request_id
    return doc


# ----------------------------------------------------------------------
# Async streaming client
# ----------------------------------------------------------------------
class ServeClient:
    """Asyncio client for one repro-serve endpoint.

    Stateless between calls — each request opens its own connection, so
    one client instance can be shared by any number of tasks.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    # -- plumbing ------------------------------------------------------
    async def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ):
        reader, writer = await asyncio.open_connection(self.host, self.port)
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            writer.close()
            raise ServerError(502, f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, reader, writer

    async def _read_body(self, status, headers, reader, writer) -> bytes:
        length = headers.get("content-length")
        if length is not None:
            body = await reader.readexactly(int(length))
        else:
            body = await reader.read()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        return body

    @staticmethod
    def _raise_for_status(status: int, body: bytes) -> None:
        try:
            doc = json.loads(body.decode("utf-8"))
        except ValueError:
            doc = {}
        message = str(doc.get("error", body[:200]))
        retry_after = float(doc.get("retry_after_s", 1.0) or 1.0)
        if status == 429:
            raise QuotaError(message, retry_after)
        if status == 503:
            raise BusyError(message, retry_after)
        raise ServerError(status, message)

    # -- GET endpoints -------------------------------------------------
    async def get_json(self, path: str) -> Dict[str, object]:
        """GET a JSON endpoint (``/healthz``, ``/status``)."""
        status, headers, reader, writer = await self._request("GET", path)
        body = await self._read_body(status, headers, reader, writer)
        if status != 200:
            self._raise_for_status(status, body)
        return json.loads(body.decode("utf-8"))

    async def healthz(self) -> Dict[str, object]:
        """The server's liveness document."""
        return await self.get_json("/healthz")

    async def status(self) -> Dict[str, object]:
        """The server's full ``/status`` document."""
        return await self.get_json("/status")

    async def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``/metrics``."""
        status, headers, reader, writer = await self._request(
            "GET", "/metrics"
        )
        body = await self._read_body(status, headers, reader, writer)
        if status != 200:
            self._raise_for_status(status, body)
        return body.decode("utf-8")

    # -- streaming submissions -----------------------------------------
    async def _stream(
        self, path: str, doc: Dict[str, object]
    ) -> AsyncIterator[Dict[str, object]]:
        body = json.dumps(doc).encode("utf-8")
        status, headers, reader, writer = await self._request(
            "POST", path, body
        )
        if status != 200:
            raw = await self._read_body(status, headers, reader, writer)
            self._raise_for_status(status, raw)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                event = decode_line(line)
                yield event
                if event.get("event") == "done":
                    # Terminal event: stop without waiting for EOF, so
                    # a stray duplicated socket fd (e.g. held briefly by
                    # a worker process on the server side) cannot stall
                    # the stream's end.
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def sweep_events(
        self, doc: Dict[str, object]
    ) -> AsyncIterator[Dict[str, object]]:
        """Submit a sweep, yielding protocol events as they stream in."""
        return self._stream("/v1/sweep", doc)

    async def sweep(
        self,
        doc: Dict[str, object],
        max_retries: int = 0,
        max_retry_after_s: float = 30.0,
    ) -> List[Dict[str, object]]:
        """Submit a sweep and collect the whole event stream.

        With ``max_retries > 0`` a 429/503 rejection sleeps for the
        server-suggested ``retry_after_s`` (capped) and resubmits —
        safe because admission is all-or-nothing and execution is
        deduplicated by digest.
        """
        attempt = 0
        while True:
            try:
                return [event async for event in self.sweep_events(doc)]
            except (QuotaError, BusyError) as exc:
                attempt += 1
                if attempt > max_retries:
                    raise
                await asyncio.sleep(
                    min(exc.retry_after_s, max_retry_after_s)
                )

    def campaign_events(
        self, doc: Dict[str, object]
    ) -> AsyncIterator[Dict[str, object]]:
        """Submit a campaign spec, yielding progress events."""
        return self._stream("/v1/campaign", doc)

    async def campaign(
        self, doc: Dict[str, object]
    ) -> Dict[str, object]:
        """Submit a campaign and block until its terminal event."""
        last: Dict[str, object] = {}
        async for event in self.campaign_events(doc):
            last = event
        if last.get("event") != "done":
            raise ServerError(
                502, f"campaign stream ended without 'done': {last}"
            )
        return last

    @staticmethod
    def results_by_index(
        events: Sequence[Dict[str, object]],
    ) -> Dict[int, Dict[str, object]]:
        """Index the ``result`` events of a collected sweep stream."""
        out: Dict[int, Dict[str, object]] = {}
        for event in events:
            if event.get("event") == "result":
                out[int(event["index"])] = event  # type: ignore[arg-type]
        return out


# ----------------------------------------------------------------------
# Subprocess harness
# ----------------------------------------------------------------------
class LocalServer:
    """Spawn and control a ``repro serve`` subprocess for tests/benches.

    Use as a context manager::

        with LocalServer(state_dir=tmp) as srv:
            client = ServeClient("127.0.0.1", srv.port)

    ``kill()`` sends SIGKILL (for crash-recovery drills), ``stop()``
    sends SIGTERM and waits for the graceful drain.  The same
    ``state_dir`` can be handed to a second ``LocalServer`` to exercise
    restart-resume.
    """

    def __init__(
        self,
        state_dir: str,
        jobs: int = 0,
        extra_args: Optional[Sequence[str]] = None,
        startup_timeout_s: float = 30.0,
        host: str = "127.0.0.1",
    ) -> None:
        self.state_dir = state_dir
        self.jobs = jobs
        self.extra_args = list(extra_args or [])
        self.startup_timeout_s = startup_timeout_s
        self.host = host
        self.port: Optional[int] = None
        self.process: Optional[subprocess.Popen] = None
        self._port_file = os.path.join(
            state_dir, f"port-{os.getpid()}-{id(self):x}.txt"
        )

    def start(self) -> "LocalServer":
        """Launch the subprocess and wait until it is listening."""
        os.makedirs(self.state_dir, exist_ok=True)
        if os.path.exists(self._port_file):
            os.unlink(self._port_file)
        env = dict(os.environ)
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            "0",
            "--port-file",
            self._port_file,
            "--state-dir",
            self.state_dir,
            "--jobs",
            str(self.jobs),
            *self.extra_args,
        ]
        self.process = subprocess.Popen(
            command,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + self.startup_timeout_s
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"server exited during startup "
                    f"(code {self.process.returncode})"
                )
            try:
                with open(self._port_file, encoding="utf-8") as handle:
                    text = handle.read().strip()
                if text:
                    self.port = int(text)
                    return self
            except (OSError, ValueError):
                pass
            time.sleep(0.05)
        raise TimeoutError(
            f"server did not write {self._port_file} within "
            f"{self.startup_timeout_s}s"
        )

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        assert self.port is not None
        return f"http://{self.host}:{self.port}"

    def kill(self) -> None:
        """SIGKILL the server — simulates a crash, no drain."""
        if self.process is not None and self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
            self.process.wait(timeout=10)

    def stop(self, timeout_s: float = 60.0) -> int:
        """SIGTERM the server and wait for its graceful exit code."""
        if self.process is None:
            return 0
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)
        return int(self.process.returncode or 0)

    def __enter__(self) -> "LocalServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

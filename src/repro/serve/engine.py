"""The serving engine: tenant queues, coalescing, and the worker fleet.

This is the routing/queueing core of ``repro.serve``, kept free of any
HTTP so it can be driven directly by tests.  One engine owns:

* **per-tenant bounded queues** — a submission is admitted atomically
  (the event loop is the lock: :meth:`ServeEngine.submit` never awaits)
  or rejected whole with :class:`QuotaExceeded`, which carries a
  retry-after estimate derived from the observed completion rate;
* **in-flight coalescing** — points are keyed by
  :func:`~repro.obs.provenance.config_digest`; while a digest is queued
  or running, every further request for it attaches to the same future
  and costs nothing, and completed digests are served from the
  :class:`~repro.cache.RunCache` (when configured), so N clients asking
  for the same point pay for one simulation *ever*;
* **fair round-robin draining** — the dispatcher cycles tenants in
  arrival order and takes one item per turn, so a tenant with a
  thousand queued points cannot starve a tenant with one;
* **the worker fleet** — a persistent ``ProcessPoolExecutor``
  (``jobs >= 1``) or thread pool (``jobs = 0``, handy for tests and
  tiny deployments) executing :func:`repro.core.system.run_system`;
  with ``batch_size`` set, runs of seed-replicas are fed through the
  lockstep batch engine (:func:`repro.batch.run_batch`) instead, one
  whole chunk per dispatch.  A broken process pool is rebuilt and the
  interrupted work retried, mirroring the campaign executor's
  crash-tolerance.

Determinism contract: every result leaving the engine is produced by
``run_system``/``run_batch`` on a fully-resolved config, so its
:func:`~repro.batch.result_digest` is byte-identical to a direct
:func:`~repro.experiments.run_many` call — serial, pooled, batched,
cached or coalesced.  The engine adds routing, never arithmetic.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Optional, Tuple

from repro.batch import result_digest, run_batch
from repro.core.system import SimulationResult, SystemConfig, run_system
from repro.obs.provenance import config_digest
from repro.serve.protocol import SweepRequest
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "PointPayload",
    "QuotaExceeded",
    "ServeEngine",
    "ServerDraining",
    "Ticket",
]


class QuotaExceeded(Exception):
    """A submission that would overflow a tenant or server queue bound."""

    def __init__(self, reason: str, retry_after_s: float) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after_s = retry_after_s


class ServerDraining(Exception):
    """The engine is shutting down and accepts no new work (HTTP 503)."""


def _warmup_worker() -> bool:
    """No-op task used to spin up pool workers before serving traffic."""
    return True


def _point_worker(config: SystemConfig) -> SimulationResult:
    """Module-level single-point worker (picklable for the process pool)."""
    return run_system(config)


def _chunk_worker(
    config: SystemConfig, seeds: List[int]
) -> List[SimulationResult]:
    """Module-level lockstep-chunk worker (picklable); one result per seed."""
    return run_batch(config, seeds)


@dataclass(frozen=True)
class PointPayload:
    """What a completed point resolves to: identity plus the summary row.

    ``result_digest`` is :func:`repro.batch.result_digest` of the full
    :class:`~repro.core.system.SimulationResult` — the identity the
    served-equals-direct contract is asserted on; ``summary`` is the
    scalar summary row clients actually consume.
    """

    digest: str
    result_digest: str
    summary: Dict[str, float]


@dataclass(frozen=True)
class Ticket:
    """One requested point's claim on a (possibly shared) outcome.

    ``source`` records how the point was satisfied at submission time:
    ``"queued"`` (fresh work this request paid for), ``"coalesced"``
    (attached to an identical in-flight point) or ``"cached"`` (served
    from the run cache without executing).
    """

    index: int
    digest: str
    future: "asyncio.Future[PointPayload]"
    source: str


class _Work:
    """One queued fresh point: config, identities, owning tenant."""

    __slots__ = ("config", "digest", "group_key", "tenant", "seed")

    def __init__(
        self, config: SystemConfig, digest: str, group_key: str, tenant: str
    ) -> None:
        self.config = config
        self.digest = digest
        self.group_key = group_key
        self.tenant = tenant
        self.seed = config.seed


class _TenantState:
    """Book-keeping for one tenant: queue plus admission counters."""

    __slots__ = ("name", "queue", "in_use", "submitted", "completed", "rejected")

    def __init__(self, name: str) -> None:
        self.name = name
        self.queue: Deque[_Work] = deque()
        #: Fresh points owned by this tenant, queued or running.
        self.in_use = 0
        self.submitted = 0
        self.completed = 0
        self.rejected = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready tenant stats for the ``/status`` document."""
        return {
            "queued": len(self.queue),
            "in_use": self.in_use,
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
        }


class ServeEngine:
    """Multi-tenant scheduler over a shared simulation worker fleet.

    ``jobs >= 1`` runs points on a persistent process pool of that
    width; ``jobs = 0`` (default) runs them on a small thread pool in
    process — identical results, no pickling, the mode tests use.
    ``tenant_quota`` bounds each tenant's fresh (non-coalesced,
    non-cached) points in flight; ``max_queue`` bounds the total queued
    backlog across tenants; ``batch_size`` enables lockstep seed-chunk
    dispatch.  ``registry`` receives ``serve.*`` counters and gauges.
    """

    def __init__(
        self,
        jobs: int = 0,
        cache=None,
        max_queue: int = 1024,
        tenant_quota: int = 256,
        batch_size: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        max_attempts: int = 3,
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 0:
            raise ValueError(f"jobs must be a non-negative int, got {jobs!r}")
        if batch_size is not None and (
            not isinstance(batch_size, int)
            or isinstance(batch_size, bool)
            or batch_size < 1
        ):
            raise ValueError(f"batch_size must be an int >= 1, got {batch_size!r}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if tenant_quota < 1:
            raise ValueError(f"tenant_quota must be >= 1, got {tenant_quota}")
        self.jobs = jobs
        self.cache = cache
        self.max_queue = max_queue
        self.tenant_quota = tenant_quota
        self.batch_size = batch_size
        self.max_attempts = max_attempts
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=True)
        )
        self.width = jobs if jobs >= 1 else 2
        self._pool: Optional[Executor] = None
        self._pool_generation = 0
        self._tenants: Dict[str, _TenantState] = {}
        self._rr: Deque[str] = deque()
        #: digest -> shared future of a point that is queued or running.
        self._inflight: Dict[str, "asyncio.Future[PointPayload]"] = {}
        self._queued_total = 0
        self._running = 0
        self._draining = False
        self._wake = asyncio.Event()
        self._dispatcher: Optional[asyncio.Task] = None
        self._slots: Optional[asyncio.Semaphore] = None
        #: EWMA of per-point wall seconds, for retry-after estimates.
        self._ewma_point_s = 0.5

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the worker pool and start the dispatcher task.

        Process pools are warmed eagerly so the forkserver/spawn helper
        exists before the listener accepts its first connection.
        """
        self._make_pool()
        if self.jobs >= 1:
            await asyncio.get_running_loop().run_in_executor(
                self._pool, _warmup_worker
            )
        self._slots = asyncio.Semaphore(self.width)
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    def _make_pool(self) -> None:
        if self.jobs >= 1:
            # Never fork() the serving process directly: forked workers
            # would inherit duplicates of accepted connection fds, and a
            # held duplicate keeps a close-delimited stream from ever
            # reaching EOF on the client.  A forkserver (or spawn)
            # context forks from a clean helper process instead.
            try:
                ctx = multiprocessing.get_context("forkserver")
            except ValueError:  # pragma: no cover - platform-dependent
                ctx = multiprocessing.get_context("spawn")
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=ctx
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.width, thread_name_prefix="serve-sim"
            )
        self._pool_generation += 1

    async def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop admissions, wait for outstanding work, stop the fleet.

        Returns True if everything finished within ``timeout_s``
        (``None`` = wait forever).  Queued-but-unstarted points are
        still executed — drain means "finish what was admitted", not
        "abandon it"; every admitted future resolves.
        """
        self._draining = True
        self._wake.set()
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        while self._inflight:
            if deadline is not None and time.monotonic() > deadline:
                return False
            await asyncio.sleep(0.02)
        return True

    async def stop(self) -> None:
        """Tear down the dispatcher and the pool (after :meth:`drain`)."""
        self._draining = True
        if self._dispatcher is not None:
            self._wake.set()
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        self.registry.counter(f"serve.{name}").inc(n)

    def _gauge_depths(self) -> None:
        self.registry.gauge("serve.queue_depth").set(float(self._queued_total))
        self.registry.gauge("serve.running").set(float(self._running))

    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = self._tenants[name] = _TenantState(name)
            self._rr.append(name)
        return state

    def retry_after_estimate(self, n_points: int = 1) -> float:
        """Seconds until ``n_points`` of backlog likely clears (clamped)."""
        backlog = self._queued_total + self._running + n_points
        estimate = backlog * self._ewma_point_s / max(self.width, 1)
        return min(max(estimate, 0.25), 60.0)

    def submit(self, request: SweepRequest) -> List[Ticket]:
        """Admit a sweep request atomically; one ticket per point.

        Never awaits, so classification (coalesce / cache / fresh),
        quota checks and enqueueing are a single atomic step under the
        event loop.  Raises :class:`ServerDraining` during shutdown and
        :class:`QuotaExceeded` when the *fresh* work in the request
        (coalesced and cached points are free) would overflow the
        tenant quota or the global queue bound — in which case nothing
        is admitted.
        """
        if self._draining:
            raise ServerDraining("server is draining; retry against a peer")
        loop = asyncio.get_running_loop()
        tenant = self._tenant(request.tenant)
        self._count("requests")
        self._count("points", len(request.points))

        # Pass 1: classify every point without mutating engine state.
        plan: List[Tuple[object, str, object]] = []  # (point, kind, payload)
        fresh_digests: Dict[str, None] = {}
        for point in request.points:
            shared = self._inflight.get(point.digest)
            if shared is not None or point.digest in fresh_digests:
                plan.append((point, "coalesced", shared))
                continue
            if self.cache is not None:
                result = self.cache.get_result(point.config)
                if result is not None:
                    plan.append((point, "cached", result))
                    continue
            fresh_digests[point.digest] = None
            plan.append((point, "fresh", None))

        n_fresh = len(fresh_digests)
        if tenant.in_use + n_fresh > self.tenant_quota:
            tenant.rejected += 1
            self._count("rejected")
            raise QuotaExceeded(
                f"tenant {tenant.name!r} quota exceeded "
                f"({tenant.in_use} in use + {n_fresh} requested > "
                f"{self.tenant_quota})",
                self.retry_after_estimate(n_fresh),
            )
        if self._queued_total + n_fresh > self.max_queue:
            tenant.rejected += 1
            self._count("rejected")
            raise QuotaExceeded(
                f"server queue full ({self._queued_total} queued + "
                f"{n_fresh} requested > {self.max_queue})",
                self.retry_after_estimate(n_fresh),
            )

        # Pass 2: commit.  No awaits above or below — all or nothing.
        tenant.submitted += 1
        tickets: List[Ticket] = []
        for point, kind, payload in plan:
            if kind == "coalesced":
                future = (
                    payload
                    if payload is not None
                    else self._inflight[point.digest]
                )
                self._count("coalesced")
            elif kind == "cached":
                future = loop.create_future()
                future.set_result(
                    PointPayload(
                        digest=point.digest,
                        result_digest=result_digest(payload),
                        summary=payload.summary(),
                    )
                )
                self._count("cache_hits")
            else:
                future = loop.create_future()
                self._inflight[point.digest] = future
                work = _Work(
                    point.config,
                    point.digest,
                    config_digest(replace(point.config, seed=0)),
                    tenant.name,
                )
                tenant.queue.append(work)
                tenant.in_use += 1
                self._queued_total += 1
                self._count("queued")
            tickets.append(
                Ticket(
                    index=point.index,
                    digest=point.digest,
                    future=future,
                    source="queued" if kind == "fresh" else kind,
                )
            )
        self._gauge_depths()
        self._wake.set()
        return tickets

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _next_chunk(self) -> Optional[List[_Work]]:
        """Pop the next fair-share work chunk, or None if all queues idle.

        Round-robin: tenants are cycled in first-seen order and each
        turn takes one item — or, with batching on, one lockstep chunk
        of up to ``batch_size`` same-cell (everything-but-seed) points
        from the *front* of that tenant's queue; chunking never reaches
        past a differing config, preserving per-tenant FIFO order.
        """
        for _ in range(len(self._rr)):
            name = self._rr[0]
            self._rr.rotate(-1)
            queue = self._tenants[name].queue
            if not queue:
                continue
            first = queue.popleft()
            chunk = [first]
            if self.batch_size is not None:
                while (
                    len(chunk) < self.batch_size
                    and queue
                    and queue[0].group_key == first.group_key
                ):
                    chunk.append(queue.popleft())
            self._queued_total -= len(chunk)
            self._gauge_depths()
            return chunk
        return None

    async def _dispatch_loop(self) -> None:
        assert self._slots is not None
        while True:
            chunk = self._next_chunk()
            if chunk is None:
                self._wake.clear()
                if self._draining and not self._inflight:
                    return
                await self._wake.wait()
                continue
            await self._slots.acquire()
            self._running += len(chunk)
            self._gauge_depths()
            asyncio.get_running_loop().create_task(self._execute(chunk))

    async def _run_in_pool(self, chunk: List[_Work]):
        loop = asyncio.get_running_loop()
        if len(chunk) == 1:
            result = await loop.run_in_executor(
                self._pool, _point_worker, chunk[0].config
            )
            return [result]
        return await loop.run_in_executor(
            self._pool,
            _chunk_worker,
            chunk[0].config,
            [work.seed for work in chunk],
        )

    async def _execute(self, chunk: List[_Work]) -> None:
        """Run one chunk on the fleet; resolve futures; survive pool death."""
        assert self._slots is not None
        started = time.perf_counter()
        if len(chunk) > 1:
            self._count("batch_chunks")
        try:
            attempts = 0
            while True:
                generation = self._pool_generation
                try:
                    results = await self._run_in_pool(chunk)
                    break
                except BrokenExecutor as exc:
                    # The pool died under this chunk (e.g. a worker was
                    # OOM-killed).  Rebuild once per generation and
                    # retry the interrupted work, like the campaign
                    # executor does.
                    attempts += 1
                    if generation == self._pool_generation:
                        self._make_pool()
                        self._count("pool_rebuilds")
                    if attempts >= self.max_attempts:
                        self._fail(chunk, f"worker pool died: {exc}")
                        return
                except Exception as exc:  # deterministic sim failure
                    self._fail(chunk, f"{type(exc).__name__}: {exc}")
                    return
            elapsed = time.perf_counter() - started
            per_point = elapsed / len(chunk)
            self._ewma_point_s += 0.2 * (per_point - self._ewma_point_s)
            self.registry.histogram(
                "serve.point_seconds", (0.01, 0.1, 0.5, 1.0, 5.0, 30.0)
            ).observe(per_point)
            for work, result in zip(chunk, results):
                payload = PointPayload(
                    digest=work.digest,
                    result_digest=result_digest(result),
                    summary=result.summary(),
                )
                if self.cache is not None:
                    try:
                        self.cache.put_result(work.config, result)
                    except OSError:
                        self._count("cache_put_errors")
                self._resolve(work, payload)
            self._count("computed", len(chunk))
        finally:
            self._running -= len(chunk)
            self._gauge_depths()
            self._slots.release()
            self._wake.set()

    def _resolve(self, work: _Work, payload: PointPayload) -> None:
        future = self._inflight.pop(work.digest, None)
        if future is not None and not future.done():
            future.set_result(payload)
        tenant = self._tenants[work.tenant]
        tenant.in_use -= 1
        tenant.completed += 1

    def _fail(self, chunk: List[_Work], error: str) -> None:
        self._count("errors", len(chunk))
        for work in chunk:
            future = self._inflight.pop(work.digest, None)
            if future is not None and not future.done():
                future.set_exception(RuntimeError(error))
            tenant = self._tenants[work.tenant]
            tenant.in_use -= 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """Whether the engine has stopped admitting new work."""
        return self._draining

    def stats(self) -> Dict[str, object]:
        """JSON-ready engine state for the ``/status`` document."""
        counters = self.registry.snapshot().get("counters", {})
        return {
            "jobs": self.jobs,
            "width": self.width,
            "batch_size": self.batch_size,
            "draining": self._draining,
            "queued": self._queued_total,
            "running": self._running,
            "inflight_digests": len(self._inflight),
            "max_queue": self.max_queue,
            "tenant_quota": self.tenant_quota,
            "ewma_point_s": self._ewma_point_s,
            "counters": {
                name: value
                for name, value in counters.items()  # type: ignore[union-attr]
                if name.startswith("serve.")
            },
            "tenants": {
                name: state.as_dict()
                for name, state in sorted(self._tenants.items())
            },
        }

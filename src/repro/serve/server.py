"""The asyncio simulation server: HTTP endpoints over the serve engine.

Endpoints (see ``docs/serving.md`` for the full schemas):

* ``GET  /healthz``     — liveness: ``{"ok": true, "state": ...}``;
* ``GET  /status``      — server, engine, tenant and campaign status;
* ``GET  /metrics``     — the registry in Prometheus text format
  (:func:`repro.telemetry.prometheus_text`);
* ``POST /v1/sweep``    — submit sweep points; the response is a JSONL
  stream: one ``accepted`` event, one ``result``/``error`` event per
  point *as it completes*, one terminal ``done`` event;
* ``POST /v1/campaign`` — submit a campaign spec; JSONL stream of
  ``accepted``, periodic ``progress`` and a terminal ``done`` event
  carrying the ``aggregate_digest``.

Admission control is visible at the HTTP layer: spec errors are 400,
quota/backpressure rejections are **429 with a ``Retry-After`` header**
(the body repeats the estimate machine-readably), and a draining server
answers 503.  Graceful shutdown — SIGTERM/SIGINT or
:meth:`ReproServer.shutdown` — stops admissions, finishes and streams
every already-admitted point, flushes a final status/metrics export
into the state dir, and only then closes the listener; campaigns keep
checkpointing to the last instant, so even an ungraceful ``kill -9``
loses nothing a resume cannot redo.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import repro
from repro.campaign.store import MANIFEST_FILE
from repro.serve.campaigns import CampaignManager
from repro.serve.engine import QuotaExceeded, ServeEngine, ServerDraining, Ticket
from repro.serve.http import (
    HttpError,
    Request,
    ResponseWriter,
    read_request,
)
from repro.serve.protocol import (
    MAX_POINTS_PER_REQUEST,
    PROTOCOL_SCHEMA,
    CampaignRequest,
    SpecError,
    SweepRequest,
)
from repro.telemetry.export import (
    atomic_write_text,
    prometheus_text,
    snapshot_json,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.status import read_status

__all__ = ["ServeConfig", "ReproServer", "serve_main"]

#: Seconds between campaign progress events on a campaign stream.
_CAMPAIGN_POLL_S = 0.25


@dataclass
class ServeConfig:
    """Everything a :class:`ReproServer` needs to boot.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`ReproServer.port` or the ``--port-file`` the CLI writes).
    ``jobs=0`` executes points on in-process threads — same results as
    a process pool, no pickling; ``jobs>=1`` runs a process pool of
    that width.  ``drain_timeout_s`` caps how long graceful shutdown
    waits for in-flight work.
    """

    host: str = "127.0.0.1"
    port: int = 0
    jobs: int = 0
    batch_size: Optional[int] = None
    state_dir: str = "serve-state"
    cache: Optional[object] = None
    max_queue: int = 1024
    tenant_quota: int = 256
    max_points_per_request: int = MAX_POINTS_PER_REQUEST
    max_campaigns: int = 4
    drain_timeout_s: float = 30.0
    auto_resume: bool = True
    name: str = "repro-serve"


class ReproServer:
    """One serving process: listener + engine + campaign manager."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.registry = MetricsRegistry(enabled=True)
        self.engine = ServeEngine(
            jobs=config.jobs,
            cache=config.cache,
            max_queue=config.max_queue,
            tenant_quota=config.tenant_quota,
            batch_size=config.batch_size,
            registry=self.registry,
        )
        self.campaigns = CampaignManager(
            config.state_dir,
            jobs=config.jobs if config.jobs >= 1 else None,
            batch=config.batch_size,
            cache=config.cache,
            max_active=config.max_campaigns,
        )
        if config.cache is not None:
            config.cache.bind_telemetry(self.registry)
        self.state = "starting"
        self.started_at = time.time()
        self._server: Optional[asyncio.base_events.Server] = None
        self._req_counter = 0
        self._shutdown_requested = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener, start the engine, resume leftover campaigns."""
        os.makedirs(self.config.state_dir, exist_ok=True)
        await self.engine.start()
        if self.config.auto_resume:
            resumed = self.campaigns.resume_incomplete()
            if resumed:
                self.registry.counter("serve.campaigns_auto_resumed").inc(
                    len(resumed)
                )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.state = "serving"

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` ephemeral binds)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Signal-safe trigger for graceful shutdown."""
        self._shutdown_requested.set()

    async def wait_shutdown(self) -> None:
        """Block until someone calls :meth:`request_shutdown`."""
        await self._shutdown_requested.wait()

    async def shutdown(self) -> bool:
        """Drain and stop.  Returns True when the drain completed.

        Order matters: flip to ``draining`` (new submissions get 503)
        while the listener stays open so in-flight streams finish, wait
        for the engine, flush the final status files, then close the
        listener and the fleet.
        """
        if self.state == "stopped":
            return True
        self.state = "draining"
        drained = await self.engine.drain(self.config.drain_timeout_s)
        deadline = time.monotonic() + max(
            self.config.drain_timeout_s - 0.0, 0.1
        )
        for job in self.campaigns.active():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            await asyncio.to_thread(job.done.wait, remaining)
        self.state = "stopped"
        self.flush_state_files()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.engine.stop()
        return drained

    def flush_state_files(self) -> None:
        """Atomically export status + metrics into the state dir."""
        status = self.status_doc()
        atomic_write_text(
            os.path.join(self.config.state_dir, "status.json"),
            json.dumps(status, indent=2, sort_keys=True) + "\n",
        )
        snapshot = self.registry.snapshot()
        atomic_write_text(
            os.path.join(self.config.state_dir, "telemetry.prom"),
            prometheus_text(snapshot),
        )
        atomic_write_text(
            os.path.join(self.config.state_dir, "telemetry.json"),
            snapshot_json(snapshot, state=self.state, name=self.config.name),
        )

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status_doc(self) -> Dict[str, object]:
        """The ``/status`` document: server, engine, tenants, campaigns."""
        engine = self.engine.stats()
        counters = engine["counters"]
        elapsed = max(time.time() - self.started_at, 1e-9)
        completed = int(counters.get("serve.computed", 0)) + int(  # type: ignore[union-attr]
            counters.get("serve.cache_hits", 0)  # type: ignore[union-attr]
        )
        return {
            "schema": "repro.serve.status/1",
            "name": self.config.name,
            "state": self.state,
            "version": getattr(repro, "__version__", "0"),
            "pid": os.getpid(),
            "started_at": self.started_at,
            "updated_at": time.time(),
            "uptime_s": elapsed,
            "points_done": completed,
            "points_planned": None,
            "rate_per_s": completed / elapsed,
            "eta_s": None,
            "events_per_s": None,
            "workers": {
                str(slot): {} for slot in range(int(engine["width"]))  # type: ignore[arg-type]
            },
            "engine": engine,
            "tenants": engine["tenants"],
            "campaigns": self.campaigns.statuses(),
            "cache": (
                self.config.cache.stats_dict()
                if self.config.cache is not None
                else None
            ),
        }

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        response = ResponseWriter(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await response.send_json(
                        exc.status, {"error": exc.reason}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                await self._route(request, response)
                if response.streaming or not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(
        self, request: Request, response: ResponseWriter
    ) -> None:
        route = (request.method, request.path)
        if request.method in ("GET", "HEAD"):
            if request.path == "/healthz":
                await response.send_json(
                    200,
                    {"ok": self.state in ("serving", "draining"),
                     "state": self.state},
                )
                return
            if request.path == "/status":
                await response.send_json(200, self.status_doc())
                return
            if request.path == "/metrics":
                body = prometheus_text(self.registry.snapshot()).encode(
                    "utf-8"
                )
                await response.send(
                    200, body, content_type="text/plain; version=0.0.4"
                )
                return
            await response.send_json(
                404, {"error": f"no such path: {request.path}"}
            )
            return
        if route == ("POST", "/v1/sweep"):
            await self._handle_sweep(request, response)
            return
        if route == ("POST", "/v1/campaign"):
            await self._handle_campaign(request, response)
            return
        await response.send_json(
            404, {"error": f"no such route: {request.method} {request.path}"}
        )

    def _next_request_id(self, supplied: Optional[str]) -> str:
        self._req_counter += 1
        return supplied if supplied else f"r{self._req_counter:08d}"

    # ------------------------------------------------------------------
    # Sweep streaming
    # ------------------------------------------------------------------
    async def _handle_sweep(
        self, request: Request, response: ResponseWriter
    ) -> None:
        try:
            sweep = SweepRequest.parse(
                request.json(),
                max_points=self.config.max_points_per_request,
            )
        except SpecError as exc:
            await response.send_json(400, {"error": str(exc)})
            return
        try:
            tickets = self.engine.submit(sweep)
        except ServerDraining as exc:
            await response.send_json(
                503,
                {"error": str(exc), "retry_after_s": 5.0},
                extra_headers={"Retry-After": "5"},
            )
            return
        except QuotaExceeded as exc:
            retry_after = max(int(exc.retry_after_s + 0.999), 1)
            await response.send_json(
                429,
                {
                    "error": exc.reason,
                    "retry_after_s": exc.retry_after_s,
                },
                extra_headers={"Retry-After": str(retry_after)},
            )
            return
        request_id = self._next_request_id(sweep.request_id)
        await response.start_stream(200)
        await response.stream_event(
            {
                "event": "accepted",
                "schema": PROTOCOL_SCHEMA,
                "request_id": request_id,
                "tenant": sweep.tenant,
                "points": len(tickets),
            }
        )
        by_future: Dict[asyncio.Future, List[Ticket]] = {}
        for ticket in tickets:
            by_future.setdefault(ticket.future, []).append(ticket)
        counts = {"queued": 0, "coalesced": 0, "cached": 0}
        ok = errors = 0
        for ticket in tickets:
            counts[ticket.source] += 1

        async def settle(future: asyncio.Future):
            try:
                return future, await future, None
            except Exception as exc:
                return future, None, str(exc)

        for wrapper in asyncio.as_completed(
            [settle(f) for f in by_future]
        ):
            future, payload, error = await wrapper
            # One engine future may satisfy several requested indices
            # (duplicates in one request); emit an event per index.
            for ticket in by_future[future]:
                if payload is None:
                    errors += 1
                    await response.stream_event(
                        {
                            "event": "error",
                            "request_id": request_id,
                            "index": ticket.index,
                            "digest": ticket.digest,
                            "error": error,
                        }
                    )
                else:
                    ok += 1
                    await response.stream_event(
                        {
                            "event": "result",
                            "request_id": request_id,
                            "index": ticket.index,
                            "digest": ticket.digest,
                            "result_digest": payload.result_digest,
                            "source": ticket.source,
                            "summary": payload.summary,
                        }
                    )
        await response.stream_event(
            {
                "event": "done",
                "request_id": request_id,
                "ok": ok,
                "errors": errors,
                "sources": counts,
            }
        )

    # ------------------------------------------------------------------
    # Campaign streaming
    # ------------------------------------------------------------------
    async def _handle_campaign(
        self, request: Request, response: ResponseWriter
    ) -> None:
        if self.state != "serving":
            await response.send_json(
                503,
                {"error": "server is draining", "retry_after_s": 5.0},
                extra_headers={"Retry-After": "5"},
            )
            return
        try:
            creq = CampaignRequest.parse(request.json())
        except SpecError as exc:
            await response.send_json(400, {"error": str(exc)})
            return
        try:
            job = self.campaigns.submit(
                creq.spec, jobs=creq.jobs, batch=creq.batch
            )
        except RuntimeError as exc:
            await response.send_json(
                429,
                {"error": str(exc), "retry_after_s": 10.0},
                extra_headers={"Retry-After": "10"},
            )
            return
        request_id = self._next_request_id(None)
        await response.start_stream(200)
        await response.stream_event(
            {
                "event": "accepted",
                "schema": PROTOCOL_SCHEMA,
                "request_id": request_id,
                "tenant": creq.tenant,
                **job.as_dict(),
            }
        )
        last_done = -1
        while job.state == "running":
            await asyncio.sleep(_CAMPAIGN_POLL_S)
            try:
                status = read_status(job.directory) or {}
            except (OSError, ValueError):
                status = {}
            done = status.get("points_done")
            if done is not None and done != last_done:
                last_done = done  # type: ignore[assignment]
                await response.stream_event(
                    {
                        "event": "progress",
                        "request_id": request_id,
                        "job_id": job.job_id,
                        "points_done": done,
                        "points_planned": status.get("points_planned"),
                        "state": status.get("state"),
                    }
                )
        await response.stream_event(
            {
                "event": "done",
                "request_id": request_id,
                **job.as_dict(),
                "manifest": os.path.join(job.directory, MANIFEST_FILE),
            }
        )


async def serve_main(
    config: ServeConfig,
    port_file: Optional[str] = None,
    install_signals: bool = True,
    ready: Optional[asyncio.Event] = None,
) -> int:
    """Boot a server, run until shutdown is requested, drain, exit.

    ``port_file`` (used by the CLI and the load harness) atomically
    writes the bound port as text once listening.  Returns 0 on a clean
    drain, 1 when the drain timed out and work was abandoned.
    """
    server = ReproServer(config)
    await server.start()
    if port_file:
        atomic_write_text(port_file, f"{server.port}\n")
    if install_signals:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    print(
        f"repro-serve listening on http://{config.host}:{server.port} "
        f"(jobs={config.jobs}, state={config.state_dir})",
        flush=True,
    )
    if ready is not None:
        ready.set()
    await server.wait_shutdown()
    drained = await server.shutdown()
    print(
        f"repro-serve stopped ({'drained' if drained else 'DRAIN TIMEOUT'})",
        flush=True,
    )
    return 0 if drained else 1

"""Simulation-as-a-service: a multi-tenant async server for sweeps.

``repro.serve`` turns the batch experiment engine into a long-running
service: many clients submit sweep points and campaign specs over HTTP,
a shared worker fleet executes them, and results stream back as JSONL
events the moment each point finishes.  The subsystem is stdlib-only
and built from five small layers:

* :mod:`repro.serve.protocol` — request validation and JSONL framing;
  sweeps resolve into fully-materialized ``SystemConfig`` points, each
  carrying its ``config_digest``;
* :mod:`repro.serve.engine` — the scheduler: per-tenant bounded queues
  with fair round-robin draining, quota/backpressure rejection
  (429 + Retry-After), in-flight **coalescing** (N concurrent requests
  for the same digest cost one simulation), run-cache probing, lockstep
  batch chunking, and crash-tolerant pool rebuilds;
* :mod:`repro.serve.http` — minimal asyncio HTTP/1.1 with
  close-delimited streaming responses;
* :mod:`repro.serve.campaigns` — server-owned campaign jobs backed by
  the checkpointing campaign store, so ``kill -9`` + restart resumes
  to a byte-identical aggregate;
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — the wired-up
  server (``repro serve``) and the client library / subprocess harness
  used by tests, benchmarks and ``repro top --url``.

The determinism contract is the whole point: a result obtained through
the server — queued, coalesced, cached, or batched — has the same
``result_digest`` as the same config run directly through
:func:`repro.experiments.run_many`.
"""

from repro.serve.campaigns import CampaignJob, CampaignManager
from repro.serve.client import (
    BusyError,
    LocalServer,
    QuotaError,
    ServeClient,
    ServerError,
    fetch_json,
    fetch_status,
    sweep_request_doc,
)
from repro.serve.engine import (
    PointPayload,
    QuotaExceeded,
    ServeEngine,
    ServerDraining,
    Ticket,
)
from repro.serve.http import HttpError, Request, ResponseWriter, read_request
from repro.serve.protocol import (
    MAX_POINTS_PER_REQUEST,
    PROTOCOL_SCHEMA,
    CampaignRequest,
    SpecError,
    SweepPoint,
    SweepRequest,
    decode_line,
    encode_line,
)
from repro.serve.server import ReproServer, ServeConfig, serve_main

__all__ = [
    "MAX_POINTS_PER_REQUEST",
    "PROTOCOL_SCHEMA",
    "BusyError",
    "CampaignJob",
    "CampaignManager",
    "CampaignRequest",
    "HttpError",
    "LocalServer",
    "PointPayload",
    "QuotaError",
    "QuotaExceeded",
    "ReproServer",
    "Request",
    "ResponseWriter",
    "ServeClient",
    "ServeConfig",
    "ServeEngine",
    "ServerDraining",
    "ServerError",
    "SpecError",
    "SweepPoint",
    "SweepRequest",
    "Ticket",
    "decode_line",
    "encode_line",
    "fetch_json",
    "fetch_status",
    "read_request",
    "serve_main",
    "sweep_request_doc",
]

"""Server-side campaign jobs: checkpointed, resumable, kill-safe.

A campaign submitted to the server is just :func:`repro.campaign.
run_campaign` pointed at a directory under the server's state dir —
``<state_dir>/campaigns/<name>-<spec_digest[:12]>`` — so every
durability property of the campaign subsystem carries over verbatim:
fsynced JSONL checkpoints, quarantine, sequential stopping, and the
resume-identity contract (kill the *server* with ``SIGKILL`` mid-
campaign, restart it, resubmit — the aggregate digest is byte-identical
to an uninterrupted run; the serve-smoke CI job does exactly this).

Jobs are identified by the spec digest, which doubles as coalescing:
resubmitting a running campaign's spec attaches to the running job
instead of double-executing its directory, and resubmitting a finished
spec resumes (a no-op that rebuilds the report) rather than erroring.
Execution happens on daemon threads — ``run_campaign`` is synchronous
and checkpoint-driven, so abandoning a thread at process exit loses at
most the in-flight points, which a later resume re-runs.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

from repro.campaign import CampaignSpec
from repro.campaign.store import MANIFEST_FILE, RESULTS_FILE, SPEC_FILE
from repro.telemetry.status import load_status

__all__ = ["CampaignJob", "CampaignManager"]

#: Subdirectory of the server state dir that holds campaign dirs.
CAMPAIGNS_SUBDIR = "campaigns"


class CampaignJob:
    """One campaign execution owned by the server.

    ``state`` moves ``running`` → ``complete`` | ``failed``; attribute
    writes happen on the job thread and reads on the event loop, which
    is safe for the plain scalars involved (the GIL orders them) —
    readers poll, they never block on the thread.
    """

    def __init__(
        self, job_id: str, directory: str, spec: CampaignSpec, resumed: bool
    ) -> None:
        self.job_id = job_id
        self.directory = directory
        self.spec = spec
        self.resumed = resumed
        self.state = "running"
        self.error: Optional[str] = None
        self.aggregate_digest: Optional[str] = None
        self.n_completed: Optional[int] = None
        self.n_quarantined: Optional[int] = None
        self.started_at = time.time()
        self.finished_at: Optional[float] = None
        self.done = threading.Event()

    @property
    def name(self) -> str:
        """The campaign's human name (from its spec)."""
        return self.spec.name

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready job descriptor for events and ``/status``."""
        return {
            "job_id": self.job_id,
            "name": self.name,
            "dir": self.directory,
            "state": self.state,
            "resumed": self.resumed,
            "error": self.error,
            "aggregate_digest": self.aggregate_digest,
            "n_completed": self.n_completed,
            "n_quarantined": self.n_quarantined,
        }


class CampaignManager:
    """Runs and tracks campaign jobs under one server state directory."""

    def __init__(
        self,
        state_dir: str,
        jobs: Optional[int] = None,
        batch: Optional[int] = None,
        cache=None,
        max_active: int = 4,
    ) -> None:
        self.root = os.path.join(state_dir, CAMPAIGNS_SUBDIR)
        os.makedirs(self.root, exist_ok=True)
        self.jobs = jobs
        self.batch = batch
        self.cache = cache
        self.max_active = max_active
        self._jobs: Dict[str, CampaignJob] = {}

    # ------------------------------------------------------------------
    def _job_id(self, spec: CampaignSpec) -> str:
        return f"{spec.name}-{spec.spec_digest()[:12]}"

    def active(self) -> List[CampaignJob]:
        """Jobs currently executing."""
        return [j for j in self._jobs.values() if j.state == "running"]

    def submit(
        self,
        spec: CampaignSpec,
        jobs: Optional[int] = None,
        batch: Optional[int] = None,
    ) -> CampaignJob:
        """Start (or attach to, or resume) the job for ``spec``.

        Identical specs coalesce onto the running job.  A directory
        left behind by a previous run — completed or killed — is
        resumed, which re-runs only unfinished points and then rebuilds
        the same aggregate.  Raises ``RuntimeError`` when ``max_active``
        jobs are already executing (the HTTP layer maps it to 429).
        """
        job_id = self._job_id(spec)
        existing = self._jobs.get(job_id)
        if existing is not None and existing.state == "running":
            return existing
        if len(self.active()) >= self.max_active:
            raise RuntimeError(
                f"{self.max_active} campaign job(s) already active"
            )
        directory = os.path.join(self.root, job_id)
        resumed = os.path.exists(os.path.join(directory, RESULTS_FILE))
        job = CampaignJob(job_id, directory, spec, resumed)
        self._jobs[job_id] = job
        thread = threading.Thread(
            target=self._run,
            args=(job, jobs if jobs is not None else self.jobs,
                  batch if batch is not None else self.batch),
            name=f"campaign-{job_id}",
            daemon=True,
        )
        thread.start()
        return job

    def _run(
        self, job: CampaignJob, jobs: Optional[int], batch: Optional[int]
    ) -> None:
        from repro.campaign import run_campaign

        try:
            kwargs = dict(jobs=jobs, batch=batch, cache=self.cache)
            if job.resumed:
                report = run_campaign(job.directory, resume=True, **kwargs)
            else:
                report = run_campaign(job.directory, spec=job.spec, **kwargs)
            job.aggregate_digest = report.aggregate
            job.n_completed = report.n_completed
            job.n_quarantined = len(report.quarantined)
            job.state = "complete"
        except Exception as exc:  # surfaced to the client, never the loop
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"
        finally:
            job.finished_at = time.time()
            job.done.set()

    # ------------------------------------------------------------------
    def resume_incomplete(self) -> List[CampaignJob]:
        """Resume every on-disk campaign that never finished (startup).

        A campaign directory with a spec but no ``manifest.json`` was
        interrupted — typically by the previous server process dying.
        Each one is resubmitted as a resume job, up to ``max_active``.
        """
        resumed: List[CampaignJob] = []
        if not os.path.isdir(self.root):
            return resumed
        for entry in sorted(os.listdir(self.root)):
            directory = os.path.join(self.root, entry)
            spec_path = os.path.join(directory, SPEC_FILE)
            if not os.path.isfile(spec_path):
                continue
            if os.path.isfile(os.path.join(directory, MANIFEST_FILE)):
                continue  # finished cleanly
            if len(self.active()) >= self.max_active:
                break
            try:
                spec = CampaignSpec.load(spec_path)
            except (OSError, ValueError):
                continue  # unreadable spec: leave it for forensics
            resumed.append(self.submit(spec))
        return resumed

    def statuses(self) -> List[Dict[str, object]]:
        """Per-campaign status docs (live or finished) for ``/status``.

        Directory statuses come from the same
        :func:`repro.telemetry.status.load_status` reader the CLI uses,
        augmented with the job descriptor when the server owns the job.
        """
        docs: List[Dict[str, object]] = []
        if not os.path.isdir(self.root):
            return docs
        for entry in sorted(os.listdir(self.root)):
            directory = os.path.join(self.root, entry)
            if not os.path.isfile(os.path.join(directory, SPEC_FILE)):
                continue
            try:
                status = load_status(directory)
            except (OSError, ValueError):
                continue
            job = self._jobs.get(entry)
            if job is not None:
                status["job"] = job.as_dict()
                if job.state != "running":
                    status["state"] = job.state
            docs.append(status)
        return docs

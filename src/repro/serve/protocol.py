"""Wire protocol of the simulation service: specs in, JSONL events out.

Requests are JSON documents; responses to submissions are **JSONL event
streams** — one compact JSON object per line, written as each point
completes, so a client watching a thousand-point sweep sees results
live instead of waiting for the slowest straggler.  The framing is
deliberately trivial (``\\n``-delimited, no length prefixes, no
continuation lines) so any language can consume it with a line reader.

Validation happens here, before anything touches a queue: a sweep
request is resolved into fully-materialized
:class:`~repro.core.system.SystemConfig` points (defaults < ``base`` <
per-point overrides < ``seeds`` cross-product), reusing the strict
``config_from_dict`` round-trip so unknown fields and illegal values
are rejected with the same errors a local caller would see.  Every
resolved point carries its :func:`~repro.obs.provenance.config_digest`
— the identity the engine dedupes, coalesces and caches on.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config_io import config_from_dict, config_to_dict
from repro.core.system import SystemConfig
from repro.obs.provenance import config_digest

__all__ = [
    "MAX_POINTS_PER_REQUEST",
    "PROTOCOL_SCHEMA",
    "CampaignRequest",
    "SpecError",
    "SweepPoint",
    "SweepRequest",
    "decode_line",
    "encode_line",
]

#: Protocol schema tag carried by every streamed event.
PROTOCOL_SCHEMA = "repro.serve/1"

#: Default per-request point ceiling (servers may lower it).
MAX_POINTS_PER_REQUEST = 4096

_TENANT_MAX_LEN = 64


class SpecError(ValueError):
    """A request document that fails validation (HTTP 400)."""


# ----------------------------------------------------------------------
# JSONL framing
# ----------------------------------------------------------------------
def encode_line(obj: Dict[str, object]) -> bytes:
    """One event dict -> one compact, key-sorted JSONL line (bytes).

    Compact separators keep frames small; sorted keys make streams
    deterministic so tests can pin byte-identical payloads.
    """
    return (
        json.dumps(obj, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_line(data: bytes) -> Dict[str, object]:
    """One JSONL line (bytes, with or without trailing newline) -> dict."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise SpecError(f"undecodable JSONL line: {exc}") from exc
    if not isinstance(obj, dict):
        raise SpecError("JSONL line must encode a JSON object")
    return obj


# ----------------------------------------------------------------------
# Sweep requests
# ----------------------------------------------------------------------
def _validate_tenant(tenant: object) -> str:
    if not isinstance(tenant, str) or not tenant:
        raise SpecError("'tenant' must be a non-empty string")
    if len(tenant) > _TENANT_MAX_LEN:
        raise SpecError(
            f"'tenant' longer than {_TENANT_MAX_LEN} characters"
        )
    if not all(ch.isalnum() or ch in "-_." for ch in tenant):
        raise SpecError(
            "'tenant' may only contain alphanumerics, '-', '_' and '.'"
        )
    return tenant


#: Scalar field types we can check on an untrusted config document.
#: ``config_from_dict`` validates structure (unknown keys, nested
#: dataclasses) but not scalar types — fine for trusted local files,
#: not for network input that ends up inside a worker process.
_SCALAR_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: (
        isinstance(v, (int, float)) and not isinstance(v, bool)
    ),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
}


def _validate_config_types(config: SystemConfig) -> None:
    """Reject top-level scalar fields of the wrong JSON type."""
    for fld in dataclasses.fields(SystemConfig):
        type_name = (
            fld.type if isinstance(fld.type, str)
            else getattr(fld.type, "__name__", "")
        )
        check = _SCALAR_CHECKS.get(type_name)
        if check is None:
            continue
        value = getattr(config, fld.name)
        if not check(value):
            raise SpecError(
                f"field {fld.name!r} must be {type_name}, got {value!r}"
            )


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved point of a sweep request."""

    index: int
    config: SystemConfig
    digest: str


@dataclass(frozen=True)
class SweepRequest:
    """A validated sweep submission: who is asking, and for what points."""

    tenant: str
    request_id: Optional[str]
    points: Tuple[SweepPoint, ...] = field(default=())

    _KNOWN_KEYS = frozenset(
        {"tenant", "request_id", "base", "points", "seeds"}
    )

    @classmethod
    def parse(
        cls,
        data: Dict[str, object],
        max_points: int = MAX_POINTS_PER_REQUEST,
    ) -> "SweepRequest":
        """Validate a request document into resolved config points.

        Layering, least to most specific: ``SystemConfig`` defaults,
        then the optional ``base`` object, then each entry of
        ``points`` (a list of partial-config objects; ``[{}]`` means
        "just the base"), then — when ``seeds`` is given — the
        cross-product of every point with every seed.  Raises
        :class:`SpecError` on unknown keys, illegal values, an empty
        point list, or more than ``max_points`` resolved points.
        """
        if not isinstance(data, dict):
            raise SpecError("request body must be a JSON object")
        unknown = set(data) - cls._KNOWN_KEYS
        if unknown:
            raise SpecError(f"unknown request keys: {sorted(unknown)}")
        tenant = _validate_tenant(data.get("tenant", "default"))
        request_id = data.get("request_id")
        if request_id is not None and (
            not isinstance(request_id, str) or len(request_id) > 128
        ):
            raise SpecError("'request_id' must be a string of <= 128 chars")
        base = data.get("base") or {}
        if not isinstance(base, dict):
            raise SpecError("'base' must be a JSON object")
        raw_points = data.get("points")
        if not isinstance(raw_points, list) or not raw_points:
            raise SpecError("'points' must be a non-empty JSON array")
        seeds = data.get("seeds")
        if seeds is not None:
            if (
                not isinstance(seeds, list)
                or not seeds
                or not all(
                    isinstance(s, int) and not isinstance(s, bool)
                    for s in seeds
                )
            ):
                raise SpecError("'seeds' must be a non-empty array of ints")
        n_resolved = len(raw_points) * (len(seeds) if seeds else 1)
        if n_resolved > max_points:
            raise SpecError(
                f"request resolves to {n_resolved} points, over the "
                f"per-request ceiling of {max_points}"
            )
        defaults = config_to_dict(SystemConfig())
        points: List[SweepPoint] = []
        for p_index, overrides in enumerate(raw_points):
            if not isinstance(overrides, dict):
                raise SpecError(
                    f"points[{p_index}] must be a JSON object of "
                    f"SystemConfig overrides"
                )
            merged = dict(defaults)
            merged.update(base)
            merged.update(overrides)
            for seed in seeds if seeds else (None,):
                if seed is not None:
                    merged_seeded = dict(merged)
                    merged_seeded["seed"] = seed
                else:
                    merged_seeded = merged
                try:
                    config = config_from_dict(merged_seeded)
                    _validate_config_types(config)
                except (TypeError, ValueError) as exc:
                    raise SpecError(
                        f"points[{p_index}]"
                        + (f" seed {seed}" if seed is not None else "")
                        + f": {exc}"
                    ) from exc
                points.append(
                    SweepPoint(
                        index=len(points),
                        config=config,
                        digest=config_digest(config),
                    )
                )
        return cls(
            tenant=tenant,
            request_id=request_id,
            points=tuple(points),
        )


# ----------------------------------------------------------------------
# Campaign requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignRequest:
    """A validated campaign submission (spec plus execution knobs)."""

    tenant: str
    spec: "object"  # repro.campaign.CampaignSpec (kept untyped: lazy import)
    jobs: Optional[int] = None
    batch: Optional[int] = None

    _KNOWN_KEYS = frozenset({"tenant", "spec", "jobs", "batch"})

    @classmethod
    def parse(cls, data: Dict[str, object]) -> "CampaignRequest":
        """Validate a campaign document into a spec + execution options.

        The ``spec`` object is handed to
        :meth:`repro.campaign.CampaignSpec.from_dict`, so the server
        rejects exactly what the CLI would reject.  ``jobs``/``batch``
        override the server defaults for this campaign only.
        """
        from repro.campaign import CampaignSpec

        if not isinstance(data, dict):
            raise SpecError("request body must be a JSON object")
        unknown = set(data) - cls._KNOWN_KEYS
        if unknown:
            raise SpecError(f"unknown request keys: {sorted(unknown)}")
        tenant = _validate_tenant(data.get("tenant", "default"))
        spec_data = data.get("spec")
        if not isinstance(spec_data, dict):
            raise SpecError("'spec' must be a campaign spec JSON object")
        try:
            spec = CampaignSpec.from_dict(spec_data)
        except (TypeError, ValueError) as exc:
            raise SpecError(f"invalid campaign spec: {exc}") from exc
        jobs = data.get("jobs")
        if jobs is not None and (
            not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 0
        ):
            raise SpecError("'jobs' must be a non-negative integer")
        batch = data.get("batch")
        if batch is not None and (
            not isinstance(batch, int) or isinstance(batch, bool) or batch < 1
        ):
            raise SpecError("'batch' must be an integer >= 1")
        return cls(tenant=tenant, spec=spec, jobs=jobs, batch=batch)

"""Minimal HTTP/1.1 on asyncio streams — enough protocol, no framework.

The serve subsystem deliberately stays on the stdlib (the repo's
no-new-hard-dependencies rule), and ``http.server`` is thread-per-
connection and synchronous — useless for a server whose whole point is
thousands of cheap concurrent streams.  So this module implements the
small honest subset of HTTP/1.1 the service needs:

* request parsing (request line, headers, ``Content-Length`` bodies)
  with hard limits on header and body size;
* fixed-length JSON/text responses (keep-alive friendly), and
* **close-delimited streaming responses** for JSONL event streams: no
  ``Content-Length``, ``Connection: close``, one flushed line per
  event, end-of-stream = end-of-connection.  Trivially consumable by
  the bundled client, ``curl``, or any language's line reader.

Anything outside that subset (chunked encoding, trailers, pipelining,
TLS) is out of scope on purpose.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from http import HTTPStatus
from typing import Dict, Optional
from urllib.parse import parse_qsl, urlsplit

from repro.serve.protocol import SpecError, encode_line

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "HttpError",
    "Request",
    "ResponseWriter",
    "read_request",
]

#: Upper bound on the request line + headers block.
MAX_HEADER_BYTES = 64 * 1024
#: Upper bound on a request body (campaign grids are text, not blobs).
MAX_BODY_BYTES = 16 * 1024 * 1024

_SUPPORTED_METHODS = ("GET", "POST", "HEAD")


class HttpError(Exception):
    """A malformed or unserviceable request, mapped to an HTTP status."""

    def __init__(self, status: int, reason: str) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Dict[str, object]:
        """The body parsed as a JSON object (:class:`SpecError` if not)."""
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise SpecError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SpecError("request body must be a JSON object")
        return data

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection."""
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` on oversize headers/bodies, unsupported
    methods, or a garbled request line — the connection handler turns
    those into error responses and closes.
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "request headers too large") from exc
    if len(header_block) > MAX_HEADER_BYTES:
        raise HttpError(431, "request headers too large")
    lines = header_block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    if method not in _SUPPORTED_METHODS:
        raise HttpError(405, f"method {method} not supported")
    split = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated request body") from exc
    elif headers.get("transfer-encoding"):
        raise HttpError(411, "chunked request bodies not supported")
    return Request(
        method=method,
        path=split.path or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


class ResponseWriter:
    """Writes fixed or streaming responses onto one connection."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.streaming = False

    def _status_line(self, status: int) -> str:
        try:
            reason = HTTPStatus(status).phrase
        except ValueError:
            reason = "Unknown"
        return f"HTTP/1.1 {status} {reason}\r\n"

    async def send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        keep_alive: bool = True,
        extra_headers: Optional[Dict[str, str]] = None,
        head_only: bool = False,
    ) -> None:
        """Send a complete fixed-length response."""
        headers = [
            self._status_line(status),
            f"Content-Type: {content_type}\r\n",
            f"Content-Length: {len(body)}\r\n",
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}\r\n")
        headers.append("\r\n")
        self.writer.write("".join(headers).encode("latin-1"))
        if not head_only:
            self.writer.write(body)
        await self.writer.drain()

    async def send_json(
        self,
        status: int,
        doc: Dict[str, object],
        keep_alive: bool = True,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """Send a dict as a pretty-printed JSON response."""
        body = (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        await self.send(
            status,
            body,
            keep_alive=keep_alive,
            extra_headers=extra_headers,
        )

    async def start_stream(
        self, status: int = 200, content_type: str = "application/x-ndjson"
    ) -> None:
        """Open a close-delimited JSONL stream (ends when we close)."""
        self.streaming = True
        headers = (
            self._status_line(status)
            + f"Content-Type: {content_type}\r\n"
            + "Connection: close\r\n"
            + "\r\n"
        )
        self.writer.write(headers.encode("latin-1"))
        await self.writer.drain()

    async def stream_event(self, event: Dict[str, object]) -> None:
        """Write one JSONL event line and flush it to the socket.

        ``drain()`` per line applies socket backpressure: a slow
        consumer slows its own stream, never the engine.
        """
        self.writer.write(encode_line(event))
        await self.writer.drain()

"""The lockstep batch driver: bit-exact B-way seed-replica simulation.

One process advances *B* independent :class:`~repro.core.system.ManycoreSystem`
replicas ("lanes") of the same config, differing only in seed, through
the same control-epoch grid the scalar engine uses.  Per epoch boundary
``t`` the driver:

1. drains each lane's event heap up to ``t`` (model plane, scalar);
2. replays the scalar ``_control_tick`` phase order — fault injection,
   thermal step, power management, test scheduling, mapping attempt,
   metric sampling — but with the control-plane *decisions* evaluated
   across the batch at once on numpy structure-of-arrays
   (:class:`~repro.batch.arrays.BatchArrays`):

   * the PID power controller's update is one vectorized expression over
     ``(B,)`` arrays, written back into each lane's controller so the
     actuation walk (inherently sequential per lane) sees bit-identical
     state;
   * test criticality is computed as ``(B, C)`` array math; the per-lane
     scheduler tick is **skipped entirely** when the batch-level due
     mask proves it would be a no-op (no emergency, and no candidate
     core over threshold — the common case on a loaded chip);
   * the per-core stress/timer arrays are maintained *incrementally* —
     the aging model mirrors every ``stress_since_test`` write and the
     test runner's completion hook mirrors the reset/timestamp — so the
     epoch loop never re-gathers per-core attributes.

Every shortcut is an exact refactor: skipped work is work the scalar
engine would have done with no observable effect, and the array math
mirrors the scalar float expressions elementwise (IEEE-754 doubles are
deterministic, so matching the operation order matches the bits).  The
oracle contract — ``run_batch(config, seeds)`` digest-equals
``[run_system(replace(config, seed=s)) for s in seeds]`` — is pinned by
``tests/test_batch.py`` and ``benchmarks/bench_batch.py``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

import numpy as np

from repro.aging.model import AgingModel
from repro.batch.arrays import BatchArrays, as_seed_array
from repro.batch.routes import warm_route_cache
from repro.core.criticality import TestCriticality
from repro.core.mapping import TestAwareUtilizationMapper
from repro.core.scheduler import PowerAwareTestScheduler
from repro.core.system import (
    ManycoreSystem,
    SimulationResult,
    SystemConfig,
    run_system,
)
from repro.obs import active_journal, active_profiler
from repro.obs.provenance import digest_of
from repro.telemetry import active_telemetry
from repro.platform.core import CoreState
from repro.power.manager import PIDPowerManager
from repro.testing.schedulers import NoTestScheduler

class _LaneCriticality(TestCriticality):
    """Criticality that serves one lane's row of the batched value array.

    During a batched control tick the driver installs the lane's
    freshly-computed ``(C,)`` value row (valid only at that tick's
    timestamp); :meth:`value` serves from it, so the scheduler's
    rank/is_due walk and the test-aware mapper's cost terms reuse the
    vectorized result instead of recomputing per core.  Any other
    ``now`` (model events between ticks, next-slice delay-0 mapping
    retries) falls back to the exact scalar computation.
    """

    def __init__(self, params) -> None:
        super().__init__(params)
        self._row: Optional[List[float]] = None
        self._row_now = 0.0

    def set_row(self, row: List[float], now: float) -> None:
        self._row = row
        self._row_now = now

    def clear_row(self) -> None:
        self._row = None

    def value(self, core, now: float) -> float:
        row = self._row
        if row is not None and now == self._row_now:
            return row[core.core_id]
        return super().value(core, now)


class _RowAgingModel(AgingModel):
    """Aging model that mirrors ``stress_since_test`` into a batch row.

    ``accrue_busy`` is the *only* writer that increases a core's
    ``stress_since_test`` (tests accrue ``age_stress`` only, and the
    reset on test completion is mirrored by the runner's ``on_complete``
    hook), so overriding it keeps the lane's ``(C,)`` stress row exactly
    equal to the live core attributes at all times — the driver never
    has to re-gather per-core state on the epoch grid.
    """

    def __init__(self, node, params) -> None:
        super().__init__(node, params)
        self._row: Optional[np.ndarray] = None

    def accrue_busy(self, core, duration_us, level, activity):
        delta = super().accrue_busy(core, duration_us, level, activity)
        row = self._row
        if row is not None:
            row[core.core_id] = core.stress_since_test
        return delta


class _Lane:
    """One seed-replica: an unmodified scalar system plus batch shims."""

    def __init__(self, config: SystemConfig) -> None:
        system = ManycoreSystem(config)
        crit = _LaneCriticality(system.criticality.params)
        system.criticality = crit
        if isinstance(system.test_scheduler, PowerAwareTestScheduler):
            system.test_scheduler.criticality = crit
        if isinstance(system.mapper, TestAwareUtilizationMapper):
            system.mapper.criticality = crit
        # Swap in the row-mirroring aging model everywhere the scalar
        # system wired the original (same node/params — it is stateless,
        # so the replacement is behavior-identical).
        aging = _RowAgingModel(system.aging.node, system.aging.params)
        system.aging = aging
        system.executor.aging = aging
        system.runner.aging = aging
        self.aging = aging
        self.system = system
        self.crit = crit
        for arrival in system.generate_arrivals():
            system.sim.at(arrival.time, system._on_arrival, arrival)

    def bind_rows(self, stress_row: np.ndarray, last_row: np.ndarray) -> None:
        """Point the mirrors at this lane's batch rows and hook resets."""
        self.aging._row = stress_row

        def _on_test_complete(core, session) -> None:
            cid = core.core_id
            last_row[cid] = core.last_test_end
            stress_row[cid] = 0.0

        self.system.runner.on_complete.append(_on_test_complete)


def run_batch(config: SystemConfig, seeds) -> List[SimulationResult]:
    """Run ``config`` once per seed, lanes advanced in lockstep.

    Returns one :class:`~repro.core.system.SimulationResult` per seed,
    in seed order, each digest-identical (see :func:`result_digest`) to
    ``run_system(replace(config, seed=seed))``.

    ``seeds`` must be a 1-D, non-empty integer sequence/array (see
    :func:`~repro.batch.arrays.as_seed_array` for the exact validation).
    When a process-wide journal or profiler is active the call falls
    back to the scalar engine per seed — observability streams are
    per-run and cannot be interleaved across lanes — so results are
    identical either way.  An active telemetry registry does **not**
    force the fallback: counters and gauges merge order-independently,
    so the batch path maintains them at the same choke points as the
    scalar engine (pinned by the snapshot-identity tests).
    """
    seed_list = [int(s) for s in as_seed_array(seeds)]
    if active_journal().enabled or active_profiler().enabled:
        return [run_system(replace(config, seed=s)) for s in seed_list]
    lanes = [_Lane(replace(config, seed=s)) for s in seed_list]
    _drive(config, lanes)
    tm = active_telemetry()
    if tm.enabled:
        tm.counter("batch.dispatches").inc()
        tm.counter("batch.lanes").inc(len(lanes))
        tm.histogram("batch.lane_width").observe(float(len(lanes)))
        runs = tm.counter("sim.runs")
        events = tm.counter("sim.events")
        for lane in lanes:
            runs.inc()
            events.inc(lane.system.sim.events_fired)
    return [lane.system._collect_result() for lane in lanes]


def result_digest(result: SimulationResult) -> str:
    """Stable digest over everything a run observably produced.

    Covers the scalar summary row, per-core busy/aging/test tallies,
    per-level test counts, NoC stats, event/abort/skip counters, policy
    names and the full fault-record list — everything except wall-time
    provenance (profile timings, journal event counts), which legitimately
    differs between two bit-identical runs.  Batched-vs-scalar identity
    is asserted on this digest.
    """
    faults = tuple(
        (r.core_id, r.injected_at, r.manifest_level, r.kind, r.detected_at)
        for r in result.fault_records
    )
    return digest_of(
        [
            sorted(result.summary().items()),
            sorted(result.per_core_busy_us.items()),
            sorted(result.per_core_age_stress.items()),
            sorted(result.per_core_tests.items()),
            sorted(result.per_level_tests.items()),
            result.noc_avg_hops,
            result.peak_temperature_c,
            result.events_fired,
            result.emergency_aborts,
            result.skipped_no_budget,
            result.scheduler_name,
            result.mapper_name,
            result.power_policy_name,
            faults,
        ]
    )


# ----------------------------------------------------------------------
# The lockstep drive loop
# ----------------------------------------------------------------------
def _drive(config: SystemConfig, lanes: List[_Lane]) -> None:
    """Advance every lane to the horizon along the scalar epoch grid."""
    warm_route_cache(lanes[0].system.mesh)
    n_lanes = len(lanes)
    n_cores = len(lanes[0].system.chip.cores)
    arrays = BatchArrays(n_lanes, n_cores)
    # Fresh systems start with stress == last_test_end == 0.0, matching
    # the zero-initialised arrays; from here the rows are maintained
    # incrementally by the aging mirror and the test-completion hook.
    for i, lane in enumerate(lanes):
        lane.bind_rows(arrays.stress[i], arrays.last_test_end[i])
        # The type-index column is static per batch (all lanes share one
        # config); loading it up front keeps per-type control-plane math
        # (hetero grids) in numpy instead of per-core attribute walks.
        arrays.bind_types(i, lane.system.chip.cores)
    epoch = config.epoch_us
    horizon = config.horizon_us
    crit_params = lanes[0].crit.params

    # Hoist the per-lane object graph out of the epoch loop: every list
    # below is bound once in ``ManycoreSystem.__init__`` and never
    # rebound, and the attribute chains are hot enough (lanes x epochs x
    # phases) that the lookups are measurable.
    systems = [lane.system for lane in lanes]
    sims = [system.sim for system in systems]
    injectors = [system.injector for system in systems]
    meters = [system.meter for system in systems]
    chips = [system.chip for system in systems]
    metrics_list = [system.metrics for system in systems]
    queues = [system.queue for system in systems]
    crits = [lane.crit for lane in lanes]
    busy_s, testing_s, idle_s = (
        CoreState.BUSY,
        CoreState.TESTING,
        CoreState.IDLE,
    )

    managers = [system.power_manager for system in systems]
    # PID-family managers (``pid`` and ``tsp``) share the controller
    # update; their per-epoch caps may differ per lane (TSP counts the
    # lane's active cores), which is why ``cap`` is a (B,) array.
    pid_family = isinstance(managers[0], PIDPowerManager)
    if pid_family:
        gains = managers[0].controller.gains
        integral_limit = managers[0].controller.integral_limit
        primed = False

    schedulers = [system.test_scheduler for system in systems]
    sched0 = schedulers[0]
    aware = isinstance(sched0, PowerAwareTestScheduler)
    no_tests = isinstance(sched0, NoTestScheduler)
    mapper_wants_rows = isinstance(
        lanes[0].system.mapper, TestAwareUtilizationMapper
    )
    need_rows = aware or mapper_wants_rows
    min_interval = sched0.min_interval_us
    thermal_on = lanes[0].system.thermal is not None
    thermal_margin = config.thermal_test_margin_c

    # Telemetry: every lane resolved the same process-active registry at
    # construction, so the per-name metric handles are shared objects —
    # hoist them once.  The batched epoch pass below touches them at the
    # same points the scalar ``_control_tick`` does.
    tm_on = systems[0].telemetry.enabled
    if tm_on:
        tm_epochs = systems[0]._tm_epochs
        tm_measured = systems[0]._tm_measured
        tm_headroom = systems[0]._tm_headroom
        budget0 = systems[0].budget

    # The scalar grid: ``sim.every`` fires first at now(0)+epoch and each
    # tick reschedules at its own (float) fire time + epoch, so the grid
    # is the same left-to-right float accumulation as this loop.
    t = 0.0
    while True:
        t += epoch
        if t > horizon:
            break
        # -- per-lane pass: heap drain, fault injection, thermal step,
        # PID input gather.  Lanes are independent, so fusing these
        # phases into ONE walk over the lane list (instead of one walk
        # per phase) preserves the scalar per-lane phase order while
        # touching each lane's working set once — at B=16/64 the extra
        # passes are a measurable cache-locality tax.
        caps = arrays.cap
        measured = arrays.measured
        for i in range(n_lanes):
            sims[i].run(until=t)
            injectors[i].tick(t, epoch)
            if thermal_on:
                thermal = systems[i].thermal
                meter = meters[i]
                thermal.step(
                    {c.core_id: meter.core_power(c) for c in chips[i]},
                    epoch,
                )
                metrics_list[i].trace.record(
                    "thermal.max_c", t, thermal.hottest()
                )
            if pid_family:
                manager = managers[i]
                caps[i] = manager.current_cap()
                measured[i] = manager.meter.chip_power()
        # -- control phase 3: power management --------------------------
        if pid_family:
            # Vectorized PIDController.update: same expressions, same
            # order, over (B,) float64 arrays.
            error = caps - measured
            integral = arrays.pid_integral
            integral += error * epoch
            np.minimum(integral, integral_limit, out=integral)
            np.maximum(integral, -integral_limit, out=integral)
            if primed:
                derivative = (error - arrays.pid_last_error) / epoch
            else:
                derivative = np.zeros(n_lanes)
            signal = (
                gains.kp * error + gains.ki * integral + gains.kd * derivative
            )
            target = np.minimum(caps, measured + signal)
            arrays.pid_last_error[:] = error
            primed = True
            for i, manager in enumerate(managers):
                controller = manager.controller
                manager._tick_now = t
                controller.set_point = float(caps[i])
                controller._integral = float(integral[i])
                controller._last_error = float(error[i])
                controller._primed = True
                manager._actuate(t, float(measured[i]), float(target[i]))
        else:
            for manager in managers:
                manager.tick(t, epoch)
        # -- control phase 4: test scheduling ---------------------------
        if not no_tests or mapper_wants_rows:
            _scheduler_phase(
                systems,
                schedulers,
                meters,
                chips,
                crits,
                arrays,
                t,
                epoch,
                crit_params,
                min_interval,
                aware=aware,
                no_tests=no_tests,
                need_rows=need_rows,
                thermal_margin=thermal_margin if thermal_on else None,
            )
        # -- control phase 5: mapping attempt + metric sampling ---------
        for i in range(n_lanes):
            # The profiler is guaranteed off on the batch path (run_batch
            # falls back to the scalar engine otherwise), so the timing
            # wrapper around ``_try_map`` is skipped outright.
            systems[i]._try_map_impl()
            metrics = metrics_list[i]
            breakdown = meters[i].breakdown()
            if tm_on:
                tm_epochs.inc()
                tm_measured.set(breakdown.total)
                tm_headroom.set(budget0.headroom(breakdown.total))
            metrics.sample_power(t, breakdown)
            state_ids = chips[i].state_ids
            metrics.sample_counts(
                t,
                busy=len(state_ids(busy_s)),
                testing=len(state_ids(testing_s)),
                idle=len(state_ids(idle_s)),
                queued=len(queues[i]),
            )
            # The scalar tick closure itself counts as one fired event.
            sims[i].events_fired += 1
        # Rows are valid only within this tick's control phase: delay-0
        # events firing at the same timestamp next slice must recompute
        # from live core state, exactly as the scalar engine does.
        if need_rows:
            for crit in crits:
                crit.clear_row()
    # -- drain the tail past the last epoch boundary --------------------
    for sim in sims:
        sim.run(until=horizon)


def _scheduler_phase(
    systems,
    schedulers,
    meters,
    chips,
    crits,
    arrays: BatchArrays,
    t: float,
    epoch: float,
    crit_params,
    min_interval: float,
    *,
    aware: bool,
    no_tests: bool,
    need_rows: bool,
    thermal_margin: Optional[float],
) -> None:
    """Batched criticality/headroom evaluation + per-lane scheduler ticks.

    Computes the ``(B, C)`` criticality values and due masks once, then
    calls each lane's scalar ``tick`` only when it can have an effect:
    a power-aware tick is a no-op unless the chip is in a budget
    emergency or some candidate core is due *and* headroom/slots exist;
    a baseline tick is a no-op unless some candidate core's interval
    has elapsed.  (With the journal off — guaranteed on the batch path —
    the skipped branches emit nothing either; with telemetry on, a skip
    that replaces a counting early-return of the scalar ``tick`` adds
    the identical ``test.defer.*`` counts itself, so merged snapshots
    cannot tell the paths apart.)

    The ``stress``/``last_test_end`` arrays are already current (they are
    maintained incrementally, see :class:`_RowAgingModel` and
    :meth:`_Lane.bind_rows`), so the only per-lane state read here is
    the idle-and-unowned candidate mask.
    """
    n_lanes = arrays.n_lanes
    candidate = arrays.candidate
    idle_s = CoreState.IDLE
    for i in range(n_lanes):
        row = candidate[i]
        row[:] = False
        chip = chips[i]
        cores = chip.cores
        # Reads the attribute behind the ``owner_app`` property directly:
        # this scan touches every idle core of every lane every epoch, and
        # the property wrapper is measurable at that volume.
        ids = [
            cid
            for cid in chip.state_ids(idle_s)
            if cores[cid]._owner_app is None
        ]
        if ids:
            row[ids] = True
    raw_elapsed = t - arrays.last_test_end
    interval_ok = raw_elapsed >= min_interval
    if need_rows:
        values = arrays.criticality_values(t, crit_params)
        if not aware:
            # Only the test-aware mapper consumes rows on this branch;
            # power-aware lanes install rows lazily, just before a tick.
            for i in range(n_lanes):
                crits[i].set_row(values[i].tolist(), t)
    if no_tests:
        return
    if aware:
        np.logical_and(candidate, interval_ok, out=arrays.due)
        np.logical_and(arrays.due, values >= crit_params.threshold, out=arrays.due)
        any_due = arrays.due.any(axis=1)
        measured = arrays.measured
        for i in range(n_lanes):
            measured[i] = meters[i].chip_power()
        sched0 = schedulers[0]
        cap = sched0.budget.cap
        guarded = sched0.budget.guarded_cap
        reserve = sched0.reserve_w
        emergency = measured > cap
        headroom = guarded - measured - reserve
        for i in range(n_lanes):
            if thermal_margin is not None:
                thermal = systems[i].thermal
                if thermal.headroom_c() < thermal_margin:
                    continue
            scheduler = schedulers[i]
            if not emergency[i]:
                if not any_due[i]:
                    continue
                if headroom[i] <= 0.0 or len(
                    scheduler.runner.active_sessions()
                ) >= scheduler.max_concurrent:
                    tm = scheduler.telemetry
                    if tm.enabled:
                        # The scalar tick's early-return defers every due
                        # core; the due mask is that candidate set.
                        n_due = int(arrays.due[i].sum())
                        if n_due:
                            reason = (
                                "no-headroom"
                                if headroom[i] <= 0.0
                                else "max-concurrent"
                            )
                            tm.counter("test.defer." + reason).inc(n_due)
                    continue
            crits[i].set_row(values[i].tolist(), t)
            scheduler.measured_override = float(measured[i])
            scheduler.tick(t, epoch)
    else:
        any_due = (candidate & interval_ok).any(axis=1)
        for i in range(n_lanes):
            if thermal_margin is not None:
                thermal = systems[i].thermal
                if thermal.headroom_c() < thermal_margin:
                    continue
            if any_due[i]:
                schedulers[i].tick(t, epoch)

"""Batched lockstep simulation: *B* seed-replicas of one config per process.

Every experiment and campaign in this repo is a statistic over seed
replicas of a single :class:`~repro.core.system.SystemConfig`.  The
scalar engine advances one Python-object chip at a time; this package
advances a whole batch of them in lockstep, epoch by epoch, with the hot
per-core control-plane state (criticality stress/timers, TDP headroom,
PID controller state, candidate masks) held in numpy structure-of-arrays
with a leading batch axis.

The model plane (discrete events, task execution, NoC transfers) stays
on the scalar engine per lane — that is what makes the batch **bit-exact**:
:func:`run_batch` produces, per seed, results digest-identical to
``run_system(replace(config, seed=s))``.  The scalar engine is the
verification oracle; identity is pinned by ``tests/test_batch.py`` and
gated in CI by ``benchmarks/bench_batch.py``.  The speed comes from the
vectorized control plane deciding, across the batch at once, which
per-lane scalar work can be skipped entirely (test-scheduler ticks with
no due candidate, repeated placement attempts over an unchanged
availability set).

See ``docs/performance.md`` for the array inventory and the batch-axis
convention, and :func:`run_batch` for the envelope (when the scalar
oracle runs instead).
"""

from repro.batch.arrays import BatchArrays, BatchShapeError, as_seed_array
from repro.batch.lockstep import result_digest, run_batch
from repro.batch.routes import hop_matrix, warm_route_cache

__all__ = [
    "BatchArrays",
    "BatchShapeError",
    "as_seed_array",
    "hop_matrix",
    "result_digest",
    "run_batch",
    "warm_route_cache",
]

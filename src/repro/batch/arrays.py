"""Structure-of-arrays state for lockstep seed-replica batches.

Convention: **the batch axis leads**.  Every array is either ``(B,)``
(one scalar per lane — measured chip power, PID cap/error/integral) or
``(B, C)`` (one value per lane per core — test-criticality stress and
timers, candidate/due masks).  Row ``i`` always belongs to lane ``i``,
the replica running ``seeds[i]``; column ``j`` of a ``(B, C)`` array is
core ``j`` (``core_id`` order, which is the chip's construction order).

Everything is float64/bool: the lockstep driver mirrors scalar Python
float expressions elementwise, and IEEE-754 double ops are bit-identical
between the two representations as long as the operation order matches.
"""

from __future__ import annotations

import numpy as np


class BatchShapeError(ValueError):
    """A batch array or seed vector has the wrong shape for the batch."""


def as_seed_array(seeds) -> np.ndarray:
    """Validate and normalise a seed batch to a 1-D integer ndarray.

    Accepts any sequence or ndarray of integers.  Raises
    :class:`BatchShapeError` for a non-1-D or empty batch and
    :class:`TypeError` for a non-integer dtype (floats would silently
    truncate, bools are almost certainly a mask passed by mistake).
    """
    arr = np.asarray(seeds)
    if arr.size == 0:
        # Checked before dtype: np.asarray([]) defaults to float64, and
        # "empty batch" is the useful diagnosis there, not the dtype.
        raise BatchShapeError("seed batch must contain at least one seed")
    if arr.dtype.kind not in "iu":
        raise TypeError(
            f"seeds must have an integer dtype, got {arr.dtype} "
            f"(floats/bools are rejected rather than coerced)"
        )
    if arr.ndim != 1:
        raise BatchShapeError(
            f"seeds must be 1-D (the batch axis), got shape {arr.shape}"
        )
    return arr


class BatchArrays:
    """Pre-allocated SoA buffers for one lockstep batch (B lanes, C cores).

    The driver reuses these every control epoch instead of re-allocating;
    all arrays follow the leading-batch-axis convention documented in the
    module docstring.
    """

    def __init__(self, n_lanes: int, n_cores: int) -> None:
        if not isinstance(n_lanes, int) or not isinstance(n_cores, int):
            raise TypeError("n_lanes and n_cores must be ints")
        if n_lanes < 1 or n_cores < 1:
            raise BatchShapeError(
                f"batch needs at least one lane and one core, "
                f"got B={n_lanes}, C={n_cores}"
            )
        self.n_lanes = n_lanes
        self.n_cores = n_cores
        shape = (n_lanes, n_cores)
        #: ``stress_since_test`` per lane per core (criticality numerator).
        self.stress = np.zeros(shape)
        #: ``last_test_end`` per lane per core (interval + time term).
        self.last_test_end = np.zeros(shape)
        #: Criticality values (the scalar metric, computed batch-wide).
        self.values = np.zeros(shape)
        #: Idle-and-unowned mask: cores a non-intrusive test could use.
        self.candidate = np.zeros(shape, dtype=bool)
        #: Candidate & interval-elapsed & over-threshold: scheduler work.
        self.due = np.zeros(shape, dtype=bool)
        #: Measured chip power per lane (the TDP-headroom input).
        self.measured = np.zeros(n_lanes)
        #: Per-lane power cap this epoch (guarded TDP, or TSP's count cap).
        self.cap = np.zeros(n_lanes)
        #: PID integral state per lane (mirrors ``PIDController._integral``).
        self.pid_integral = np.zeros(n_lanes)
        #: PID last error per lane (mirrors ``PIDController._last_error``).
        self.pid_last_error = np.zeros(n_lanes)
        #: Per-lane per-core index into the lane chip's core-type catalog
        #: (``Core.type_index``).  Static for a batch — every lane runs
        #: the same config, so every row is identical — but kept per lane
        #: to preserve the leading-batch-axis convention.  int64 so the
        #: SoA control plane stays fully vectorized on mixed-type grids.
        self.type_index = np.zeros(shape, dtype=np.int64)

    # ------------------------------------------------------------------
    def bind_types(self, lane: int, cores) -> None:
        """Load one lane's per-core type indexes into row ``lane``."""
        if len(cores) != self.n_cores:
            raise BatchShapeError(
                f"lane {lane} has {len(cores)} cores, batch expects "
                f"{self.n_cores}"
            )
        self.type_index[lane] = [core.type_index for core in cores]

    def gather_criticality(self, lane: int, cores) -> None:
        """Load one lane's per-core stress/timer state into row ``lane``.

        ``cores`` must be the chip's core list in ``core_id`` order (the
        chip builds them that way); raises :class:`BatchShapeError` on a
        row-length mismatch so a wrong-chip batch fails loudly.
        """
        if len(cores) != self.n_cores:
            raise BatchShapeError(
                f"lane {lane} has {len(cores)} cores, batch expects "
                f"{self.n_cores}"
            )
        self.stress[lane] = [core.stress_since_test for core in cores]
        self.last_test_end[lane] = [core.last_test_end for core in cores]

    def criticality_values(self, now: float, params) -> np.ndarray:
        """Vectorized criticality metric over the whole batch.

        Elementwise-identical to
        :meth:`repro.core.criticality.TestCriticality.value`:
        ``w_s·(stress/S_ref) + w_t·(max(0, now−last)/T_ref)``.
        """
        elapsed = np.maximum(now - self.last_test_end, 0.0)
        np.multiply(
            params.stress_weight,
            self.stress / params.stress_reference,
            out=self.values,
        )
        self.values += params.time_weight * (elapsed / params.time_reference_us)
        return self.values

"""Batched XY-route helpers over the process-wide link-id caches.

The NoC layer already shares one route/link-id cache per mesh geometry
across every :class:`~repro.noc.topology.Mesh` instance in the process
(``_SHARED_ROUTE_CACHES``), so all lanes of a lockstep batch evaluate
route costs against the same cached integer link ids.  This module adds
the batch-side conveniences: a one-shot warmer so no lane ever populates
a route inside the hot loop, and a dense hop matrix for vectorized
distance/cost evaluation across a batch.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

import numpy as np

from repro.noc.routing import xy_link_ids

#: Mesh geometries already fully warmed this process (route caches are
#: shared per geometry, so warming is a per-geometry, not per-batch, cost).
_WARMED: Set[Tuple[int, int]] = set()

#: Dense hop matrices per geometry (see :func:`hop_matrix`).
_HOP_MATRICES: Dict[Tuple[int, int], np.ndarray] = {}


def warm_route_cache(mesh) -> None:
    """Pre-fill the shared XY link-id cache for every (src, dst) pair.

    Idempotent and memoized per mesh geometry: the first batch on an
    ``WxH`` mesh pays the population cost once, every later lane and
    batch reuses the cached integer link ids.
    """
    key = (mesh.width, mesh.height)
    if key in _WARMED:
        return
    positions = list(mesh.positions())
    for src in positions:
        for dst in positions:
            xy_link_ids(mesh, src, dst)
    _WARMED.add(key)


def hop_matrix(mesh) -> np.ndarray:
    """Dense ``(N, N)`` XY hop-count matrix in ``core_id`` order.

    ``hop_matrix(mesh)[a, b]`` is the number of links an XY-routed flit
    crosses from core ``a``'s node to core ``b``'s node.  Built from the
    same cached link-id routes the scalar NoC model uses, memoized per
    geometry, and returned read-only — batch cost evaluation can index
    it with whole id arrays instead of walking routes per pair.
    """
    key = (mesh.width, mesh.height)
    cached = _HOP_MATRICES.get(key)
    if cached is not None:
        return cached
    warm_route_cache(mesh)
    positions = list(mesh.positions())
    n = len(positions)
    hops = np.zeros((n, n), dtype=np.int64)
    for a, src in enumerate(positions):
        for b, dst in enumerate(positions):
            hops[a, b] = len(xy_link_ids(mesh, src, dst))
    hops.setflags(write=False)
    _HOP_MATRICES[key] = hops
    return hops

"""Aging and fault-injection substrate."""

from repro.aging.faults import FaultInjector, FaultParameters, FaultRecord
from repro.aging.lifetime import LifetimeAnalyzer, LifetimeParameters, LifetimeReport
from repro.aging.model import AgingModel, AgingParameters

__all__ = [
    "AgingModel",
    "AgingParameters",
    "FaultInjector",
    "FaultParameters",
    "FaultRecord",
    "LifetimeAnalyzer",
    "LifetimeParameters",
    "LifetimeReport",
]

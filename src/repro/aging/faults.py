"""Permanent-fault injection with an age-dependent hazard.

Premature permanent faults are the threat model of the paper ("aggressive
technology scaling ... increased occurrence of premature permanent
faults").  We inject them per core with a hazard that grows with the
core's accumulated aging stress:

``λ(core) = λ0 · (1 + age_stress / stress_scale)``

Each control epoch the injector Bernoulli-samples every healthy core with
``p = 1 − exp(−λ · dt)``.  An injected fault gets a *corner*: a
manifestation level plus a direction.

* ``high`` faults (e.g. delay faults) misbehave at level indices **at or
  above** the manifestation level — they need a fast/hot test to show;
* ``low`` faults (e.g. near-threshold SNM failures) misbehave at level
  indices **at or below** it — they only show in low-voltage operation.

This two-sided corner model is what makes the TC'16 "test at every V/F
level" extension meaningful (experiment E6): a nominal-only test campaign
is structurally blind to ``low`` faults, however often it runs.

A fault is *latent* until a test whose level reaches its corner runs on
the core (detection also requires passing the routine's coverage draw).
Detection latency — injection to detection — is the E8 headline metric,
and undetected-fault exposure time (core kept computing while faulty) is
the silent-corruption proxy.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.platform.chip import Chip
from repro.platform.core import Core


@dataclass(frozen=True)
class FaultParameters:
    """Hazard-law coefficients."""

    base_hazard_per_us: float = 0.0   # λ0; 0 disables injection
    stress_scale: float = 50.0        # stress units that double the hazard
    max_manifest_fraction: float = 1.0  # manifest level drawn in [0, L·frac)
    low_corner_fraction: float = 0.35   # share of faults that are "low" kind

    def __post_init__(self) -> None:
        if self.base_hazard_per_us < 0:
            raise ValueError("base hazard must be non-negative")
        if self.stress_scale <= 0:
            raise ValueError("stress_scale must be positive")
        if not 0.0 < self.max_manifest_fraction <= 1.0:
            raise ValueError("max_manifest_fraction must be in (0, 1]")
        if not 0.0 <= self.low_corner_fraction <= 1.0:
            raise ValueError("low_corner_fraction must be in [0, 1]")


@dataclass
class FaultRecord:
    """Lifecycle of one injected fault."""

    core_id: int
    injected_at: float
    manifest_level: int
    kind: str = "high"                 # "high" | "low" corner direction
    detected_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("high", "low"):
            raise ValueError(f"unknown fault kind {self.kind!r}")

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    def manifests_at(self, level_index: int) -> bool:
        """Does the fault misbehave at the given DVFS level?"""
        if self.kind == "high":
            return level_index >= self.manifest_level
        return level_index <= self.manifest_level

    def detection_latency(self) -> Optional[float]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at


@dataclass
class FaultInjector:
    """Samples age-dependent permanent faults each epoch."""

    chip: Chip
    params: FaultParameters
    rng: random.Random
    records: List[FaultRecord] = field(default_factory=list)

    def hazard(self, core: Core) -> float:
        """Instantaneous fault hazard of ``core`` (per µs).

        Scaled by the core type's ``fault_hazard_scale`` (1.0 for ``std``).
        A zero scale pins the hazard to exactly 0, so such a core draws a
        Bernoulli sample with p = 0 each epoch: it can never fault, yet it
        consumes the same RNG draw as any other core, leaving the other
        cores' fault streams untouched (the typed zero-hazard metamorphic
        relation relies on both halves).
        """
        return (
            self.params.base_hazard_per_us
            * (1.0 + core.age_stress / self.params.stress_scale)
            * core.core_type.fault_hazard_scale
        )

    def tick(self, now: float, dt: float) -> List[FaultRecord]:
        """Sample injections over the epoch just elapsed."""
        if self.params.base_hazard_per_us == 0.0:
            return []
        injected: List[FaultRecord] = []
        n_levels = len(self.chip.vf_table)
        max_manifest = max(
            1, int(round(n_levels * self.params.max_manifest_fraction))
        )
        for core in self.chip:
            if core.is_faulty() or core.fault_present:
                continue
            p = 1.0 - math.exp(-self.hazard(core) * dt)
            if self.rng.random() < p:
                kind = (
                    "low"
                    if self.rng.random() < self.params.low_corner_fraction
                    else "high"
                )
                record = FaultRecord(
                    core_id=core.core_id,
                    injected_at=now,
                    manifest_level=self.rng.randrange(max_manifest),
                    kind=kind,
                )
                core.fault_present = True
                core.fault_injected_at = now
                self.records.append(record)
                injected.append(record)
        return injected

    # ------------------------------------------------------------------
    # Detection bookkeeping (called by the test runner)
    # ------------------------------------------------------------------
    def open_record(self, core: Core) -> Optional[FaultRecord]:
        """The undetected fault record of ``core``, if any."""
        for record in reversed(self.records):
            if record.core_id == core.core_id and not record.detected:
                return record
        return None

    def try_detect(
        self, core: Core, now: float, test_level_index: int, coverage: float
    ) -> Optional[FaultRecord]:
        """Attempt detection after a test at ``test_level_index`` finished.

        Detection requires the fault to manifest at the tested corner and
        the routine's structural coverage draw to succeed.
        """
        if not core.fault_present:
            return None
        record = self.open_record(core)
        if record is None:
            return None
        if not record.manifests_at(test_level_index):
            return None
        if self.rng.random() >= coverage:
            return None
        record.detected_at = now
        core.fault_detected_at = now
        return record

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def detected_records(self) -> List[FaultRecord]:
        return [r for r in self.records if r.detected]

    def undetected_records(self) -> List[FaultRecord]:
        return [r for r in self.records if not r.detected]

    def mean_detection_latency(self) -> Optional[float]:
        latencies = [r.detection_latency() for r in self.detected_records()]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

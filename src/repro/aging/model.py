"""Device-aging (wear-out stress) model.

The DATE'15 test-criticality metric ranks cores by how much *stress* they
have accumulated since they were last tested: utilization ages a core, and
running hot (high voltage) ages it faster.  We model stress accrual as

``d(stress) = base_rate · activity · exp(k · (V − V_nominal)) · dt``

while a core executes (workload or, at a configurable fraction, test
routines).  This is a deliberately simple exponential-in-voltage law — it
preserves the two properties the scheduler exploits (more utilization ⇒
more stress; higher V/F ⇒ more stress) without fitting a specific NBTI/HCI
dataset we do not have (see DESIGN.md substitutions).

Accrued stress feeds two sinks on the core record:

* ``age_stress`` — lifetime stress, drives the fault-injection hazard;
* ``stress_since_test`` — reset by a completed test, drives criticality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.platform.core import Core
from repro.platform.dvfs import VFLevel
from repro.platform.technology import TechnologyNode


@dataclass(frozen=True)
class AgingParameters:
    """Coefficients of the stress-accrual law."""

    base_rate: float = 1.0 / 1000.0   # stress units per µs busy at nominal V
    voltage_acceleration: float = 4.0  # k in exp(k * (V - Vnom))
    test_stress_fraction: float = 0.5  # tests stress the core too, but less

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0.0 <= self.test_stress_fraction <= 1.0:
            raise ValueError("test_stress_fraction must be in [0, 1]")


class AgingModel:
    """Accrues wear-out stress on cores as they execute."""

    def __init__(self, node: TechnologyNode, params: AgingParameters = AgingParameters()) -> None:
        self.node = node
        self.params = params

    def stress_rate(self, level: VFLevel, activity: float = 1.0) -> float:
        """Stress units accrued per µs of execution at ``level``."""
        if activity < 0:
            raise ValueError("activity must be non-negative")
        accel = math.exp(
            self.params.voltage_acceleration * (level.vdd - self.node.vdd_nominal)
        )
        return self.params.base_rate * activity * accel

    def accrue_busy(
        self, core: Core, duration_us: float, level: VFLevel, activity: float
    ) -> float:
        """Accrue workload-execution stress on ``core``; returns the delta.

        The core type's ``aging_scale`` multiplies the accrual (exactly
        1.0 for ``std``, so homogeneous chips are bit-unchanged).
        """
        if duration_us < 0:
            raise ValueError("duration must be non-negative")
        delta = (
            self.stress_rate(level, activity)
            * duration_us
            * core.core_type.aging_scale
        )
        core.age_stress += delta
        core.stress_since_test += delta
        return delta

    def accrue_test(self, core: Core, duration_us: float, level: VFLevel) -> float:
        """Accrue (reduced) stress for executing a test routine."""
        if duration_us < 0:
            raise ValueError("duration must be non-negative")
        delta = (
            self.stress_rate(level, 1.0)
            * self.params.test_stress_fraction
            * duration_us
            * core.core_type.aging_scale
        )
        core.age_stress += delta
        # Note: stress_since_test is *not* increased by the test itself; the
        # test's completion resets it (see the test runner).
        return delta

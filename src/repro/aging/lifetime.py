"""Lifetime-reliability analysis (the DATE'16 companion extension).

The authors' follow-up work ("A lifetime-aware runtime mapping approach
for many-core systems in the dark silicon era", DATE 2016, and "Can dark
silicon be exploited to prolong system lifetime?", IEEE D&T 2017) turns
the same aging substrate into a *lifetime* story: runtime mapping that
levels wear across the die postpones the first core failures and extends
the usable life of the chip.

We expose that analysis on top of :mod:`repro.aging.model`'s stress
accounting with the standard Weibull formulation:

* a core that has accumulated ``age_stress`` S has consumed ``S / eta``
  of its life and has reliability ``R = exp(-(S / eta)^beta)``;
* the chip's expected time-to-first-failure follows from extrapolating
  each core's *stress rate* observed during the run: core i fails (in
  expectation) when its stress reaches ``eta · Γ(1 + 1/beta)``, i.e. at
  ``t_i = horizon · eta_eff / S_i`` for the observed linear accrual;
* system lifetime under a "chip dies when k cores died" criterion is the
  k-th smallest ``t_i``.

Because expected life is driven by the *maximum* per-core stress rate, a
mapper that levels wear (the utilization-oriented mapper's explicit goal)
lengthens lifetime even when total work is identical — the experiment
``E10`` quantifies exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.platform.chip import Chip


@dataclass(frozen=True)
class LifetimeParameters:
    """Weibull wear-out law coefficients (stress-domain)."""

    #: Characteristic life in stress units. With the default aging rate
    #: (1e-3 stress/µs busy at nominal) a core that is ~30% utilized
    #: consumes ~1e-4 stress/µs, so eta = 2e9 puts the characteristic
    #: life at the months-to-years scale real silicon wears out on.
    eta_stress: float = 2e9
    beta: float = 2.0            # Weibull shape (>1: wear-out dominated)
    failure_core_count: int = 1  # cores that must fail to kill the chip

    def __post_init__(self) -> None:
        if self.eta_stress <= 0:
            raise ValueError("eta_stress must be positive")
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.failure_core_count < 1:
            raise ValueError("failure_core_count must be >= 1")

    @property
    def mean_life_stress(self) -> float:
        """Mean stress-to-failure: ``eta · Γ(1 + 1/beta)``."""
        return self.eta_stress * math.gamma(1.0 + 1.0 / self.beta)


@dataclass(frozen=True)
class LifetimeReport:
    """Result of analysing one finished run."""

    horizon_us: float
    min_reliability: float
    mean_reliability: float
    stress_mean: float
    stress_max: float
    wear_imbalance: float          # max/mean stress (1.0 = perfectly level)
    expected_lifetime_us: float    # k-th core's extrapolated failure time

    @property
    def expected_lifetime_hours(self) -> float:
        return self.expected_lifetime_us / 3.6e9


class LifetimeAnalyzer:
    """Computes reliability metrics from per-core accumulated stress."""

    def __init__(self, params: LifetimeParameters = LifetimeParameters()) -> None:
        self.params = params

    # ------------------------------------------------------------------
    # Per-core formulas
    # ------------------------------------------------------------------
    def reliability(self, age_stress: float) -> float:
        """Weibull survival probability for a core at ``age_stress``."""
        if age_stress < 0:
            raise ValueError("stress must be non-negative")
        return math.exp(-((age_stress / self.params.eta_stress) ** self.params.beta))

    def expected_failure_time_us(self, age_stress: float, horizon_us: float) -> float:
        """Extrapolated failure time assuming the observed stress rate holds."""
        if horizon_us <= 0:
            raise ValueError("horizon must be positive")
        if age_stress <= 0:
            return math.inf
        rate = age_stress / horizon_us
        return self.params.mean_life_stress / rate

    # ------------------------------------------------------------------
    # Chip-level analysis
    # ------------------------------------------------------------------
    def analyze(self, per_core_stress: Dict[int, float], horizon_us: float) -> LifetimeReport:
        if not per_core_stress:
            raise ValueError("need at least one core")
        stresses = [max(0.0, s) for s in per_core_stress.values()]
        reliabilities = [self.reliability(s) for s in stresses]
        mean_stress = sum(stresses) / len(stresses)
        max_stress = max(stresses)
        failure_times = sorted(
            self.expected_failure_time_us(s, horizon_us) for s in stresses
        )
        k = min(self.params.failure_core_count, len(failure_times))
        return LifetimeReport(
            horizon_us=horizon_us,
            min_reliability=min(reliabilities),
            mean_reliability=sum(reliabilities) / len(reliabilities),
            stress_mean=mean_stress,
            stress_max=max_stress,
            wear_imbalance=(max_stress / mean_stress) if mean_stress > 0 else 1.0,
            expected_lifetime_us=failure_times[k - 1],
        )

    def analyze_chip(self, chip: Chip, horizon_us: float) -> LifetimeReport:
        """Convenience wrapper reading stress straight off a chip."""
        return self.analyze(
            {core.core_id: core.age_stress for core in chip}, horizon_us
        )

    @staticmethod
    def lifetime_gain_pct(baseline: LifetimeReport, improved: LifetimeReport) -> float:
        """Relative lifetime extension of ``improved`` over ``baseline``."""
        if baseline.expected_lifetime_us <= 0:
            return 0.0
        if math.isinf(baseline.expected_lifetime_us):
            return 0.0
        return 100.0 * (
            improved.expected_lifetime_us / baseline.expected_lifetime_us - 1.0
        )

"""Metamorphic relations over simulation configurations.

A :class:`MetamorphicRelation` states how a *transformation of the
config* must move the *outputs*, independent of any golden number:
raising the power budget cannot lower throughput, a zero fault rate
cannot produce detections, permuting seeds cannot change the multiset
of per-seed digests.  Relations catch regressions in scheduler / power
/ mapping logic by construction — a broken policy violates the
inequality even when every unit test still passes — which is the same
role power-constraint monotonicity plays in hybrid-BIST scheduling
work.

Each relation is three pure pieces:

* :meth:`configs` — the runs the relation needs, derived from a base
  :class:`~repro.core.system.SystemConfig`;
* :meth:`observe` — project one :class:`SimulationResult` down to the
  plain-dict sample the relation reasons about;
* :meth:`check` — decide over the list of samples, returning failure
  messages (empty = holds).

``check`` never touches a result object, so the checkers themselves are
property-testable on synthetic samples (see ``tests/test_verify.py``'s
hypothesis suite), and :func:`check_relations` executes any set of
relations through :func:`repro.experiments.parallel.run_many` with full
cache reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.provenance import digest_of


class MetamorphicRelation:
    """One declarative config-transformation property."""

    #: Stable identifier (registry key, report row, CLI argument).
    name = "relation"
    #: One-line statement of the property.
    description = ""
    #: The paper claim the relation guards (see docs/verification.md).
    paper_claim = ""

    def configs(self, base) -> List:
        """The configs to run, derived from ``base``."""
        raise NotImplementedError

    def observe(self, result) -> Dict[str, object]:
        """Project one simulation result to the sample ``check`` needs."""
        raise NotImplementedError

    def check(self, samples: List[Dict[str, object]]) -> List[str]:
        """Failure messages over the samples (empty when the relation holds)."""
        raise NotImplementedError


class BudgetMonotonicThroughput(MetamorphicRelation):
    """Raising the TDP budget must not lower throughput.

    More budget means the PID manager throttles less and the mapper can
    light more cores; within a relative ``tolerance`` (discrete
    admission of whole applications makes tiny non-monotonic steps
    possible at short horizons), throughput is non-decreasing in the
    cap.
    """

    name = "budget-monotonic-throughput"
    description = "tdp_w up => throughput_ops_per_us non-decreasing"
    paper_claim = (
        "the power-aware approach utilises the available power budget; "
        "more budget can only help the workload (E1/E9 substrate)"
    )

    def __init__(
        self,
        factors: Sequence[float] = (1.0, 1.5, 2.0),
        tolerance: float = 0.02,
    ) -> None:
        if sorted(factors) != list(factors) or len(factors) < 2:
            raise ValueError("factors must be ascending and >= 2 points")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.factors = tuple(factors)
        self.tolerance = tolerance

    def configs(self, base):
        return [
            replace(base, tdp_w=base.tdp_w * factor) for factor in self.factors
        ]

    def observe(self, result):
        return {
            "tdp_w": result.config.tdp_w,
            "throughput": result.throughput_ops_per_us,
        }

    def check(self, samples):
        ordered = sorted(samples, key=lambda s: s["tdp_w"])
        failures = []
        for lo, hi in zip(ordered, ordered[1:]):
            floor = lo["throughput"] * (1.0 - self.tolerance)
            if hi["throughput"] < floor:
                failures.append(
                    f"throughput dropped from {lo['throughput']:.6g} at "
                    f"tdp={lo['tdp_w']:g} W to {hi['throughput']:.6g} at "
                    f"tdp={hi['tdp_w']:g} W (beyond {self.tolerance:.0%} "
                    f"tolerance)"
                )
        return failures


class ZeroHazardZeroFaults(MetamorphicRelation):
    """With a zero fault hazard, nothing is injected and nothing detected."""

    name = "zero-hazard-zero-faults"
    description = "fault_hazard_per_us = 0 => injected = detected = 0"
    paper_claim = "detections come only from injected faults (E8 soundness)"

    def configs(self, base):
        return [replace(base, fault_hazard_per_us=0.0)]

    def observe(self, result):
        summary = result.summary()
        return {
            "injected": summary["faults_injected"],
            "detected": summary["faults_detected"],
        }

    def check(self, samples):
        failures = []
        for sample in samples:
            if sample["injected"] != 0 or sample["detected"] != 0:
                failures.append(
                    f"zero hazard produced {sample['injected']:g} injected / "
                    f"{sample['detected']:g} detected fault(s)"
                )
        return failures


class SeedPermutationInvariance(MetamorphicRelation):
    """Run order cannot matter: per-seed digests form the same multiset.

    The same seeds are run twice, in opposite orders, **without**
    deduplication — the point is to catch cross-run state leaks (module
    caches, RNG reuse) that only show when run N pollutes run N+1.
    """

    name = "seed-permutation-invariance"
    description = "permuting the seed list leaves per-seed digests unchanged"
    paper_claim = (
        "experiment tables are seed-reproducible regardless of sweep order"
    )

    def __init__(self, seeds: Sequence[int] = (11, 23, 47)) -> None:
        if len(seeds) < 2 or len(set(seeds)) != len(seeds):
            raise ValueError("need >= 2 distinct seeds")
        self.seeds = tuple(seeds)

    def configs(self, base):
        forward = [replace(base, seed=seed) for seed in self.seeds]
        backward = [replace(base, seed=seed) for seed in reversed(self.seeds)]
        return forward + backward

    def observe(self, result):
        return {
            "seed": result.config.seed,
            "digest": digest_of(sorted(result.summary().items())),
        }

    def check(self, samples):
        half = len(samples) // 2
        forward = sorted(
            (s["seed"], s["digest"]) for s in samples[:half]
        )
        backward = sorted(
            (s["seed"], s["digest"]) for s in samples[half:]
        )
        if forward != backward:
            drifted = [
                f"seed {fs[0]}"
                for fs, bs in zip(forward, backward)
                if fs != bs
            ]
            return [
                "per-seed digests changed under permutation: "
                + ", ".join(drifted or ["(length mismatch)"])
            ]
        return []


class LevelDomainCoverage(MetamorphicRelation):
    """Shrinking the tested level set shrinks coverage accordingly.

    ``rotate`` may cover any level of the ladder but never one outside
    it; ``nominal`` shrinks the candidate set to the top level, so its
    coverage must be a subset of ``{n_vf_levels - 1}`` (and of rotate's
    domain).
    """

    name = "level-domain-coverage"
    description = (
        "covered V/F levels stay inside the ladder; nominal covers only "
        "the top level"
    )
    paper_claim = (
        "cover all the voltage and frequency levels during the various "
        "tests (E6, TC'16)"
    )

    def configs(self, base):
        return [
            replace(base, test_level_policy="rotate"),
            replace(base, test_level_policy="nominal"),
        ]

    def observe(self, result):
        return {
            "policy": result.config.test_level_policy,
            "n_levels": result.config.n_vf_levels,
            "covered": sorted(
                level
                for level, count in result.per_level_tests.items()
                if count > 0
            ),
        }

    def check(self, samples):
        failures = []
        for sample in samples:
            domain = set(range(sample["n_levels"]))
            covered = set(sample["covered"])
            if not covered <= domain:
                failures.append(
                    f"{sample['policy']} covered levels outside the ladder: "
                    f"{sorted(covered - domain)}"
                )
            if sample["policy"] == "nominal":
                top = {sample["n_levels"] - 1}
                if not covered <= top:
                    failures.append(
                        "nominal policy covered non-top levels: "
                        f"{sorted(covered - top)}"
                    )
        return failures


class NoTestPolicyZeroTests(MetamorphicRelation):
    """Disabling testing removes every test and all test energy."""

    name = "no-test-policy-zero-tests"
    description = "test_policy = none => zero tests, zero test energy"
    paper_claim = (
        "the throughput baseline (E2's `none` row) is genuinely test-free"
    )

    def configs(self, base):
        return [replace(base, test_policy="none")]

    def observe(self, result):
        summary = result.summary()
        return {
            "tests": summary["tests_completed"],
            "aborted": summary["tests_aborted"],
            "test_share": summary["test_power_share"],
        }

    def check(self, samples):
        failures = []
        for sample in samples:
            if (
                sample["tests"] != 0
                or sample["aborted"] != 0
                or sample["test_share"] != 0.0
            ):
                failures.append(
                    f"test_policy=none still produced {sample['tests']:g} "
                    f"test(s), {sample['aborted']:g} abort(s), "
                    f"{sample['test_share']:.3g} energy share"
                )
        return failures


def default_relations() -> List[MetamorphicRelation]:
    """Fresh instances of the full relation catalog."""
    return [
        BudgetMonotonicThroughput(),
        ZeroHazardZeroFaults(),
        SeedPermutationInvariance(),
        LevelDomainCoverage(),
        NoTestPolicyZeroTests(),
    ]


#: Registry of relation factories by name (CLI ``verify relations``).
RELATIONS: Dict[str, Callable[[], MetamorphicRelation]] = {
    cls.name: cls
    for cls in (
        BudgetMonotonicThroughput,
        ZeroHazardZeroFaults,
        SeedPermutationInvariance,
        LevelDomainCoverage,
        NoTestPolicyZeroTests,
    )
}


@dataclass
class RelationOutcome:
    """Result of checking one relation."""

    name: str
    description: str
    n_runs: int
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff the relation held over all its runs."""
        return not self.failures


@dataclass
class RelationReport:
    """Aggregate over a relation suite."""

    outcomes: List[RelationOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every relation in the suite held."""
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def n_runs(self) -> int:
        """Total simulation runs the suite consumed."""
        return sum(outcome.n_runs for outcome in self.outcomes)

    def failures(self) -> List[str]:
        """Every failure message, prefixed with its relation name."""
        return [
            f"[{outcome.name}] {message}"
            for outcome in self.outcomes
            for message in outcome.failures
        ]


def check_relations(
    base,
    relations: Optional[Sequence[MetamorphicRelation]] = None,
    jobs: Optional[int] = None,
    cache=None,
    runner: Optional[Callable] = None,
) -> RelationReport:
    """Execute a relation suite against a base config.

    All runs across all relations go through one
    :func:`~repro.experiments.parallel.run_many` call (parallel- and
    cache-friendly; duplicated configs across relations are served from
    the cache when one is given).  ``runner`` replaces ``run_many`` for
    tests that substitute a broken-policy stub.
    """
    if relations is None:
        relations = default_relations()
    if runner is None:
        from repro.experiments.parallel import run_many

        runner = run_many
    spans = []
    configs = []
    for relation in relations:
        wanted = relation.configs(base)
        spans.append((relation, len(wanted)))
        configs.extend(wanted)
    results = runner(configs, jobs, cache=cache) if configs else []
    report = RelationReport()
    cursor = 0
    for relation, count in spans:
        samples = [
            relation.observe(result)
            for result in results[cursor:cursor + count]
        ]
        cursor += count
        report.outcomes.append(
            RelationOutcome(
                name=relation.name,
                description=relation.description,
                n_runs=count,
                failures=relation.check(samples),
            )
        )
    return report

"""Metamorphic relations over simulation configurations.

A :class:`MetamorphicRelation` states how a *transformation of the
config* must move the *outputs*, independent of any golden number:
raising the power budget cannot lower throughput, a zero fault rate
cannot produce detections, permuting seeds cannot change the multiset
of per-seed digests.  Relations catch regressions in scheduler / power
/ mapping logic by construction — a broken policy violates the
inequality even when every unit test still passes — which is the same
role power-constraint monotonicity plays in hybrid-BIST scheduling
work.

Each relation is three pure pieces:

* :meth:`configs` — the runs the relation needs, derived from a base
  :class:`~repro.core.system.SystemConfig`;
* :meth:`observe` — project one :class:`SimulationResult` down to the
  plain-dict sample the relation reasons about;
* :meth:`check` — decide over the list of samples, returning failure
  messages (empty = holds).

``check`` never touches a result object, so the checkers themselves are
property-testable on synthetic samples (see ``tests/test_verify.py``'s
hypothesis suite), and :func:`check_relations` executes any set of
relations through :func:`repro.experiments.parallel.run_many` with full
cache reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.provenance import digest_of


class MetamorphicRelation:
    """One declarative config-transformation property."""

    #: Stable identifier (registry key, report row, CLI argument).
    name = "relation"
    #: One-line statement of the property.
    description = ""
    #: The paper claim the relation guards (see docs/verification.md).
    paper_claim = ""

    def configs(self, base) -> List:
        """The configs to run, derived from ``base``."""
        raise NotImplementedError

    def observe(self, result) -> Dict[str, object]:
        """Project one simulation result to the sample ``check`` needs."""
        raise NotImplementedError

    def check(self, samples: List[Dict[str, object]]) -> List[str]:
        """Failure messages over the samples (empty when the relation holds)."""
        raise NotImplementedError


class BudgetMonotonicThroughput(MetamorphicRelation):
    """Raising the TDP budget must not lower throughput.

    More budget means the PID manager throttles less and the mapper can
    light more cores; within a relative ``tolerance`` (discrete
    admission of whole applications makes tiny non-monotonic steps
    possible at short horizons), throughput is non-decreasing in the
    cap.
    """

    name = "budget-monotonic-throughput"
    description = "tdp_w up => throughput_ops_per_us non-decreasing"
    paper_claim = (
        "the power-aware approach utilises the available power budget; "
        "more budget can only help the workload (E1/E9 substrate)"
    )

    def __init__(
        self,
        factors: Sequence[float] = (1.0, 1.5, 2.0),
        tolerance: float = 0.02,
    ) -> None:
        if sorted(factors) != list(factors) or len(factors) < 2:
            raise ValueError("factors must be ascending and >= 2 points")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.factors = tuple(factors)
        self.tolerance = tolerance

    def configs(self, base):
        return [
            replace(base, tdp_w=base.tdp_w * factor) for factor in self.factors
        ]

    def observe(self, result):
        return {
            "tdp_w": result.config.tdp_w,
            "throughput": result.throughput_ops_per_us,
        }

    def check(self, samples):
        ordered = sorted(samples, key=lambda s: s["tdp_w"])
        failures = []
        for lo, hi in zip(ordered, ordered[1:]):
            floor = lo["throughput"] * (1.0 - self.tolerance)
            if hi["throughput"] < floor:
                failures.append(
                    f"throughput dropped from {lo['throughput']:.6g} at "
                    f"tdp={lo['tdp_w']:g} W to {hi['throughput']:.6g} at "
                    f"tdp={hi['tdp_w']:g} W (beyond {self.tolerance:.0%} "
                    f"tolerance)"
                )
        return failures


class ZeroHazardZeroFaults(MetamorphicRelation):
    """With a zero fault hazard, nothing is injected and nothing detected."""

    name = "zero-hazard-zero-faults"
    description = "fault_hazard_per_us = 0 => injected = detected = 0"
    paper_claim = "detections come only from injected faults (E8 soundness)"

    def configs(self, base):
        return [replace(base, fault_hazard_per_us=0.0)]

    def observe(self, result):
        summary = result.summary()
        return {
            "injected": summary["faults_injected"],
            "detected": summary["faults_detected"],
        }

    def check(self, samples):
        failures = []
        for sample in samples:
            if sample["injected"] != 0 or sample["detected"] != 0:
                failures.append(
                    f"zero hazard produced {sample['injected']:g} injected / "
                    f"{sample['detected']:g} detected fault(s)"
                )
        return failures


class SeedPermutationInvariance(MetamorphicRelation):
    """Run order cannot matter: per-seed digests form the same multiset.

    The same seeds are run twice, in opposite orders, **without**
    deduplication — the point is to catch cross-run state leaks (module
    caches, RNG reuse) that only show when run N pollutes run N+1.
    """

    name = "seed-permutation-invariance"
    description = "permuting the seed list leaves per-seed digests unchanged"
    paper_claim = (
        "experiment tables are seed-reproducible regardless of sweep order"
    )

    def __init__(self, seeds: Sequence[int] = (11, 23, 47)) -> None:
        if len(seeds) < 2 or len(set(seeds)) != len(seeds):
            raise ValueError("need >= 2 distinct seeds")
        self.seeds = tuple(seeds)

    def configs(self, base):
        forward = [replace(base, seed=seed) for seed in self.seeds]
        backward = [replace(base, seed=seed) for seed in reversed(self.seeds)]
        return forward + backward

    def observe(self, result):
        return {
            "seed": result.config.seed,
            "digest": digest_of(sorted(result.summary().items())),
        }

    def check(self, samples):
        half = len(samples) // 2
        forward = sorted(
            (s["seed"], s["digest"]) for s in samples[:half]
        )
        backward = sorted(
            (s["seed"], s["digest"]) for s in samples[half:]
        )
        if forward != backward:
            drifted = [
                f"seed {fs[0]}"
                for fs, bs in zip(forward, backward)
                if fs != bs
            ]
            return [
                "per-seed digests changed under permutation: "
                + ", ".join(drifted or ["(length mismatch)"])
            ]
        return []


class LevelDomainCoverage(MetamorphicRelation):
    """Shrinking the tested level set shrinks coverage accordingly.

    ``rotate`` may cover any level of the ladder but never one outside
    it; ``nominal`` shrinks the candidate set to the top level, so its
    coverage must be a subset of ``{n_vf_levels - 1}`` (and of rotate's
    domain).
    """

    name = "level-domain-coverage"
    description = (
        "covered V/F levels stay inside the ladder; nominal covers only "
        "the top level"
    )
    paper_claim = (
        "cover all the voltage and frequency levels during the various "
        "tests (E6, TC'16)"
    )

    def configs(self, base):
        return [
            replace(base, test_level_policy="rotate"),
            replace(base, test_level_policy="nominal"),
        ]

    def observe(self, result):
        return {
            "policy": result.config.test_level_policy,
            "n_levels": result.config.n_vf_levels,
            "covered": sorted(
                level
                for level, count in result.per_level_tests.items()
                if count > 0
            ),
        }

    def check(self, samples):
        failures = []
        for sample in samples:
            domain = set(range(sample["n_levels"]))
            covered = set(sample["covered"])
            if not covered <= domain:
                failures.append(
                    f"{sample['policy']} covered levels outside the ladder: "
                    f"{sorted(covered - domain)}"
                )
            if sample["policy"] == "nominal":
                top = {sample["n_levels"] - 1}
                if not covered <= top:
                    failures.append(
                        "nominal policy covered non-top levels: "
                        f"{sorted(covered - top)}"
                    )
        return failures


class NoTestPolicyZeroTests(MetamorphicRelation):
    """Disabling testing removes every test and all test energy."""

    name = "no-test-policy-zero-tests"
    description = "test_policy = none => zero tests, zero test energy"
    paper_claim = (
        "the throughput baseline (E2's `none` row) is genuinely test-free"
    )

    def configs(self, base):
        return [replace(base, test_policy="none")]

    def observe(self, result):
        summary = result.summary()
        return {
            "tests": summary["tests_completed"],
            "aborted": summary["tests_aborted"],
            "test_share": summary["test_power_share"],
        }

    def check(self, samples):
        failures = []
        for sample in samples:
            if (
                sample["tests"] != 0
                or sample["aborted"] != 0
                or sample["test_share"] != 0.0
            ):
                failures.append(
                    f"test_policy=none still produced {sample['tests']:g} "
                    f"test(s), {sample['aborted']:g} abort(s), "
                    f"{sample['test_share']:.3g} energy share"
                )
        return failures


# ----------------------------------------------------------------------
# Heterogeneous-platform relations (E11 family)
# ----------------------------------------------------------------------
def _resolved_type_names(config) -> List[str]:
    """Per-core type names of a config, resolved like :class:`Chip` does.

    Empty ``type_grid`` means all-default, a single entry broadcasts to
    the whole mesh, and a full-length grid is taken verbatim.
    """
    from repro.platform.coretypes import DEFAULT_CORE_TYPE

    n_cores = config.width * config.height
    grid = tuple(config.type_grid)
    if not grid:
        return [DEFAULT_CORE_TYPE] * n_cores
    if len(grid) == 1:
        return list(grid) * n_cores
    return list(grid)


def _dark_fraction_of(config) -> float:
    """Analytic dark fraction of a config (placement-free)."""
    from repro.platform.coretypes import get_core_type
    from repro.platform.techmodel import get_tech_model
    from repro.platform.technology import get_node

    model = get_tech_model(config.tech_model)
    node = get_node(config.node_name)
    counts: Dict[object, int] = {}
    for name in _resolved_type_names(config):
        ctype = get_core_type(name)
        counts[ctype] = counts.get(ctype, 0) + 1
    return model.dark_fraction(node, counts, config.tdp_w)


class TypePermutationDarkInvariance(MetamorphicRelation):
    """Shuffling tile placement cannot move the dark-silicon ratio.

    The dark fraction is a budget property of the *type mix* (how much
    peak power the catalog demands against the TDP), not of where the
    tiles sit: any permutation of the same type multiset over the mesh
    must yield an identical dark fraction and identical type counts.
    The permutations used (reversal, rotations) are deterministic, and
    every permuted floorplan also runs end-to-end, so a placement-
    dependent leak into the budget maths shows up as an exact-equality
    failure here.
    """

    name = "type-permutation-dark-invariance"
    description = (
        "permuting tile placement leaves dark fraction and type counts "
        "unchanged"
    )
    paper_claim = (
        "the dark-silicon ratio is set by the power budget versus peak "
        "demand, not by the floorplan (E11 hetero family)"
    )

    def configs(self, base):
        names = _resolved_type_names(base)
        if len(set(names)) == 1:
            # A homogeneous base is uninformative; mix the catalog over
            # the mesh deterministically so permutations can differ.
            cycle = ("std", "io", "o3", "accel")
            names = [cycle[i % len(cycle)] for i in range(len(names))]
        half = len(names) // 2
        grids = [
            names,
            list(reversed(names)),
            names[half:] + names[:half],
            names[1:] + names[:1],
        ]
        return [replace(base, type_grid=tuple(g)) for g in grids]

    def observe(self, result):
        config = result.config
        names = _resolved_type_names(config)
        counts: Dict[str, int] = {}
        for name in names:
            counts[name] = counts.get(name, 0) + 1
        return {
            "counts": tuple(sorted(counts.items())),
            "dark": _dark_fraction_of(config),
        }

    def check(self, samples):
        failures = []
        reference = samples[0] if samples else None
        for sample in samples[1:]:
            if sample["counts"] != reference["counts"]:
                failures.append(
                    f"type counts changed under permutation: "
                    f"{reference['counts']} vs {sample['counts']}"
                )
            if sample["dark"] != reference["dark"]:
                failures.append(
                    f"dark fraction moved under permutation: "
                    f"{reference['dark']!r} vs {sample['dark']!r}"
                )
        return failures


class AccelCountDarkMonotonic(MetamorphicRelation):
    """More accelerator tiles cannot shrink the dark fraction.

    An ``accel`` tile's peak power exceeds ``std``'s under every
    registered technology model and node (its 2.5x dynamic scale
    dominates the 0.5x leakage discount), so swapping std tiles for
    accelerators raises peak demand against a fixed TDP: the dark
    fraction is non-decreasing in the accelerator count, and always a
    valid fraction in [0, 1].
    """

    name = "accel-count-dark-monotonic"
    description = (
        "swapping std tiles for accel tiles => dark fraction "
        "non-decreasing, always in [0, 1]"
    )
    paper_claim = (
        "hotter tile mixes darken the chip at fixed TDP (dark-silicon "
        "premise, E11 hetero family)"
    )

    def configs(self, base):
        n_cores = base.width * base.height
        counts = sorted({0, n_cores // 4, n_cores // 2, n_cores})
        grids = [
            tuple(["accel"] * k + ["std"] * (n_cores - k)) for k in counts
        ]
        return [replace(base, type_grid=grid) for grid in grids]

    def observe(self, result):
        config = result.config
        return {
            "n_accel": _resolved_type_names(config).count("accel"),
            "dark": _dark_fraction_of(config),
        }

    def check(self, samples):
        failures = []
        for sample in samples:
            if not 0.0 <= sample["dark"] <= 1.0:
                failures.append(
                    f"dark fraction {sample['dark']!r} outside [0, 1] at "
                    f"{sample['n_accel']} accel tile(s)"
                )
        ordered = sorted(samples, key=lambda s: s["n_accel"])
        for lo, hi in zip(ordered, ordered[1:]):
            if hi["dark"] < lo["dark"]:
                failures.append(
                    f"dark fraction dropped from {lo['dark']!r} at "
                    f"{lo['n_accel']} accel tile(s) to {hi['dark']!r} at "
                    f"{hi['n_accel']}"
                )
        return failures


class TypedZeroHazardTypedZeroFaults(MetamorphicRelation):
    """Tiles of a zero-hazard type never fault, even on a faulting chip.

    Registers a ``canary`` control type through the pluggable catalog
    (std scales, ``fault_hazard_scale = 0``) and interleaves it with
    ``o3`` tiles: the o3 tiles may fault freely, but a fault record on a
    canary tile means the per-type hazard scaling leaked.  The zero
    scale keeps the per-core RNG draw (one Bernoulli per core per
    hazard step) so the other tiles' fault streams stay aligned with
    their homogeneous counterparts.
    """

    name = "typed-zero-hazard-typed-zero-faults"
    description = (
        "a zero-hazard tile type records zero faults while other types "
        "may fault"
    )
    paper_claim = (
        "per-type fault processes are independent; detections trace to "
        "their tile (E8 soundness, E11 hetero family)"
    )

    def __init__(self, seeds: Sequence[int] = (11, 23)) -> None:
        if not seeds:
            raise ValueError("need >= 1 seed")
        self.seeds = tuple(seeds)

    @staticmethod
    def _ensure_canary():
        from repro.platform.coretypes import (
            CORE_TYPES,
            CoreType,
            register_core_type,
        )

        if "canary" not in CORE_TYPES:
            register_core_type(
                CoreType(
                    name="canary",
                    description=(
                        "zero-hazard control tile for the metamorphic "
                        "relation suite"
                    ),
                    fault_hazard_scale=0.0,
                )
            )

    def configs(self, base):
        self._ensure_canary()
        n_cores = base.width * base.height
        grid = tuple(
            "canary" if i % 2 == 0 else "o3" for i in range(n_cores)
        )
        return [
            replace(base, type_grid=grid, seed=seed) for seed in self.seeds
        ]

    def observe(self, result):
        names = _resolved_type_names(result.config)
        canary_faults = sorted(
            record.core_id
            for record in result.fault_records
            if names[record.core_id] == "canary"
        )
        return {
            "seed": result.config.seed,
            "canary_faults": canary_faults,
            "n_faults": len(result.fault_records),
        }

    def check(self, samples):
        failures = []
        for sample in samples:
            if sample["canary_faults"]:
                failures.append(
                    f"seed {sample['seed']}: zero-hazard canary tiles "
                    f"{sample['canary_faults']} recorded fault(s) "
                    f"({sample['n_faults']} total on chip)"
                )
        return failures


def hetero_relations() -> List[MetamorphicRelation]:
    """Fresh instances of the heterogeneous-platform relation catalog.

    Kept separate from :func:`default_relations` so homogeneous
    campaign verification keeps its pre-heterogeneity run count; the
    E11 experiment family checks both catalogs.
    """
    return [
        TypePermutationDarkInvariance(),
        AccelCountDarkMonotonic(),
        TypedZeroHazardTypedZeroFaults(),
    ]


def default_relations() -> List[MetamorphicRelation]:
    """Fresh instances of the full relation catalog."""
    return [
        BudgetMonotonicThroughput(),
        ZeroHazardZeroFaults(),
        SeedPermutationInvariance(),
        LevelDomainCoverage(),
        NoTestPolicyZeroTests(),
    ]


#: Registry of relation factories by name (CLI ``verify relations``).
RELATIONS: Dict[str, Callable[[], MetamorphicRelation]] = {
    cls.name: cls
    for cls in (
        BudgetMonotonicThroughput,
        ZeroHazardZeroFaults,
        SeedPermutationInvariance,
        LevelDomainCoverage,
        NoTestPolicyZeroTests,
        TypePermutationDarkInvariance,
        AccelCountDarkMonotonic,
        TypedZeroHazardTypedZeroFaults,
    )
}


@dataclass
class RelationOutcome:
    """Result of checking one relation."""

    name: str
    description: str
    n_runs: int
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff the relation held over all its runs."""
        return not self.failures


@dataclass
class RelationReport:
    """Aggregate over a relation suite."""

    outcomes: List[RelationOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every relation in the suite held."""
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def n_runs(self) -> int:
        """Total simulation runs the suite consumed."""
        return sum(outcome.n_runs for outcome in self.outcomes)

    def failures(self) -> List[str]:
        """Every failure message, prefixed with its relation name."""
        return [
            f"[{outcome.name}] {message}"
            for outcome in self.outcomes
            for message in outcome.failures
        ]


def check_relations(
    base,
    relations: Optional[Sequence[MetamorphicRelation]] = None,
    jobs: Optional[int] = None,
    cache=None,
    runner: Optional[Callable] = None,
) -> RelationReport:
    """Execute a relation suite against a base config.

    All runs across all relations go through one
    :func:`~repro.experiments.parallel.run_many` call (parallel- and
    cache-friendly; duplicated configs across relations are served from
    the cache when one is given).  ``runner`` replaces ``run_many`` for
    tests that substitute a broken-policy stub.
    """
    if relations is None:
        relations = default_relations()
    if runner is None:
        from repro.experiments.parallel import run_many

        runner = run_many
    spans = []
    configs = []
    for relation in relations:
        wanted = relation.configs(base)
        spans.append((relation, len(wanted)))
        configs.extend(wanted)
    results = runner(configs, jobs, cache=cache) if configs else []
    report = RelationReport()
    cursor = 0
    for relation, count in spans:
        samples = [
            relation.observe(result)
            for result in results[cursor:cursor + count]
        ]
        cursor += count
        report.outcomes.append(
            RelationOutcome(
                name=relation.name,
                description=relation.description,
                n_runs=count,
                failures=relation.check(samples),
            )
        )
    return report

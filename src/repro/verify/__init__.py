"""repro.verify: runtime invariants + metamorphic verification.

The correctness counterpart to :mod:`repro.obs`'s observability layer,
in three pieces:

* **Inline invariants** (:mod:`repro.verify.invariants`) — pluggable
  :class:`Invariant` objects checked while the simulator runs: power
  conservation (incremental meter vs. reference scan), budget
  compliance with violation provenance, core state-machine legality,
  test non-intrusiveness (SBST only on idle cores), event-time
  monotonicity, NoC link sanity.  Attached via
  ``run_system(config, verifier=InvariantChecker())`` or the CLI's
  ``--verify`` flag; with no checker a run is byte-identical to an
  unverified one.
* **Metamorphic relations** (:mod:`repro.verify.relations`) —
  declarative config-transformation properties (budget up ⇒ throughput
  non-decreasing, zero hazard ⇒ zero detections, seed-permutation
  invariance, level-domain coverage, no-test ⇒ zero tests) executed
  through ``run_many`` with cache reuse.  A separate heterogeneous
  catalog (:func:`~repro.verify.relations.hetero_relations`) certifies
  the E11 platform family: type-permutation dark-fraction invariance,
  accelerator-count dark monotonicity, typed zero-hazard soundness.
* **Journal replay** (:mod:`repro.verify.replay`) — an independent
  re-simulator that recomputes every epoch's power breakdown from
  journal snapshots and cross-checks the live meter bit-for-bit.

Quick check of one config::

    >>> from repro import SystemConfig
    >>> from repro.verify import verify_config
    >>> result, checker = verify_config(SystemConfig(horizon_us=2_000.0))
    >>> checker.ok
    True

See ``docs/verification.md`` for the invariant catalog and the mapping
from relations to paper claims.
"""

from repro.verify.invariants import (
    NULL_VERIFIER,
    BudgetComplianceInvariant,
    Invariant,
    InvariantChecker,
    InvariantViolation,
    NocLinkSanityInvariant,
    PowerConservationInvariant,
    StateLegalityInvariant,
    TestNonIntrusivenessInvariant,
    TimeMonotonicityInvariant,
    VerificationError,
    default_invariants,
)
from repro.verify.relations import (
    RELATIONS,
    AccelCountDarkMonotonic,
    BudgetMonotonicThroughput,
    LevelDomainCoverage,
    MetamorphicRelation,
    NoTestPolicyZeroTests,
    RelationOutcome,
    RelationReport,
    SeedPermutationInvariance,
    TypePermutationDarkInvariance,
    TypedZeroHazardTypedZeroFaults,
    ZeroHazardZeroFaults,
    check_relations,
    default_relations,
    hetero_relations,
)
from repro.verify.replay import ReplayError, ReplayReport, replay_journal


def verify_config(
    config,
    invariants=None,
    mode="record",
    journal=None,
    emit_replay=True,
):
    """Run one config under the invariant checker.

    Returns ``(result, checker)``; inspect ``checker.ok`` /
    ``checker.violations`` / ``checker.summary()``.  ``invariants``
    defaults to the full catalog, ``mode`` to recording (pass
    ``"raise"`` to stop at the first violation).
    """
    # Imported lazily: repro.core.system must not import repro.verify
    # (relations import SystemConfig machinery), so the dependency
    # points this way only.
    from repro.core.system import run_system

    checker = InvariantChecker(
        invariants=invariants, mode=mode, emit_replay=emit_replay
    )
    result = run_system(config, journal=journal, verifier=checker)
    return result, checker


__all__ = [
    "AccelCountDarkMonotonic",
    "BudgetComplianceInvariant",
    "BudgetMonotonicThroughput",
    "Invariant",
    "InvariantChecker",
    "InvariantViolation",
    "LevelDomainCoverage",
    "MetamorphicRelation",
    "NULL_VERIFIER",
    "NoTestPolicyZeroTests",
    "NocLinkSanityInvariant",
    "PowerConservationInvariant",
    "RELATIONS",
    "RelationOutcome",
    "RelationReport",
    "ReplayError",
    "ReplayReport",
    "SeedPermutationInvariance",
    "StateLegalityInvariant",
    "TestNonIntrusivenessInvariant",
    "TimeMonotonicityInvariant",
    "TypePermutationDarkInvariance",
    "TypedZeroHazardTypedZeroFaults",
    "VerificationError",
    "ZeroHazardZeroFaults",
    "check_relations",
    "default_invariants",
    "default_relations",
    "hetero_relations",
    "replay_journal",
    "verify_config",
]

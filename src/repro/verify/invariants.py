"""Inline runtime invariants over a running simulation.

The paper's claims are inequalities over simulated quantities — chip
power never exceeds the budget, SBST runs only on idle cores, every
state transition follows the core lifecycle — yet the experiments only
sample them after the fact.  An :class:`InvariantChecker` enforces them
*while the simulator runs*, the way thermal-safe test-scheduling work
treats safety as a per-step invariant rather than an endpoint metric.

Design constraints (the no-op-sink invariant, as for the journal):

* **Off by default and free.**  The system holds ``verifier=None``
  unless a checker is passed in; every hook site guards with
  ``if verifier is not None and verifier.enabled:``.  A run without a
  checker is byte-identical to one before this module existed, and
  :data:`NULL_VERIFIER` exists for call sites that want an always-valid
  object instead of ``None``.
* **Read-only.**  Invariants may look at anything but touch nothing:
  no RNG draws, no model floats, no event scheduling.  Enabling the
  checker on a seeded run reproduces the unchecked run's summary digest
  bit for bit (pinned by ``tests/test_verify.py`` and
  ``benchmarks/bench_verify.py``).
* **First-violation provenance.**  Every violation records the message,
  the offending values, and — for the first one — a snapshot of the
  chip/power/queue state, so a red run is debuggable without a rerun.

Violations are recorded (``mode="record"``) or raised
(``mode="raise"`` → :class:`VerificationError`), and mirrored into the
run journal as ``verify.violation`` events when journaling is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.platform.core import Core, CoreState

#: Legal core state transitions (old, new).  Same-state callbacks (level
#: or leakage retunes) are always legal.  FAULTY is terminal: retirement
#: happens only from TESTING (the runner's detection path), never from
#: IDLE/BUSY — fault *injection* only marks ``fault_present``.
LEGAL_TRANSITIONS = frozenset(
    {
        (CoreState.IDLE, CoreState.BUSY),
        (CoreState.IDLE, CoreState.TESTING),
        (CoreState.BUSY, CoreState.IDLE),
        (CoreState.TESTING, CoreState.IDLE),
        (CoreState.TESTING, CoreState.FAULTY),
    }
)


class VerificationError(RuntimeError):
    """An invariant was violated and the checker runs in ``raise`` mode."""


@dataclass(frozen=True)
class InvariantViolation:
    """One recorded invariant violation.

    ``invariant`` is the violated invariant's name, ``time`` the
    simulation time (µs) the violation was observed at, ``message`` a
    human-readable statement, and ``details`` the offending values.
    """

    invariant: str
    time: float
    message: str
    details: Dict[str, object] = field(default_factory=dict)


class Invariant:
    """One pluggable runtime property.

    Subclasses override :meth:`on_transition` (called on every core
    state/level/leakage change) and/or :meth:`on_tick` (called once per
    control epoch with the breakdown the control loop just computed).
    Both return an iterable of ``(message, details)`` problem tuples —
    empty/None when the property holds.  Implementations must be
    read-only: look, never touch.
    """

    #: Stable identifier used in violations, reports and journal events.
    name = "invariant"

    def on_attach(self, system) -> None:
        """Called once when the checker attaches to a system."""

    def on_transition(
        self, system, core: Core, old: CoreState, new: CoreState, now: float
    ) -> Optional[Iterable[Tuple[str, Dict[str, object]]]]:
        """Check one core transition; return problems (or None)."""
        return None

    def on_tick(
        self, system, now: float, breakdown
    ) -> Optional[Iterable[Tuple[str, Dict[str, object]]]]:
        """Check one control epoch; return problems (or None)."""
        return None


class PowerConservationInvariant(Invariant):
    """The incremental meter equals the reference full scan, per channel.

    The fast-path meter (PR 1) promises bit-identical sums to the
    original O(cores) scan; this re-derives every channel from live core
    state through the unmemoized analytic model and compares within
    ``tolerance_w``.  The scan is the checker's one expensive probe
    (~100 µs on an 8x8 mesh), so it samples every ``audit_every``-th
    epoch — the first epoch always audits — keeping the whole checker
    inside the ≤10% overhead budget ``benchmarks/bench_verify.py``
    enforces.  Pass ``audit_every=1`` for an every-epoch audit; the
    journal replay cross-check covers every epoch regardless.
    """

    name = "power-conservation"

    def __init__(self, tolerance_w: float = 1e-9, audit_every: int = 16) -> None:
        if audit_every < 1:
            raise ValueError("audit_every must be >= 1")
        self.tolerance_w = tolerance_w
        self.audit_every = audit_every
        self._ticks_seen = 0

    def on_tick(self, system, now, breakdown):
        seen = self._ticks_seen
        self._ticks_seen = seen + 1
        if seen % self.audit_every:
            return None
        reference = system.meter.scan_breakdown()
        problems = []
        for channel in ("workload", "test", "leakage", "noc"):
            got = getattr(breakdown, channel)
            want = getattr(reference, channel)
            if abs(got - want) > self.tolerance_w:
                problems.append(
                    (
                        f"meter {channel} channel {got!r} W diverged from "
                        f"full-scan value {want!r} W",
                        {
                            "channel": channel,
                            "incremental_w": got,
                            "scan_w": want,
                            "error_w": got - want,
                        },
                    )
                )
        return problems


class BudgetComplianceInvariant(Invariant):
    """Chip power stays at or below the TDP cap (within tolerance).

    The paper's headline safety property.  The proposed power-aware
    scheduler plus PID budgeting never punctures the cap; the
    power-unaware baseline does by design — run it under this invariant
    and every epoch over budget is recorded with provenance (which cores
    were testing, per-channel powers, active session count).
    """

    name = "budget-compliance"

    def __init__(self, tolerance_w: float = 1e-9) -> None:
        self.tolerance_w = tolerance_w

    def on_tick(self, system, now, breakdown):
        cap = system.budget.cap
        total = breakdown.total
        if total <= cap + self.tolerance_w:
            return None
        return [
            (
                f"chip power {total:.6f} W exceeds cap {cap:g} W "
                f"by {total - cap:.6f} W",
                {
                    "measured_w": total,
                    "cap_w": cap,
                    "overshoot_w": total - cap,
                    "workload_w": breakdown.workload,
                    "test_w": breakdown.test,
                    "leakage_w": breakdown.leakage,
                    "noc_w": breakdown.noc,
                    "testing_cores": sorted(
                        system.chip.state_ids(CoreState.TESTING)
                    ),
                    "active_sessions": len(system.runner.active_sessions()),
                    "scheduler": system.test_scheduler.name,
                },
            )
        ]


class StateLegalityInvariant(Invariant):
    """Every core transition follows the IDLE/BUSY/TESTING/FAULTY lifecycle."""

    name = "state-legality"

    def on_transition(self, system, core, old, new, now):
        if old is new or (old, new) in LEGAL_TRANSITIONS:
            return None
        return [
            (
                f"core {core.core_id} made illegal transition "
                f"{old.name} -> {new.name}",
                {
                    "core": core.core_id,
                    "from_state": old.name,
                    "to_state": new.name,
                },
            )
        ]


class TestNonIntrusivenessInvariant(Invariant):
    """SBST sessions run only on idle, unowned cores (non-intrusive testing).

    Checked both at the moment a core enters TESTING and once per epoch
    over the whole testing set: a core under test must never be owned by
    an application or carry a workload task.
    """

    name = "test-non-intrusiveness"

    @staticmethod
    def _problem(core: Core):
        return (
            f"core {core.core_id} is TESTING while owned by app "
            f"{core.owner_app!r} (task {core.current_task!r})",
            {
                "core": core.core_id,
                "owner_app": core.owner_app,
                "has_task": core.current_task is not None,
            },
        )

    def on_transition(self, system, core, old, new, now):
        if new is CoreState.TESTING and old is not new:
            if core.owner_app is not None or core.current_task is not None:
                return [self._problem(core)]
        return None

    def on_tick(self, system, now, breakdown):
        problems = []
        for core in system.chip.testing_cores():
            if core.owner_app is not None or core.current_task is not None:
                problems.append(self._problem(core))
        return problems


class TimeMonotonicityInvariant(Invariant):
    """Observed simulation time never decreases across hooks."""

    name = "time-monotonicity"

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def _advance(self, now: float):
        last = self._last
        if last is not None and now < last:
            return [
                (
                    f"time went backwards: {now:g} us after {last:g} us",
                    {"now_us": now, "previous_us": last},
                )
            ]
        self._last = now
        return None

    def on_transition(self, system, core, old, new, now):
        return self._advance(now)

    def on_tick(self, system, now, breakdown):
        return self._advance(now)


class NocLinkSanityInvariant(Invariant):
    """NoC bookkeeping stays physical: link loads and NoC power >= 0.

    The analytic NoC keeps per-link flit loads; a negative load means a
    release without a matching occupy.  The queued NoC has no per-link
    ledger, so there only the registered NoC power is checked.
    """

    name = "noc-link-sanity"

    def __init__(self, tolerance: float = 1e-9) -> None:
        self.tolerance = tolerance

    def on_tick(self, system, now, breakdown):
        problems = []
        if breakdown.noc < -self.tolerance:
            problems.append(
                (
                    f"registered NoC power is negative: {breakdown.noc!r} W",
                    {"noc_w": breakdown.noc},
                )
            )
        link_loads = getattr(system.noc, "link_loads", None)
        if callable(link_loads):
            for link, load in link_loads().items():
                if load < -self.tolerance:
                    problems.append(
                        (
                            f"link {link} carries negative load {load!r}",
                            {"link": link, "load_flits": load},
                        )
                    )
        return problems


def default_invariants() -> List[Invariant]:
    """Fresh instances of the full invariant catalog."""
    return [
        PowerConservationInvariant(),
        BudgetComplianceInvariant(),
        StateLegalityInvariant(),
        TestNonIntrusivenessInvariant(),
        TimeMonotonicityInvariant(),
        NocLinkSanityInvariant(),
    ]


#: Compact per-state character codes used in ``verify.cores`` snapshots.
STATE_CODES: Dict[CoreState, str] = {
    CoreState.IDLE: "i",
    CoreState.BUSY: "b",
    CoreState.TESTING: "t",
    CoreState.FAULTY: "f",
}


class InvariantChecker:
    """Runs a set of invariants against one live simulation.

    Attach via ``run_system(config, verifier=InvariantChecker())`` (or
    pass to :class:`~repro.core.system.ManycoreSystem`): the system
    subscribes the checker to the chip's transition feed and calls
    :meth:`on_control_tick` once per epoch with the breakdown it already
    computed, so checking adds no extra meter queries.

    ``mode`` is ``"record"`` (collect into :attr:`violations`, bounded
    by ``max_violations``) or ``"raise"`` (first violation raises
    :class:`VerificationError`).  When the attached system journals,
    violations are mirrored as ``verify.violation`` events and — when
    ``emit_replay`` — per-epoch ``verify.cores``/``verify.power``
    snapshots are emitted for the offline re-simulator
    (:func:`repro.verify.replay.replay_journal`).
    """

    def __init__(
        self,
        invariants: Optional[List[Invariant]] = None,
        mode: str = "record",
        max_violations: int = 1000,
        emit_replay: bool = True,
        enabled: bool = True,
    ) -> None:
        if mode not in ("record", "raise"):
            raise ValueError(f"unknown checker mode {mode!r}")
        if max_violations < 1:
            raise ValueError("max_violations must be >= 1")
        self.invariants = (
            list(invariants) if invariants is not None else default_invariants()
        )
        self.mode = mode
        self.max_violations = max_violations
        self.emit_replay = emit_replay
        self.enabled = enabled
        self.violations: List[InvariantViolation] = []
        #: Violations not recorded because ``max_violations`` was reached.
        self.suppressed = 0
        self.checks_run = 0
        self.ticks_checked = 0
        #: Chip/power/queue snapshot taken at the first violation.
        self.first_snapshot: Optional[Dict[str, object]] = None
        self._system = None
        self._sim = None
        self._transition_invariants: List[Invariant] = []
        self._tick_invariants: List[Invariant] = []
        #: Exact-type instances for the fused listener (see attach).
        self._fused: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, system) -> None:
        """Subscribe to ``system``'s transition feed and journal."""
        if not self.enabled:
            return
        if self._system is not None:
            raise RuntimeError("checker is already attached to a system")
        self._system = system
        self._sim = system.sim
        base_tr = Invariant.on_transition
        base_tk = Invariant.on_tick
        for inv in self.invariants:
            inv.on_attach(system)
            if type(inv).on_transition is not base_tr:
                self._transition_invariants.append(inv)
            if type(inv).on_tick is not base_tk:
                self._tick_invariants.append(inv)
        if self._transition_invariants:
            # The transition feed fires on every core mutation (thousands
            # per run), so when the subscribed invariants are exactly the
            # stock ones a fused listener replays their cheap predicates
            # inline and only falls back to the invariant objects to
            # format an actual violation.  Custom invariants (or
            # subclasses) get the generic per-invariant loop.
            fused = {
                StateLegalityInvariant: None,
                TestNonIntrusivenessInvariant: None,
                TimeMonotonicityInvariant: None,
            }
            fusable = True
            for inv in self._transition_invariants:
                if type(inv) in fused and fused[type(inv)] is None:
                    fused[type(inv)] = inv
                else:
                    fusable = False
                    break
            if fusable:
                self._fused = (
                    fused[StateLegalityInvariant],
                    fused[TestNonIntrusivenessInvariant],
                    fused[TimeMonotonicityInvariant],
                )
                system.chip.add_transition_listener(self._on_transition_fused)
            else:
                system.chip.add_transition_listener(self._on_transition)
        if system.journal.enabled and self.emit_replay:
            self._emit_platform(system)

    @property
    def ok(self) -> bool:
        """True iff no invariant has been violated so far."""
        return not self.violations and not self.suppressed

    # ------------------------------------------------------------------
    # Hook entry points (called by ManycoreSystem)
    # ------------------------------------------------------------------
    def _on_transition(self, core: Core, old: CoreState, new: CoreState) -> None:
        system = self._system
        now = system.sim.now
        for inv in self._transition_invariants:
            self.checks_run += 1
            problems = inv.on_transition(system, core, old, new, now)
            if problems:
                for message, details in problems:
                    self._record(inv.name, now, message, details)

    def _on_transition_fused(
        self, core: Core, old: CoreState, new: CoreState
    ) -> None:
        """Inlined predicates of the stock transition invariants.

        Semantically identical to :meth:`_on_transition` over the same
        invariants (``tests/test_verify.py`` pins the equivalence): each
        predicate mirrors its invariant's fast "property holds" path,
        and any suspect transition is handed back to the invariant
        object so violation messages and per-invariant state stay the
        canonical ones.
        """
        self.checks_run += len(self._transition_invariants)
        legality, nonintr, mono = self._fused
        if old is not new:
            if legality is not None and (old, new) not in LEGAL_TRANSITIONS:
                self._slow_check(legality, core, old, new)
            if (
                nonintr is not None
                and new is CoreState.TESTING
                and (
                    core._owner_app is not None
                    or core.current_task is not None
                )
            ):
                self._slow_check(nonintr, core, old, new)
        if mono is not None:
            now = self._sim.now
            last = mono._last
            if last is not None and now < last:
                self._slow_check(mono, core, old, new)
            else:
                mono._last = now

    def _slow_check(
        self, inv: Invariant, core: Core, old: CoreState, new: CoreState
    ) -> None:
        """Run one invariant's full hook (the fused path's violation leg)."""
        now = self._sim.now
        problems = inv.on_transition(self._system, core, old, new, now)
        if problems:
            for message, details in problems:
                self._record(inv.name, now, message, details)

    def on_control_tick(self, system, now: float, breakdown) -> None:
        """Run every per-epoch invariant against the epoch's breakdown."""
        self.ticks_checked += 1
        for inv in self._tick_invariants:
            self.checks_run += 1
            problems = inv.on_tick(system, now, breakdown)
            if problems:
                for message, details in problems:
                    self._record(inv.name, now, message, details)
        if system.journal.enabled and self.emit_replay:
            self._emit_tick(system, now, breakdown)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(
        self, invariant: str, now: float, message: str, details: Dict[str, object]
    ) -> None:
        system = self._system
        if self.first_snapshot is None and system is not None:
            self.first_snapshot = self.snapshot(system, now)
        if system is not None and system.journal.enabled:
            system.journal.emit(
                "verify.violation",
                now,
                invariant=invariant,
                message=message,
                **details,
            )
        if len(self.violations) < self.max_violations:
            self.violations.append(
                InvariantViolation(
                    invariant=invariant,
                    time=now,
                    message=message,
                    details=dict(details),
                )
            )
        else:
            self.suppressed += 1
        if self.mode == "raise":
            raise VerificationError(
                f"[{invariant}] at t={now:g} us: {message}"
            )

    @staticmethod
    def snapshot(system, now: float) -> Dict[str, object]:
        """Read-only provenance snapshot of the system's current state."""
        chip = system.chip
        breakdown = system.meter.breakdown()
        return {
            "time_us": now,
            "cores": {
                state.name: len(chip.state_ids(state)) for state in CoreState
            },
            "power": {
                "workload_w": breakdown.workload,
                "test_w": breakdown.test,
                "leakage_w": breakdown.leakage,
                "noc_w": breakdown.noc,
                "total_w": breakdown.total,
                "cap_w": system.budget.cap,
            },
            "queue_length": len(system.queue),
            "active_sessions": len(system.runner.active_sessions()),
            "scheduler": system.test_scheduler.name,
            "power_policy": system.power_manager.name,
        }

    def summary(self) -> Dict[str, object]:
        """Flat roll-up: counts per invariant, checks run, first snapshot."""
        per_invariant: Dict[str, int] = {}
        for violation in self.violations:
            per_invariant[violation.invariant] = (
                per_invariant.get(violation.invariant, 0) + 1
            )
        return {
            "ok": self.ok,
            "violations": len(self.violations) + self.suppressed,
            "suppressed": self.suppressed,
            "per_invariant": per_invariant,
            "checks_run": self.checks_run,
            "ticks_checked": self.ticks_checked,
            "invariants": [inv.name for inv in self.invariants],
            "first_snapshot": self.first_snapshot,
        }

    # ------------------------------------------------------------------
    # Replay emission (journal payloads for the offline re-simulator)
    # ------------------------------------------------------------------
    @staticmethod
    def _emit_platform(system) -> None:
        chip = system.chip
        meter = system.meter
        payload = dict(
            node=system.config.node_name,
            width=chip.width,
            height=chip.height,
            gated_leak_fraction=meter.gated_leak_fraction,
            default_activity=meter.default_activity,
            vf_levels=[[level.vdd, level.f_mhz] for level in chip.vf_table],
            leak_factors=[core.leak_factor for core in chip],
        )
        if chip.is_heterogeneous:
            # Hetero-only keys: degenerate (homogeneous-std, baseline
            # model) journals must stay byte-identical to the
            # pre-heterogeneity format, so these are gated, not defaulted.
            payload["tech_model"] = chip.tech_model.name
            payload["core_types"] = [core.core_type.name for core in chip]
        system.journal.emit("verify.platform", system.sim.now, **payload)

    @staticmethod
    def _emit_tick(system, now: float, breakdown) -> None:
        meter = system.meter
        cores = [
            [STATE_CODES[core._state], core._level.index, meter.activity_of(core.core_id)]
            for core in system.chip
        ]
        system.journal.emit("verify.cores", now, cores=cores)
        system.journal.emit(
            "verify.power",
            now,
            workload_w=breakdown.workload,
            test_w=breakdown.test,
            leakage_w=breakdown.leakage,
            noc_w=breakdown.noc,
        )


#: Shared disabled checker for call sites that want an always-valid
#: object: passing it anywhere a verifier is accepted is equivalent to
#: passing ``None`` (every hook guards on ``enabled``).
NULL_VERIFIER = InvariantChecker(invariants=[], enabled=False)

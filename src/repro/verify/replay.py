"""Offline re-simulation of a run journal (differential cross-check).

A journal written with both the journal *and* the invariant checker
enabled carries one ``verify.platform`` event (node, mesh, V/F ladder,
per-core leakage factors) plus per-epoch ``verify.cores`` /
``verify.power`` snapshots.  :func:`replay_journal` re-derives every
epoch's power breakdown **independently** — straight through the
unmemoized analytic technology model, knowing nothing of the live
meter's incremental bookkeeping — and compares against the recorded
channels.  Because the recomputation accumulates in the same ascending
core-id order as the reference full scan, agreement is expected to be
*bit-exact*, and any drift localises to an epoch and a channel.

When the journal also carries ``core.transition`` events (debug-level
journals), each recorded transition is checked against the core
lifecycle's legal-transition table.

Malformed input — unreadable file, truncated/corrupted JSONL, missing
platform event, torn snapshot pairs — raises a clean
:class:`ReplayError`; a *mismatch* is a finding, reported in the
returned :class:`ReplayReport`, not an exception.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.journal import Journal, JournalEvent, events_of
from repro.platform.core import CoreState
from repro.platform.coretypes import get_core_type
from repro.platform.techmodel import get_tech_model
from repro.platform.technology import get_node
from repro.verify.invariants import LEGAL_TRANSITIONS


class ReplayError(ValueError):
    """The journal cannot be replayed (missing, truncated or corrupt)."""


@dataclass
class ReplayReport:
    """Outcome of one journal replay."""

    ticks_checked: int = 0
    #: Per-channel disagreements beyond tolerance: dicts with ``time``,
    #: ``channel``, ``recorded_w``, ``replayed_w``, ``error_w``.
    mismatches: List[Dict[str, object]] = field(default_factory=list)
    #: Illegal transitions found in ``core.transition`` events.
    transition_violations: List[Dict[str, object]] = field(default_factory=list)
    transitions_checked: int = 0
    max_abs_error_w: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff the replay agreed with every recorded epoch."""
        return not self.mismatches and not self.transition_violations


#: Channels a replay recomputes (noc power has no per-link journal
#: source, so it is only sanity-checked for sign).
_CHANNELS = ("workload_w", "test_w", "leakage_w")


def _load_events(source) -> List[JournalEvent]:
    if isinstance(source, str):
        try:
            return Journal.load_jsonl(source)
        except OSError as exc:
            raise ReplayError(f"cannot read journal {source!r}: {exc}") from exc
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            raise ReplayError(
                f"journal {source!r} is corrupt: {exc}"
            ) from exc
    try:
        return list(events_of(source))
    except (ValueError, KeyError, TypeError) as exc:
        raise ReplayError(f"journal events are corrupt: {exc}") from exc


def _recompute(
    node,
    vf_levels: List[Tuple[float, float]],
    leak_factors: List[float],
    gated_leak_fraction: float,
    default_activity: float,
    cores: List,
    tech_model=None,
    core_types: Optional[List] = None,
) -> Tuple[float, float, float]:
    """One epoch's (workload, test, leakage) from a ``verify.cores`` payload.

    Accumulates in ascending core-id order through the *unmemoized*
    analytic model — the reference full scan's float order — so the
    result is bit-comparable to the live meter.  A heterogeneous journal
    additionally declares its technology model and per-core types
    (``tech_model`` / ``core_types``); degenerate journals carry neither
    and replay through the plain node model, exactly as before.
    """
    workload = 0.0
    test = 0.0
    leakage = 0.0
    for core_id, entry in enumerate(cores):
        code, level_index, activity = entry
        vdd, f_mhz = vf_levels[level_index]
        ctype = (
            core_types[core_id]
            if core_types is not None and tech_model is not None
            else None
        )
        if code in ("b", "t"):
            act = activity if activity is not None else default_activity
            if ctype is not None:
                dyn = tech_model.dynamic_power(node, ctype, vdd, f_mhz, act)
            else:
                dyn = node.dynamic_power(vdd, f_mhz, act)
            if code == "b":
                workload += dyn
            else:
                test += dyn
        elif code not in ("i", "f"):
            raise ReplayError(
                f"unknown core state code {code!r} for core {core_id}"
            )
        if code == "f":
            leak = 0.0
        else:
            if ctype is not None:
                base = tech_model.leakage_power(node, ctype, vdd)
            else:
                base = node.leakage_power(vdd)
            leak = base * leak_factors[core_id]
            if code == "i":
                leak = leak * gated_leak_fraction
        leakage += leak
    return workload, test, leakage


def replay_journal(source, tolerance_w: float = 1e-9) -> ReplayReport:
    """Re-simulate a journal's power/state stream and cross-check it.

    ``source`` is a JSONL path, a :class:`~repro.obs.journal.Journal`,
    or an event list.  Raises :class:`ReplayError` on malformed input;
    returns a :class:`ReplayReport` whose ``mismatches`` /
    ``transition_violations`` hold any disagreements found.
    """
    events = _load_events(source)
    report = ReplayReport()
    platform: Optional[Dict[str, object]] = None
    node = None
    pending_cores: Optional[Tuple[float, List]] = None
    legal_names = {
        (old.name, new.name) for old, new in LEGAL_TRANSITIONS
    }
    state_names = {state.name for state in CoreState}
    try:
        for event in events:
            if event.type == "verify.platform":
                data = event.data
                platform = {
                    "vf_levels": [
                        (float(vdd), float(f_mhz))
                        for vdd, f_mhz in data["vf_levels"]
                    ],
                    "leak_factors": [float(v) for v in data["leak_factors"]],
                    "gated_leak_fraction": float(data["gated_leak_fraction"]),
                    "default_activity": float(data["default_activity"]),
                    "n_cores": int(data["width"]) * int(data["height"]),
                    # Hetero-only keys (absent in degenerate journals).
                    "tech_model": (
                        get_tech_model(str(data["tech_model"]))
                        if "tech_model" in data
                        else None
                    ),
                    "core_types": (
                        [get_core_type(str(n)) for n in data["core_types"]]
                        if "core_types" in data
                        else None
                    ),
                }
                node = get_node(str(data["node"]))
            elif event.type == "verify.cores":
                if pending_cores is not None:
                    raise ReplayError(
                        f"verify.cores at t={event.time:g} before the "
                        f"t={pending_cores[0]:g} snapshot was consumed"
                    )
                pending_cores = (event.time, event.data["cores"])
            elif event.type == "verify.power":
                if platform is None or node is None:
                    raise ReplayError(
                        "verify.power before any verify.platform event"
                    )
                if pending_cores is None or pending_cores[0] != event.time:
                    raise ReplayError(
                        f"verify.power at t={event.time:g} has no matching "
                        "verify.cores snapshot"
                    )
                cores = pending_cores[1]
                pending_cores = None
                if len(cores) != platform["n_cores"]:
                    raise ReplayError(
                        f"snapshot at t={event.time:g} has {len(cores)} "
                        f"core(s), platform declared {platform['n_cores']}"
                    )
                replayed = _recompute(
                    node,
                    platform["vf_levels"],
                    platform["leak_factors"],
                    platform["gated_leak_fraction"],
                    platform["default_activity"],
                    cores,
                    tech_model=platform["tech_model"],
                    core_types=platform["core_types"],
                )
                report.ticks_checked += 1
                for channel, value in zip(_CHANNELS, replayed):
                    recorded = float(event.data[channel])
                    error = abs(recorded - value)
                    report.max_abs_error_w = max(
                        report.max_abs_error_w, error
                    )
                    if error > tolerance_w:
                        report.mismatches.append(
                            {
                                "time": event.time,
                                "channel": channel,
                                "recorded_w": recorded,
                                "replayed_w": value,
                                "error_w": recorded - value,
                            }
                        )
                noc_w = float(event.data["noc_w"])
                if noc_w < -tolerance_w:
                    report.mismatches.append(
                        {
                            "time": event.time,
                            "channel": "noc_w",
                            "recorded_w": noc_w,
                            "replayed_w": 0.0,
                            "error_w": noc_w,
                        }
                    )
            elif event.type == "core.transition":
                old = str(event.data["from_state"])
                new = str(event.data["to_state"])
                if old not in state_names or new not in state_names:
                    raise ReplayError(
                        f"unknown core state in transition event: "
                        f"{old!r} -> {new!r}"
                    )
                report.transitions_checked += 1
                if (old, new) not in legal_names:
                    report.transition_violations.append(
                        {
                            "time": event.time,
                            "core": event.data.get("core"),
                            "from_state": old,
                            "to_state": new,
                        }
                    )
    except ReplayError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise ReplayError(f"journal payload is malformed: {exc!r}") from exc
    if report.ticks_checked == 0:
        raise ReplayError(
            "journal carries no verify.cores/verify.power snapshots "
            "(was the run made with both --journal and --verify?)"
        )
    if pending_cores is not None:
        raise ReplayError(
            f"journal is truncated: verify.cores at t={pending_cores[0]:g} "
            "has no verify.power"
        )
    return report

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``        — run one simulation and print its summary
  (``--journal PATH`` writes a JSONL event journal, ``--profile`` prints
  the phase profile)
* ``experiment`` — run experiment(s) by id (E1..E10, A1..A6)
* ``sweep``      — sweep one config field over values, print a row per run
* ``obs``        — summarize/filter a JSONL run journal
* ``campaign``   — fault-injection campaigns: ``run``/``resume``/``report``
  over a checkpointed campaign directory (see :mod:`repro.campaign`),
  plus read-only ``status`` against a running (or finished) directory
* ``top``        — one-line live status per campaign directory, read
  from the atomically-flushed ``status.json`` (see
  :mod:`repro.telemetry.status`); ``--url HOST:PORT`` instead polls a
  running ``repro serve`` instance's ``/status`` endpoint
* ``serve``      — the multi-tenant simulation server: sweep points and
  campaign specs over HTTP, results streamed back as JSONL, identical
  digests to direct runs (see :mod:`repro.serve` and docs/serving.md)
* ``cache``      — run-result cache maintenance: ``stats``/``verify``/
  ``gc``/``clear`` (see :mod:`repro.cache`)
* ``verify``     — runtime verification: ``invariants`` over the
  experiment configs, the metamorphic ``relations`` suite, and journal
  ``replay`` cross-checks (see :mod:`repro.verify`); ``run --verify``
  attaches the invariant checker to a single run
* ``list``       — show available experiments, scenarios, nodes, policies

``run``, ``sweep``, ``experiment`` and ``campaign run/resume`` accept
``--cache`` / ``--no-cache`` / ``--cache-dir DIR`` to memoize results
in the content-addressed run cache (off by default; ``--cache-dir``
implies ``--cache``; ``--no-cache`` forces a cold computation even
where project config or scripts turn caching on).

The CLI is a thin shell over the library: everything it does is a few
lines of :mod:`repro.core.system` / :mod:`repro.experiments` calls, and
``main(argv)`` returns an exit code so it is unit-testable.
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import os
import sys
from typing import List, Optional, Sequence

from repro.core.config_io import load_config, save_config
from repro.core.system import SystemConfig, run_system
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.parallel import run_many
from repro.metrics.export import trace_to_csv, write_text
from repro.metrics.report import format_table
from repro.platform.technology import node_names
from repro.workload.scenarios import SCENARIOS, scenario_config_kwargs

def _jobs_arg(raw: str) -> int:
    """argparse type for ``--jobs``: friendly rejection at parse time.

    Without this, a negative value surfaces as a ValueError from deep
    inside ``run_many`` mid-sweep.
    """
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"jobs must be an integer, got {raw!r}"
        )
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 0 (0 or 1 means serial), got {value}"
        )
    return value


def _batch_size_arg(raw: str) -> int:
    """argparse type for ``--batch-size``: reject nonsense at parse time."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"batch size must be an integer, got {raw!r}"
        )
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"batch size must be >= 1, got {value}"
        )
    return value


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ``--cache/--no-cache/--cache-dir`` flag triple."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--cache", action="store_true",
        help="memoize run results in the content-addressed cache "
             "(default dir: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="force cold computation (ignore any cached results)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="cache directory (implies --cache)",
    )


def _cache_from_args(args: argparse.Namespace):
    """Build the :class:`repro.cache.RunCache` the flags ask for (or None)."""
    if getattr(args, "no_cache", False):
        return None
    if not (getattr(args, "cache", False) or getattr(args, "cache_dir", None)):
        return None
    from repro.cache import RunCache

    return RunCache(cache_dir=args.cache_dir)


def _print_cache_outcome(cache) -> None:
    stats = cache.stats
    rate = stats.hit_rate()
    print(
        f"cache: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{stats.bypasses} bypassed"
        + (f" ({100.0 * rate:.0f}% hit rate)" if rate is not None else "")
    )


_POLICY_CHOICES = {
    "mapper": ("contiguous", "scatter", "random", "mappro", "test-aware"),
    "power_policy": ("pid", "tsp", "naive", "worst-case", "none"),
    "test_policy": ("power-aware", "none", "unaware", "round-robin"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Power-aware online testing of manycore systems in the dark "
            "silicon era (DATE 2015) - reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument(
        "--config", metavar="PATH", help="JSON config file to start from"
    )
    run_p.add_argument(
        "--scenario", choices=sorted(SCENARIOS), help="workload scenario"
    )
    run_p.add_argument(
        "--node", choices=node_names(), help="technology node"
    )
    run_p.add_argument(
        "--tdp-w", type=float, metavar="W", help="TDP power budget in watts"
    )
    run_p.add_argument(
        "--horizon-ms", type=float, metavar="MS",
        help="simulation horizon in milliseconds",
    )
    run_p.add_argument(
        "--rate-per-ms", type=float, metavar="RATE",
        help="task arrival rate per millisecond",
    )
    run_p.add_argument("--seed", type=int, metavar="N", help="base RNG seed")
    run_p.add_argument(
        "--mapper", choices=_POLICY_CHOICES["mapper"], help="mapping policy"
    )
    run_p.add_argument(
        "--power-policy", choices=_POLICY_CHOICES["power_policy"],
        help="power budgeting policy",
    )
    run_p.add_argument(
        "--test-policy", choices=_POLICY_CHOICES["test_policy"],
        help="online test scheduling policy",
    )
    run_p.add_argument(
        "--thermal", action="store_true", help="enable RC thermal model"
    )
    run_p.add_argument(
        "--variation", action="store_true", help="enable process variation"
    )
    run_p.add_argument(
        "--save-config", metavar="PATH",
        help="write the effective config JSON here",
    )
    run_p.add_argument(
        "--export-trace", metavar="PATH",
        help="write the power/count traces as CSV here",
    )
    run_p.add_argument(
        "--journal", metavar="PATH",
        help="enable the event journal and write it as JSONL here",
    )
    run_p.add_argument(
        "--journal-level", choices=("info", "debug"), default="info",
        help="journal verbosity (debug adds core state transitions)",
    )
    run_p.add_argument(
        "--profile", action="store_true",
        help="enable the phase profiler and print the per-subsystem profile",
    )
    run_p.add_argument(
        "--verify", action="store_true",
        help="run the inline invariant checker (repro.verify) alongside "
             "the simulation; non-zero exit on any violation",
    )
    run_p.add_argument(
        "--telemetry", action="store_true",
        help="collect runtime telemetry (events/s, launches/deferrals, "
             "power headroom) and print the counter summary; never "
             "changes the simulation result",
    )
    _add_cache_flags(run_p)

    exp_p = sub.add_parser("experiment", help="run experiments by id")
    exp_p.add_argument("ids", nargs="+", help="experiment ids, e.g. E2 E9 A4")
    exp_p.add_argument(
        "--horizon-us", type=float, metavar="US",
        help="override the horizon in microseconds",
    )
    exp_p.add_argument(
        "--jobs", type=_jobs_arg, default=None, metavar="N",
        help="worker processes for the experiment's independent runs "
             "(results are identical to a serial run)",
    )
    _add_cache_flags(exp_p)

    sweep_p = sub.add_parser("sweep", help="sweep one config field")
    sweep_p.add_argument("field", help="SystemConfig field, e.g. tdp_w")
    sweep_p.add_argument("values", help="comma-separated values, e.g. 40,60,80")
    sweep_p.add_argument(
        "--horizon-ms", type=float, default=30.0, metavar="MS",
        help="simulation horizon in milliseconds (default 30)",
    )
    sweep_p.add_argument(
        "--seed", type=int, default=1, metavar="N",
        help="base RNG seed (default 1)",
    )
    sweep_p.add_argument(
        "--jobs", type=_jobs_arg, default=None, metavar="N",
        help="worker processes for the sweep points "
             "(results are identical to a serial run)",
    )
    sweep_p.add_argument(
        "--batch-size", type=_batch_size_arg, default=None, metavar="N",
        help="lockstep batch width: seed-replica lanes per batch-engine "
             "group (results are digest-identical to unbatched runs)",
    )
    _add_cache_flags(sweep_p)

    obs_p = sub.add_parser("obs", help="summarize/filter a JSONL run journal")
    obs_p.add_argument("journal", help="JSONL journal written by run --journal")
    obs_p.add_argument(
        "--type", dest="type_prefix", metavar="PREFIX",
        help="print events whose type starts with PREFIX (e.g. test.)",
    )
    obs_p.add_argument(
        "--core", type=int, metavar="ID",
        help="restrict --type output to one core id",
    )
    obs_p.add_argument(
        "--tail", type=int, metavar="N", help="print only the last N matches"
    )
    obs_p.add_argument(
        "--decisions", action="store_true",
        help="print every test launch/defer decision with reason and headroom",
    )

    camp_p = sub.add_parser(
        "campaign",
        help="fault-injection campaigns (run/resume/report)",
    )
    camp_sub = camp_p.add_subparsers(dest="campaign_command", required=True)

    def _campaign_exec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=_jobs_arg, default=None, metavar="N",
            help="worker processes (0/1 = serial; aggregates are "
                 "identical either way)",
        )
        p.add_argument(
            "--timeout-s", type=float, default=None, metavar="SECONDS",
            help="per-run timeout in seconds (timed-out runs are "
                 "retried, then quarantined)",
        )
        p.add_argument(
            "--max-attempts", type=int, default=3, metavar="N",
            help="attempts per point before quarantine (default 3)",
        )
        p.add_argument(
            "--backoff-s", type=float, default=0.5, metavar="SECONDS",
            help="base retry backoff in seconds (default 0.5, doubles "
                 "per failure, capped)",
        )
        p.add_argument(
            "--interrupt-after", type=int, default=None, metavar="N",
            help="testing/ops hook: simulate a crash after N "
                 "checkpointed results (exit code 3; resume continues)",
        )
        p.add_argument(
            "--no-telemetry", action="store_true",
            help="skip collecting runtime telemetry and writing the "
                 "status.json/telemetry.prom/telemetry.json files "
                 "(results are identical either way)",
        )
        _add_cache_flags(p)

    camp_run = camp_sub.add_parser(
        "run", help="start a campaign from a spec JSON"
    )
    camp_run.add_argument("spec", help="campaign spec JSON file")
    camp_run.add_argument(
        "--dir", required=True, dest="campaign_dir", metavar="DIR",
        help="campaign directory (checkpoint store lives here)",
    )
    _campaign_exec_args(camp_run)

    camp_res = camp_sub.add_parser(
        "resume", help="resume an interrupted campaign directory"
    )
    camp_res.add_argument(
        "campaign_dir", help="campaign directory with spec.json"
    )
    _campaign_exec_args(camp_res)

    camp_rep = camp_sub.add_parser(
        "report", help="rebuild the report/manifest of a campaign"
    )
    camp_rep.add_argument(
        "campaign_dir", help="campaign directory with spec.json"
    )

    camp_stat = camp_sub.add_parser(
        "status",
        help="read-only progress of a campaign directory (live or "
             "finished; degrades to row counts for pre-telemetry dirs)",
    )
    camp_stat.add_argument(
        "campaign_dir", help="campaign directory with spec.json"
    )
    camp_stat.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the raw status document as JSON",
    )

    dse_p = sub.add_parser(
        "dse",
        help="surrogate-guided design-space exploration "
             "(run/report/front; see docs/dse.md)",
    )
    dse_sub = dse_p.add_subparsers(dest="dse_command", required=True)

    dse_run = dse_sub.add_parser(
        "run", help="run or resume a search from a dse spec JSON"
    )
    dse_run.add_argument(
        "spec", nargs="?", default=None,
        help="dse spec JSON file (omit to resume an existing "
             "search directory)",
    )
    dse_run.add_argument(
        "--dir", required=True, dest="search_dir", metavar="DIR",
        help="search directory (spec, generation campaigns, cache and "
             "front.json live here)",
    )
    dse_run.add_argument(
        "--jobs", type=_jobs_arg, default=None, metavar="N",
        help="worker processes per generation campaign (0/1 = serial; "
             "fronts are identical either way)",
    )
    dse_run.add_argument(
        "--batch-size", type=_batch_size_arg, default=None, metavar="N",
        help="lockstep batch width: seed-replica lanes per batch-engine "
             "group (results are digest-identical to unbatched runs)",
    )
    dse_run.add_argument(
        "--interrupt-after", type=int, default=None, metavar="N",
        help="testing/ops hook: simulate a crash after N checkpointed "
             "results (exit code 3; rerunning resumes)",
    )
    dse_run.add_argument(
        "--no-telemetry", action="store_true",
        help="skip dse.* counters and per-generation status files "
             "(results are identical either way)",
    )
    dse_run.add_argument(
        "--no-cache", action="store_true",
        help="force cold evaluation (skip the search-local run cache)",
    )
    dse_run.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="run-cache directory (default: <search-dir>/cache)",
    )

    dse_rep = dse_sub.add_parser(
        "report", help="print counters and front of a search directory"
    )
    dse_rep.add_argument(
        "search_dir", help="search directory with spec.json"
    )
    dse_rep.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the raw report document as JSON",
    )

    dse_front = dse_sub.add_parser(
        "front", help="rank the Pareto front of a finished search"
    )
    dse_front.add_argument(
        "search_dir", help="search directory with front.json"
    )
    dse_front.add_argument(
        "--weights", metavar="W1,W2,...", default=None,
        help="weighted-sum MCDM weights, one per objective "
             "(default: equal weights)",
    )
    dse_front.add_argument(
        "--lex", metavar="OBJ1,OBJ2,...", default=None,
        help="lexicographic MCDM instead: objective names by "
             "decreasing priority (must mention every objective)",
    )
    dse_front.add_argument(
        "--tolerance", type=float, default=0.0, metavar="FRACTION",
        help="lexicographic tolerance band as a fraction of each "
             "objective's span (default 0 = strict)",
    )
    dse_front.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="print only the N best-ranked points",
    )
    dse_front.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the ranked points as JSON",
    )

    top_p = sub.add_parser(
        "top", help="one-line live status per campaign directory"
    )
    top_p.add_argument(
        "campaign_dirs", nargs="*",
        help="campaign directories to watch (omit when using --url)",
    )
    top_p.add_argument(
        "--url", metavar="HOST:PORT",
        help="poll a running 'repro serve' instance instead of local "
             "directories (accepts host:port, a base URL, or a full "
             "/status URL)",
    )
    top_p.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="refresh every SECONDS until interrupted "
             "(default: print once and exit)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the multi-tenant simulation server "
             "(HTTP + JSONL streaming; see docs/serving.md)",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default localhost)",
    )
    serve_p.add_argument(
        "--port", type=int, default=8742, metavar="PORT",
        help="TCP port; 0 picks an ephemeral port (default 8742)",
    )
    serve_p.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="write the bound port here once listening (for harnesses "
             "that start the server with --port 0)",
    )
    serve_p.add_argument(
        "--state-dir", default="serve-state", metavar="DIR",
        help="server state directory: campaign checkpoints, final "
             "status/metrics exports (default ./serve-state)",
    )
    serve_p.add_argument(
        "--jobs", type=_jobs_arg, default=0, metavar="N",
        help="worker processes for sweep points (0 = in-process "
             "threads; results are identical either way)",
    )
    serve_p.add_argument(
        "--batch-size", type=_batch_size_arg, default=None, metavar="N",
        help="lockstep batch width: seed-replica lanes per batch-engine "
             "group (results are digest-identical to unbatched runs)",
    )
    serve_p.add_argument(
        "--max-queue", type=int, default=1024, metavar="N",
        help="global queued-point bound; beyond it submissions get "
             "429 + Retry-After (default 1024)",
    )
    serve_p.add_argument(
        "--tenant-quota", type=int, default=256, metavar="N",
        help="per-tenant in-flight point bound (default 256)",
    )
    serve_p.add_argument(
        "--max-points", type=int, default=None, metavar="N",
        help="per-request resolved-point ceiling (default 4096)",
    )
    serve_p.add_argument(
        "--max-campaigns", type=int, default=4, metavar="N",
        help="concurrently executing campaign jobs (default 4)",
    )
    serve_p.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="graceful-shutdown budget for in-flight work (default 30)",
    )
    serve_p.add_argument(
        "--no-resume", action="store_true",
        help="do not auto-resume interrupted campaigns found in the "
             "state dir at startup",
    )
    _add_cache_flags(serve_p)

    cache_p = sub.add_parser(
        "cache", help="run-result cache maintenance (stats/verify/gc/clear)"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)

    def _cache_dir_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir", metavar="DIR",
            help="cache directory (default: $REPRO_CACHE_DIR or "
                 "~/.cache/repro)",
        )

    cache_stats = cache_sub.add_parser(
        "stats", help="show entry count, size and lifetime hit/miss counters"
    )
    _cache_dir_arg(cache_stats)

    cache_verify = cache_sub.add_parser(
        "verify",
        help="re-hash every blob; quarantine corrupt ones (exit 1 if any)",
    )
    _cache_dir_arg(cache_verify)

    cache_gc = cache_sub.add_parser(
        "gc",
        help="evict LRU entries to a size cap, drop orphan blobs, "
             "compact the index",
    )
    _cache_dir_arg(cache_gc)
    cache_gc.add_argument(
        "--max-mb", type=float, default=None, metavar="MB",
        help="size cap to evict down to (omit to only collect "
             "orphans and compact)",
    )

    cache_clear = cache_sub.add_parser(
        "clear", help="delete every cached result"
    )
    _cache_dir_arg(cache_clear)

    ver_p = sub.add_parser(
        "verify",
        help="runtime invariants, metamorphic relations, journal replay",
    )
    ver_sub = ver_p.add_subparsers(dest="verify_command", required=True)

    ver_inv = ver_sub.add_parser(
        "invariants",
        help="run the invariant checker over the experiment configs",
    )
    ver_inv.add_argument(
        "--experiments", nargs="+", default=None, metavar="ID",
        help="experiment ids to certify (default: E1..E9)",
    )
    ver_inv.add_argument(
        "--horizon-ms", type=float, default=20.0, metavar="MS",
        help="horizon per run in milliseconds (default 20)",
    )
    ver_inv.add_argument(
        "--seed", type=int, default=11, metavar="N",
        help="base RNG seed (default 11)",
    )

    ver_rel = ver_sub.add_parser(
        "relations", help="check the metamorphic relation suite"
    )
    ver_rel.add_argument(
        "--relations", nargs="+", default=None, metavar="NAME",
        help="relation names (default: the full catalog; see "
             "docs/verification.md)",
    )
    ver_rel.add_argument(
        "--horizon-ms", type=float, default=20.0, metavar="MS",
        help="horizon per run in milliseconds (default 20)",
    )
    ver_rel.add_argument(
        "--seed", type=int, default=11, metavar="N",
        help="base RNG seed (default 11)",
    )
    ver_rel.add_argument(
        "--jobs", type=_jobs_arg, default=None, metavar="N",
        help="worker processes for the relation runs",
    )
    _add_cache_flags(ver_rel)

    ver_rep = ver_sub.add_parser(
        "replay",
        help="re-simulate a journal and cross-check its recorded power",
    )
    ver_rep.add_argument(
        "journal", help="JSONL journal written by run --journal --verify"
    )
    ver_rep.add_argument(
        "--tolerance-w", type=float, default=1e-9, metavar="W",
        help="per-channel disagreement tolerance in watts (default 1e-9)",
    )

    sub.add_parser("list", help="show experiments, scenarios, nodes, policies")
    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _effective_config(args: argparse.Namespace) -> SystemConfig:
    config = load_config(args.config) if args.config else SystemConfig()
    updates = {}
    if args.scenario:
        updates.update(scenario_config_kwargs(args.scenario))
    if args.node:
        updates["node_name"] = args.node
    if args.tdp_w is not None:
        updates["tdp_w"] = args.tdp_w
    if args.horizon_ms is not None:
        updates["horizon_us"] = args.horizon_ms * 1000.0
    if args.rate_per_ms is not None:
        updates["arrival_rate_per_ms"] = args.rate_per_ms
    if args.seed is not None:
        updates["seed"] = args.seed
    if args.mapper:
        updates["mapper"] = args.mapper
    if args.power_policy:
        updates["power_policy"] = args.power_policy
    if args.test_policy:
        updates["test_policy"] = args.test_policy
    if args.thermal:
        updates["thermal_enabled"] = True
    if args.variation:
        updates["variation_enabled"] = True
    if updates:
        config = dataclasses.replace(config, **updates)
    return config


def cmd_run(args: argparse.Namespace) -> int:
    from repro.obs import Journal, PhaseProfiler

    config = _effective_config(args)
    if args.save_config:
        save_config(config, args.save_config)
    journal = Journal(level=args.journal_level) if args.journal else None
    profiler = PhaseProfiler() if args.profile else None
    verifier = None
    if args.verify:
        from repro.verify import InvariantChecker

        verifier = InvariantChecker()
    cache = _cache_from_args(args)
    cache_hit = False
    if cache is not None and (
        journal is not None or profiler is not None or verifier is not None
    ):
        # A cached result cannot carry the journal/profile/verification
        # stream of the run it would skip; count the bypass, compute cold.
        cache.note_bypass(1, reason="observability enabled")
        cache = None
    telemetry_reg = None
    if args.telemetry:
        # Telemetry is a write-only sink: unlike journal/profiler it
        # neither bypasses the cache nor changes the result.
        from repro.telemetry import configure_telemetry
        from repro.telemetry.registry import MetricsRegistry

        telemetry_reg = MetricsRegistry()
        configure_telemetry(telemetry_reg)
        if cache is not None:
            cache.bind_telemetry(telemetry_reg)
    try:
        if cache is not None:
            result, cache_hit = cache.get_or_run(config)
        else:
            result = run_system(
                config, journal=journal, profiler=profiler, verifier=verifier
            )
    finally:
        if telemetry_reg is not None:
            from repro.telemetry import configure_telemetry

            configure_telemetry(None)
    rows = [[key, value] for key, value in result.summary().items()]
    print(
        format_table(
            ["metric", "value"],
            rows,
            precision=4,
            title=(
                f"{config.width}x{config.height} @ {config.node_name}, "
                f"TDP {config.tdp_w:g} W, {config.horizon_us / 1000:g} ms, "
                f"mapper={result.mapper_name}, test={result.scheduler_name}, "
                f"power={result.power_policy_name}"
            ),
        )
    )
    if result.peak_temperature_c is not None:
        print(f"peak temperature: {result.peak_temperature_c:.1f} C")
    if args.export_trace:
        write_text(args.export_trace, trace_to_csv(result.metrics.trace))
        print(f"trace written to {args.export_trace}")
    if journal is not None:
        journal.write_jsonl(args.journal)
        print(f"journal written to {args.journal} ({len(journal)} events)")
    if profiler is not None:
        print(profiler.report())
    if telemetry_reg is not None:
        snapshot = telemetry_reg.snapshot()
        lines = [
            f"  {name} = {value}"
            for name, value in sorted(snapshot.get("counters", {}).items())
        ]
        lines += [
            f"  {name} = {gauge['last']:g} "
            f"(min {gauge['min']:g}, max {gauge['max']:g})"
            for name, gauge in sorted(snapshot.get("gauges", {}).items())
            if gauge.get("last") is not None
        ]
        if lines:
            print("telemetry:")
            print("\n".join(lines))
        else:
            print("telemetry: empty (a cache hit executes no simulation)")
    if cache is not None:
        print(f"cache: {'hit' if cache_hit else 'miss (stored)'}")
    if verifier is not None:
        summary = verifier.summary()
        print(
            f"verify: {summary['checks_run']} check(s) over "
            f"{summary['ticks_checked']} epoch(s), "
            f"{summary['violations']} violation(s)"
        )
        if not verifier.ok:
            for violation in verifier.violations[:10]:
                print(
                    f"  [{violation.invariant}] t={violation.time:g}: "
                    f"{violation.message}",
                    file=sys.stderr,
                )
            return 1
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import Journal, audit

    try:
        events = Journal.load_jsonl(args.journal)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read journal {args.journal!r}: {exc}", file=sys.stderr)
        return 2
    if args.decisions:
        decisions = audit.test_decisions(events)
        if not decisions:
            print("no test decisions in journal")
            return 0
        rows = [
            [
                d["time"],
                d["action"],
                d["core"],
                d["level"] if d["level"] is not None else "-",
                d["headroom_w"],
                d["reason"],
            ]
            for d in decisions
        ]
        print(
            format_table(
                ["t_us", "action", "core", "level", "headroom_w", "reason"],
                rows,
                title=f"test decisions ({len(rows)})",
            )
        )
        return 0
    if args.type_prefix:
        matches = [e for e in events if e.type.startswith(args.type_prefix)]
        if args.core is not None:
            matches = [e for e in matches if e.data.get("core") == args.core]
        if args.tail is not None:
            matches = matches[-args.tail:]
        for event in matches:
            print(event.to_json())
        return 0
    print(audit.format_summary(events))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    unknown = [i for i in args.ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"known: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    cache = _cache_from_args(args)
    if cache is not None:
        # Experiment runners call run_many internally; the process-wide
        # default threads the cache through without touching their
        # signatures.  Regenerated tables may therefore be cache-served
        # — pass --no-cache to force a cold recompute.
        from repro.cache import set_default_cache

        set_default_cache(cache)
    try:
        for experiment_id in args.ids:
            kwargs = {}
            if args.horizon_us is not None:
                kwargs["horizon_us"] = args.horizon_us
            if args.jobs is not None:
                # Ablation runners predate the parallel harness; only pass
                # --jobs to runners that accept it.
                runner = EXPERIMENTS[experiment_id]
                if "jobs" in inspect.signature(runner).parameters:
                    kwargs["jobs"] = args.jobs
            result = run_experiment(experiment_id, **kwargs)
            print(result.render())
            print()
    finally:
        if cache is not None:
            from repro.cache import set_default_cache

            set_default_cache(None)
    if cache is not None:
        _print_cache_outcome(cache)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    field_names = {f.name: f for f in dataclasses.fields(SystemConfig)}
    if args.field not in field_names:
        print(f"unknown config field {args.field!r}", file=sys.stderr)
        return 2
    raw_values = [v.strip() for v in args.values.split(",") if v.strip()]
    if not raw_values:
        print("no sweep values given", file=sys.stderr)
        return 2

    def coerce(raw: str):
        for cast in (int, float):
            try:
                return cast(raw)
            except ValueError:
                continue
        if raw in ("true", "false"):
            return raw == "true"
        return raw

    base = SystemConfig(
        horizon_us=args.horizon_ms * 1000.0, seed=args.seed
    )
    values = [coerce(raw) for raw in raw_values]
    configs = [
        dataclasses.replace(base, **{args.field: value}) for value in values
    ]
    cache = _cache_from_args(args)
    results = run_many(
        configs, args.jobs, cache=cache, batch_size=args.batch_size
    )
    rows = []
    for value, result in zip(values, results):
        summary = result.summary()
        rows.append(
            [
                value,
                summary["throughput_ops_per_us"],
                summary["avg_power_w"],
                summary["budget_violation_rate"],
                int(summary["tests_completed"]),
            ]
        )
    print(
        format_table(
            [args.field, "throughput_ops_per_us", "avg_power_w",
             "violation_rate", "tests"],
            rows,
            title=f"sweep of {args.field}",
        )
    )
    if cache is not None:
        _print_cache_outcome(cache)
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignInterrupted,
        CampaignSpec,
        RetryPolicy,
        report_campaign,
        run_campaign,
    )
    from repro.campaign.store import MANIFEST_FILE

    if args.campaign_command == "report":
        try:
            report = report_campaign(args.campaign_dir)
        except (OSError, ValueError) as exc:
            print(f"cannot report campaign: {exc}", file=sys.stderr)
            return 2
        print(report.render())
        print(f"manifest written to "
              f"{args.campaign_dir}/{MANIFEST_FILE}")
        return 0

    if args.campaign_command == "status":
        import json

        from repro.telemetry.status import load_status, render_status

        try:
            status = load_status(args.campaign_dir)
        except (OSError, ValueError) as exc:
            print(f"cannot read campaign status: {exc}", file=sys.stderr)
            return 2
        if args.as_json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            print(render_status(status))
        return 0

    cache = _cache_from_args(args)
    kwargs = dict(
        jobs=args.jobs,
        retry=RetryPolicy(
            max_attempts=args.max_attempts, backoff_s=args.backoff_s
        ),
        timeout_s=args.timeout_s,
        interrupt_after=args.interrupt_after,
        cache=cache,
        telemetry=not args.no_telemetry,
    )
    try:
        if args.campaign_command == "run":
            spec = CampaignSpec.load(args.spec)
            report = run_campaign(args.campaign_dir, spec=spec, **kwargs)
        else:  # resume
            report = run_campaign(args.campaign_dir, resume=True, **kwargs)
    except CampaignInterrupted as exc:
        print(str(exc), file=sys.stderr)
        return 3
    except (OSError, ValueError) as exc:
        print(f"campaign failed: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    print(f"manifest written to {args.campaign_dir}/{MANIFEST_FILE}")
    if cache is not None:
        _print_cache_outcome(cache)
    if report.quarantined:
        print(
            f"warning: {len(report.quarantined)} point(s) quarantined "
            f"(see failures.jsonl); a later resume retries them",
            file=sys.stderr,
        )
    return 0


def cmd_dse(args: argparse.Namespace) -> int:
    import json

    from repro.dse import (
        DseSpec,
        SearchInterrupted,
        lexicographic_ranking,
        load_front,
        report_search,
        run_search,
        weighted_sum_ranking,
    )
    from repro.dse.search import FRONT_FILE, REPORT_FILE

    if args.dse_command == "report":
        try:
            outcome = report_search(args.search_dir)
        except (OSError, ValueError) as exc:
            print(f"cannot report search: {exc}", file=sys.stderr)
            return 2
        if args.as_json:
            with open(
                os.path.join(args.search_dir, REPORT_FILE),
                "r", encoding="utf-8",
            ) as handle:
                print(handle.read(), end="")
        else:
            print(outcome.render())
        return 0

    if args.dse_command == "front":
        if args.weights and args.lex:
            print("--weights and --lex are mutually exclusive",
                  file=sys.stderr)
            return 2
        try:
            doc = load_front(args.search_dir)
        except (OSError, ValueError) as exc:
            print(f"cannot load front: {exc}", file=sys.stderr)
            return 2
        names = list(doc["objectives"])
        senses = list(doc["senses"])
        points = list(doc["points"])
        if not points:
            print("front is empty (no candidates evaluated yet)")
            return 0
        vectors = [
            tuple(p["objectives"][n] for n in names) for p in points
        ]
        digests = [p["cell_digest"] for p in points]
        try:
            if args.lex:
                order_names = [s.strip() for s in args.lex.split(",")]
                if sorted(order_names) != sorted(names):
                    raise ValueError(
                        f"--lex must mention every objective exactly "
                        f"once; objectives are {names}"
                    )
                order = [names.index(n) for n in order_names]
                ranking = lexicographic_ranking(
                    vectors, senses, order,
                    tolerance=args.tolerance, tie_break=digests,
                )
            else:
                weights = (
                    [float(w) for w in args.weights.split(",")]
                    if args.weights
                    else None
                )
                ranking = weighted_sum_ranking(
                    vectors, senses, weights, tie_break=digests
                )
        except ValueError as exc:
            print(f"cannot rank front: {exc}", file=sys.stderr)
            return 2
        if args.top is not None:
            ranking = ranking[: args.top]
        if args.as_json:
            print(json.dumps(
                [points[i] for i in ranking], indent=2, sort_keys=True
            ))
            return 0
        rows = []
        for rank, i in enumerate(ranking, start=1):
            point = points[i]
            params = " ".join(
                f"{k}={v}" for k, v in sorted(point["params"].items())
            )
            rows.append(
                [rank, digests[i][:12]]
                + [point["objectives"][n] for n in names]
                + [params]
            )
        print(format_table(
            ["rank", "cell"] + names + ["params"],
            rows,
            title=(
                f"{doc['name']}: {len(points)} front point(s) of "
                f"{doc['n_evaluated']} evaluated"
            ),
        ))
        return 0

    # run
    cache: object = None
    if args.no_cache:
        cache = False
    elif args.cache_dir:
        from repro.cache import RunCache

        cache = RunCache(cache_dir=args.cache_dir)
    try:
        spec = DseSpec.load(args.spec) if args.spec else None
        outcome = run_search(
            args.search_dir,
            spec=spec,
            jobs=args.jobs,
            batch=args.batch_size,
            cache=cache,
            interrupt_after=args.interrupt_after,
            telemetry=not args.no_telemetry,
        )
    except SearchInterrupted as exc:
        print(str(exc), file=sys.stderr)
        return 3
    except (OSError, ValueError) as exc:
        print(f"search failed: {exc}", file=sys.stderr)
        return 2
    print(outcome.render())
    print(
        f"front written to {args.search_dir}/{FRONT_FILE}, "
        f"report to {args.search_dir}/{REPORT_FILE}"
    )
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import RunCache, default_cache_dir

    cache_dir = args.cache_dir or default_cache_dir()
    if args.cache_command != "stats" and not os.path.isdir(cache_dir):
        print(f"no cache at {cache_dir!r}", file=sys.stderr)
        return 2
    cache = RunCache(cache_dir=cache_dir)
    if args.cache_command == "stats":
        stats = cache.store.stats()
        rows = [[key, value if value is not None else "-"]
                for key, value in stats.items()]
        print(
            format_table(
                ["stat", "value"], rows, title=f"cache at {cache_dir}"
            )
        )
        served = stats["touches"]
        stored = stats["puts"]
        if served + stored:
            print(
                f"lifetime hit rate: "
                f"{100.0 * served / (served + stored):.1f}% "
                f"({served} served / {stored} stored)"
            )
        return 0
    if args.cache_command == "verify":
        report = cache.verify()
        print(
            f"checked {report['checked']} blob(s): {report['ok']} ok, "
            f"{len(report['corrupt'])} corrupt"
        )
        for key in report["corrupt"]:
            print(f"  quarantined {key}")
        return 1 if report["corrupt"] else 0
    if args.cache_command == "gc":
        max_bytes = (
            int(args.max_mb * 1_000_000) if args.max_mb is not None else None
        )
        outcome = cache.gc(max_bytes=max_bytes)
        print(
            f"evicted {len(outcome['evicted'])} entr(ies), removed "
            f"{outcome['orphan_blobs_removed']} orphan blob(s); "
            f"{outcome['entries']} entr(ies) / {outcome['bytes']} bytes kept"
        )
        return 0
    # clear
    removed = cache.clear()
    print(f"cleared {removed} entr(ies) from {cache_dir}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import (
        RELATIONS,
        ReplayError,
        check_relations,
        replay_journal,
        verify_config,
    )

    if args.verify_command == "replay":
        try:
            report = replay_journal(args.journal, tolerance_w=args.tolerance_w)
        except ReplayError as exc:
            print(f"cannot replay journal: {exc}", file=sys.stderr)
            return 2
        print(
            f"replayed {report.ticks_checked} epoch(s): "
            f"{len(report.mismatches)} power mismatch(es), "
            f"{len(report.transition_violations)} illegal transition(s) "
            f"over {report.transitions_checked} recorded transition(s), "
            f"max |error| {report.max_abs_error_w:g} W"
        )
        for mismatch in report.mismatches[:10]:
            print(
                f"  t={mismatch['time']:g}: {mismatch['channel']} recorded "
                f"{mismatch['recorded_w']!r} vs replayed "
                f"{mismatch['replayed_w']!r}",
                file=sys.stderr,
            )
        for violation in report.transition_violations[:10]:
            print(
                f"  t={violation['time']:g}: core {violation['core']} "
                f"{violation['from_state']} -> {violation['to_state']}",
                file=sys.stderr,
            )
        return 0 if report.ok else 1

    if args.verify_command == "relations":
        relations = None
        if args.relations is not None:
            unknown = [n for n in args.relations if n not in RELATIONS]
            if unknown:
                print(f"unknown relations: {unknown}", file=sys.stderr)
                print(f"known: {sorted(RELATIONS)}", file=sys.stderr)
                return 2
            relations = [RELATIONS[name]() for name in args.relations]
        from repro.experiments.runners import DEFAULT_CONFIG

        base = dataclasses.replace(
            DEFAULT_CONFIG,
            horizon_us=args.horizon_ms * 1000.0,
            seed=args.seed,
        )
        cache = _cache_from_args(args)
        report = check_relations(
            base, relations=relations, jobs=args.jobs, cache=cache
        )
        rows = [
            [o.name, o.n_runs, "ok" if o.ok else "FAIL", o.description]
            for o in report.outcomes
        ]
        print(
            format_table(
                ["relation", "runs", "status", "property"],
                rows,
                title=f"metamorphic relations ({report.n_runs} runs)",
            )
        )
        if cache is not None:
            _print_cache_outcome(cache)
        for failure in report.failures():
            print(f"FAIL: {failure}", file=sys.stderr)
        return 0 if report.ok else 1

    # invariants
    from repro.experiments.runners import experiment_configs

    configs = experiment_configs(
        horizon_us=args.horizon_ms * 1000.0, seed=args.seed
    )
    wanted = args.experiments or sorted(configs)
    unknown = [i for i in wanted if i not in configs]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"known: {sorted(configs)}", file=sys.stderr)
        return 2
    rows = []
    failed = False
    first_bad = None
    for experiment_id in wanted:
        config = configs[experiment_id]
        _result, checker = verify_config(config)
        summary = checker.summary()
        rows.append(
            [
                experiment_id,
                config.node_name,
                config.test_policy,
                config.power_policy,
                summary["ticks_checked"],
                summary["checks_run"],
                summary["violations"],
                "ok" if checker.ok else "FAIL",
            ]
        )
        if not checker.ok:
            failed = True
            if first_bad is None:
                first_bad = (experiment_id, checker)
    print(
        format_table(
            [
                "experiment", "node", "test_policy", "power_policy",
                "epochs", "checks", "violations", "status",
            ],
            rows,
            title=f"invariant checks ({len(rows)} config(s))",
        )
    )
    if first_bad is not None:
        experiment_id, checker = first_bad
        for violation in checker.violations[:10]:
            print(
                f"FAIL [{experiment_id}/{violation.invariant}] "
                f"t={violation.time:g}: {violation.message}",
                file=sys.stderr,
            )
    return 1 if failed else 0


def _server_top_statuses(url: str) -> List[dict]:
    """Fetch a server's ``/status`` and shape it into ``render_top`` rows.

    One row for the server itself (aggregate sweep throughput) plus one
    per campaign the server knows about — the same renderer the
    directory mode uses, so local and remote watching look alike.
    """
    from repro.serve.client import fetch_status

    doc = fetch_status(url)
    server_row = {
        "name": str(doc.get("name", "server")),
        "state": str(doc.get("state", "?")),
        "points_done": doc.get("points_done"),
        "points_planned": doc.get("points_planned"),
        "rate_per_s": doc.get("rate_per_s"),
        "eta_s": doc.get("eta_s"),
        "events_per_s": doc.get("events_per_s"),
        "workers": doc.get("workers") or {},
    }
    rows = [server_row]
    campaigns = doc.get("campaigns")
    if isinstance(campaigns, list):
        rows.extend(c for c in campaigns if isinstance(c, dict))
    return rows


def cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.telemetry.status import load_status, render_top

    if not args.campaign_dirs and not args.url:
        print(
            "top: give campaign directories and/or --url HOST:PORT",
            file=sys.stderr,
        )
        return 2
    try:
        while True:
            statuses = []
            errors = 0
            for directory in args.campaign_dirs:
                try:
                    statuses.append(load_status(directory))
                except (OSError, ValueError) as exc:
                    errors += 1
                    print(f"{directory}: {exc}", file=sys.stderr)
            if args.url:
                try:
                    statuses.extend(_server_top_statuses(args.url))
                except Exception as exc:
                    errors += 1
                    print(f"{args.url}: {exc}", file=sys.stderr)
            if statuses:
                print(render_top(statuses))
            if args.watch is None:
                return 2 if errors and not statuses else 0
            time.sleep(args.watch)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.protocol import MAX_POINTS_PER_REQUEST
    from repro.serve.server import ServeConfig, serve_main

    cache = _cache_from_args(args)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        batch_size=args.batch_size,
        state_dir=args.state_dir,
        cache=cache,
        max_queue=args.max_queue,
        tenant_quota=args.tenant_quota,
        max_points_per_request=(
            args.max_points if args.max_points is not None
            else MAX_POINTS_PER_REQUEST
        ),
        max_campaigns=args.max_campaigns,
        drain_timeout_s=args.drain_timeout,
        auto_resume=not args.no_resume,
    )
    try:
        return asyncio.run(serve_main(config, port_file=args.port_file))
    except KeyboardInterrupt:  # pragma: no cover - signal path races
        return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    print("scenarios:  ", ", ".join(sorted(SCENARIOS)))
    print("nodes:      ", ", ".join(node_names()))
    for field, choices in _POLICY_CHOICES.items():
        print(f"{field + ':':12s}", ", ".join(choices))
    return 0


_COMMANDS = {
    "run": cmd_run,
    "experiment": cmd_experiment,
    "sweep": cmd_sweep,
    "obs": cmd_obs,
    "campaign": cmd_campaign,
    "dse": cmd_dse,
    "cache": cmd_cache,
    "verify": cmd_verify,
    "top": cmd_top,
    "serve": cmd_serve,
    "list": cmd_list,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Structured event journal for simulation runs.

A :class:`Journal` is an append-only sink of typed, timestamped records:
every *decision* the control planes make (test launched / deferred and
why, DVFS level changes with the PID state behind them, budget
violations, application lifecycle, core state transitions) can be
captured and replayed after the run, which is the per-decision evidence
thermal/power-aware test-scheduling papers report.

Design constraints (the no-op-sink invariant, see DESIGN.md):

* **Off by default and cheap.**  Instrumentation sites hold a journal
  reference that defaults to :data:`NULL_JOURNAL` (``enabled`` False) and
  guard payload construction with ``if journal.enabled:`` — a disabled
  journal costs one attribute read per site and allocates nothing.
* **Read-only.**  Emitting must never consume RNG, reorder simulator
  events or touch a float the model computes: enabling the journal on a
  seeded run reproduces the disabled run's results bit for bit (pinned by
  ``tests/test_obs.py`` and the perf-kernel bench).
* **Filterable.**  Events carry a severity level (``info`` for decisions,
  ``debug`` for high-rate state churn) and high-rate types can be
  decimated with ``sample_every``; a bounded journal drops the newest
  events past ``capacity`` and counts them in ``dropped``.

Events serialise to JSONL (one object per line) for archival and for the
``python -m repro obs`` summariser.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

#: Severity order; an event is kept when its level is at or above the
#: journal's threshold.
LEVELS = ("debug", "info")

#: Event types considered high-rate state churn rather than decisions:
#: recorded only at the ``debug`` level.  ``map.blocked`` fires once per
#: distinct blocked chip state while the queue head waits — an order of
#: magnitude more often than any decision event — and the admission
#: outcome it explains is already captured by ``app.map``'s ``waited_us``.
DEBUG_TYPES = frozenset({"core.transition", "map.blocked"})

#: Event types eligible for ``sample_every`` decimation (per-type).
SAMPLED_TYPES = frozenset({"core.transition", "map.blocked", "pid.step"})


@dataclass(frozen=True)
class JournalEvent:
    """One typed, timestamped journal record.

    ``time`` is simulation time (µs); ``type`` is a dotted event kind
    (``test.launch``, ``dvfs.change``, ...); ``data`` is a flat mapping of
    JSON-compatible payload fields.
    """

    time: float
    type: str
    data: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        """One-line JSON form (sorted keys) for JSONL streams."""
        return json.dumps(
            {"t": self.time, "type": self.type, **self.data}, sort_keys=True
        )

    @classmethod
    def from_json(cls, line: str) -> "JournalEvent":
        """Parse one JSONL line back into an event."""
        raw = json.loads(line)
        time = raw.pop("t")
        kind = raw.pop("type")
        return cls(time=float(time), type=str(kind), data=raw)


class Journal:
    """Append-only structured event sink with level/sampling filters."""

    def __init__(
        self,
        enabled: bool = True,
        level: str = "info",
        sample_every: int = 1,
        capacity: Optional[int] = None,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown journal level {level!r}; known: {LEVELS}")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.enabled = enabled
        self.level = level
        #: Precomputed ``enabled and level == "debug"`` so hot call sites
        #: can skip building debug-event payloads with one attribute read.
        self.debug = enabled and level == "debug"
        self.sample_every = sample_every
        self.capacity = capacity
        self.dropped = 0
        self._sample_counts: Dict[str, int] = {}
        # Hot path: emit() appends to three parallel lists instead of
        # building one record object per event.  This is deliberate GC
        # hygiene, not micro-optimisation: floats and strings are not
        # GC-tracked and an all-atomic ``**data`` dict is untracked at
        # creation, so a journal with tens of thousands of retained
        # events adds (almost) nothing to the collector's long-lived set
        # and does not provoke extra full collections mid-run.  The
        # JournalEvent objects the query API hands out are materialised
        # lazily and cached.
        self._times: List[float] = []
        self._kinds: List[str] = []
        self._datas: List[Dict[str, object]] = []
        self._materialised: Optional[List[JournalEvent]] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def emit(self, type: str, time: float, **data: object) -> None:
        """Append one event (subject to the level/sampling/capacity filters)."""
        if not self.enabled:
            return
        if type in DEBUG_TYPES and self.level != "debug":
            return
        if self.sample_every > 1 and type in SAMPLED_TYPES:
            seen = self._sample_counts.get(type, 0)
            self._sample_counts[type] = seen + 1
            if seen % self.sample_every:
                return
        if self.capacity is not None and len(self._kinds) >= self.capacity:
            self.dropped += 1
            return
        self._times.append(time)
        self._kinds.append(type)
        self._datas.append(data)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[JournalEvent]:
        """All recorded events, oldest first."""
        if self._materialised is None or len(self._materialised) != len(self._kinds):
            self._materialised = [
                JournalEvent(time=t, type=kind, data=data)
                for t, kind, data in zip(self._times, self._kinds, self._datas)
            ]
        return self._materialised

    def __len__(self) -> int:
        return len(self._kinds)

    def counts(self) -> Dict[str, int]:
        """Number of recorded events per type."""
        out: Dict[str, int] = {}
        for kind in self._kinds:
            out[kind] = out.get(kind, 0) + 1
        return out

    def filter(
        self,
        type_prefix: Optional[str] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        where: Optional[Callable[[JournalEvent], bool]] = None,
    ) -> List[JournalEvent]:
        """Events matching a type prefix / time window / predicate."""
        out = []
        for event in self.events:
            if type_prefix is not None and not event.type.startswith(type_prefix):
                continue
            if t0 is not None and event.time < t0:
                continue
            if t1 is not None and event.time > t1:
                continue
            if where is not None and not where(event):
                continue
            out.append(event)
        return out

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The journal as JSONL text, one event per line."""
        return "".join(event.to_json() + "\n" for event in self.events)

    def write_jsonl(self, path: str) -> None:
        """Write the journal to ``path`` as JSONL."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    @staticmethod
    def read_jsonl(source: str) -> List[JournalEvent]:
        """Parse JSONL text (not a path) back into events."""
        return [
            JournalEvent.from_json(line)
            for line in source.splitlines()
            if line.strip()
        ]

    @staticmethod
    def load_jsonl(path: str) -> List[JournalEvent]:
        """Read a journal back from a JSONL file."""
        with open(path, "r", encoding="utf-8") as handle:
            return Journal.read_jsonl(handle.read())


def events_of(journal_or_events: object) -> Iterable[JournalEvent]:
    """Accept either a :class:`Journal` or a plain event iterable."""
    if isinstance(journal_or_events, Journal):
        return journal_or_events.events
    return journal_or_events  # type: ignore[return-value]


#: The shared disabled sink every instrumentation site defaults to.
#: ``NULL_JOURNAL.emit`` returns immediately and records nothing.
NULL_JOURNAL = Journal(enabled=False)

"""Run provenance: manifests that make a result self-describing.

A :class:`RunManifest` is attached to every ``SimulationResult`` (and,
as a plain dict, to every ``ExperimentResult``) so any archived result
answers: which code version produced it, from which config and seed,
with which digest over the computed numbers, and where the wall time
went.  Manifests are plain picklable dataclasses because results cross
process boundaries in ``repro.experiments.run_many``.

This module must stay import-light: it is imported by ``repro.core``
machinery, so it cannot import ``repro`` (version) or ``repro.core``
(config) itself — callers pass the version string and a config dict
(``repro.core.config_io.config_to_dict``) in.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional


def digest_of(parts: Iterable[object]) -> str:
    """sha256 hex digest over ``repr`` of each part.

    ``repr`` of a float round-trips its bit pattern, so digests over
    result rows detect any numeric drift.  This is the same construction
    the perf-kernel benchmark uses for its ``rows_digest``.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
    return h.hexdigest()


def rows_digest(rows: Iterable[object]) -> str:
    """Digest over an iterable of result rows (dicts, tuples, ...)."""
    return digest_of(rows)


def config_digest(config: object) -> str:
    """Stable identity of a config dataclass (any one, by duck typing).

    Digest over the sorted ``dataclasses.asdict`` items, so two configs
    are identical iff every field (nested parameter blocks included)
    compares equal by ``repr``.  This is the point identity used by the
    campaign checkpoint store and by sweep failure attribution.
    """
    return digest_of(sorted(dataclasses.asdict(config).items()))


@dataclass
class RunManifest:
    """Provenance attached to a single simulation run."""

    version: str
    seed: int
    horizon_us: float
    config: Dict[str, object] = field(default_factory=dict)
    summary_digest: str = ""
    profile: Dict[str, Dict[str, float]] = field(default_factory=dict)
    journal_events: int = 0
    journal_dropped: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of the manifest."""
        return {
            "version": self.version,
            "seed": self.seed,
            "horizon_us": self.horizon_us,
            "config": self.config,
            "summary_digest": self.summary_digest,
            "profile": self.profile,
            "journal_events": self.journal_events,
            "journal_dropped": self.journal_dropped,
        }


def experiment_provenance(
    experiment_id: str,
    version: str,
    rows: Iterable[object],
    kwargs: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Provenance dict for an ``ExperimentResult``."""
    return {
        "experiment_id": experiment_id,
        "version": version,
        "kwargs": dict(kwargs or {}),
        "rows_digest": rows_digest(rows),
    }

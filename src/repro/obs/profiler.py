"""Phase profiler: wall-time and call counts per subsystem.

The profiler answers "where did the run's wall clock go" without a
sampling profiler: instrumentation sites wrap their work in a named
phase (``mapping``, ``pid.step``, ``test.schedule``, ``noc.transfer``,
``sim.dispatch``) and the profiler accumulates elapsed wall time and
call counts per name.

Phases may nest (the control-plane phases all run inside the simulator's
``sim.dispatch`` phase), so phase times overlap and do not sum to the
run's wall clock — the report is a per-subsystem cost map, not a
partition.

Like the journal, the profiler obeys the no-op-sink invariant: the
shared :data:`NULL_PROFILER` is disabled, ``phase()`` then returns a
stateless no-op context manager, and timing never starts.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict


class _NoopPhase:
    """Stateless, re-entrant context manager used when profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopPhase":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP_PHASE = _NoopPhase()


class PhaseAccumulator:
    """Mutable (calls, wall_s) cell for one phase.

    High-rate instrumentation sites fetch their accumulator once (via
    :meth:`PhaseProfiler.accumulator`) and then pay only two attribute
    increments per occurrence — no dict lookup, no context-manager
    allocation — which keeps the fully-enabled profiler within the
    overhead budget on million-event runs.
    """

    __slots__ = ("calls", "wall_s")

    def __init__(self) -> None:
        self.calls = 0
        self.wall_s = 0.0


class _Phase:
    """Times one ``with`` block and credits it to its accumulator."""

    __slots__ = ("_acc", "_t0")

    def __init__(self, acc: PhaseAccumulator) -> None:
        self._acc = acc

    def __enter__(self) -> "_Phase":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        acc = self._acc
        acc.calls += 1
        acc.wall_s += time.perf_counter() - self._t0


class PhaseProfiler:
    """Accumulates wall time and call counts per named phase."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._accs: Dict[str, PhaseAccumulator] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def accumulator(self, name: str) -> PhaseAccumulator:
        """The (shared, mutable) accumulator cell for phase ``name``."""
        acc = self._accs.get(name)
        if acc is None:
            acc = self._accs[name] = PhaseAccumulator()
        return acc

    def phase(self, name: str):
        """Context manager timing one occurrence of phase ``name``."""
        if not self.enabled:
            return _NOOP_PHASE
        return _Phase(self.accumulator(name))

    def add(self, name: str, wall_s: float, calls: int = 1) -> None:
        """Credit ``wall_s`` seconds (and ``calls`` invocations) to ``name``."""
        acc = self.accumulator(name)
        acc.calls += calls
        acc.wall_s += wall_s

    def reset(self) -> None:
        """Drop all recorded samples and counters."""
        self._accs.clear()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"calls": n, "wall_s": t}}``, sorted by wall time."""
        ordered = sorted(
            self._accs.items(), key=lambda item: item[1].wall_s, reverse=True
        )
        return {
            name: {"calls": float(acc.calls), "wall_s": acc.wall_s}
            for name, acc in ordered
        }

    def report(self) -> str:
        """Aligned text table of the summary (terminal output)."""
        from repro.metrics.report import format_table

        rows = [
            [name, int(stats["calls"]), stats["wall_s"] * 1e3]
            for name, stats in self.summary().items()
        ]
        if not rows:
            return "no phases recorded"
        return format_table(
            ["phase", "calls", "wall_ms"], rows, precision=3,
            title="phase profile",
        )


#: The shared disabled profiler instrumentation sites default to.
NULL_PROFILER = PhaseProfiler(enabled=False)


def profiled(name: str) -> Callable:
    """Decorator: time every call of the function as phase ``name``.

    The profiler is resolved at call time from the globally configured
    observability context (see :func:`repro.obs.configure`), so library
    code can be decorated unconditionally; with observability off the
    wrapper is a single flag check.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object):
            from repro.obs import active_profiler

            profiler = active_profiler()
            if not profiler.enabled:
                return fn(*args, **kwargs)
            with profiler.phase(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate

"""Decision-audit reports reconstructed from a run journal.

These helpers answer, *from the journal alone*, the questions the paper's
evaluation makes claims about:

* every test launch/deferral with its reason and the power headroom at
  decision time (``test_decisions`` / ``deferral_reasons``);
* per-core test intervals — when each core's tests completed and the
  gaps between them (``core_test_intervals`` / ``core_test_gaps``);
* the set of V/F levels each core was tested at, i.e. the TC'16
  "all levels covered" claim (``vf_coverage`` / ``all_levels_covered``).

All functions accept either a :class:`~repro.obs.journal.Journal` or a
plain iterable of :class:`~repro.obs.journal.JournalEvent` (e.g. the
output of ``Journal.load_jsonl``), so reports work identically on live
runs and archived JSONL files.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.journal import JournalEvent, events_of


def test_decisions(journal) -> List[Dict[str, object]]:
    """Chronological launch/defer decisions of the test scheduler."""
    out: List[Dict[str, object]] = []
    for event in events_of(journal):
        if event.type == "test.launch":
            out.append(
                {
                    "time": event.time,
                    "action": "launch",
                    "core": event.data.get("core"),
                    "level": event.data.get("level"),
                    "headroom_w": event.data.get("headroom_w"),
                    "criticality": event.data.get("criticality"),
                    "reason": "downgraded" if event.data.get("downgraded") else "fits",
                }
            )
        elif event.type == "test.defer":
            out.append(
                {
                    "time": event.time,
                    "action": "defer",
                    "core": event.data.get("core"),
                    "level": None,
                    "headroom_w": event.data.get("headroom_w"),
                    "criticality": event.data.get("criticality"),
                    "reason": event.data.get("reason"),
                }
            )
    return out


def deferral_reasons(journal) -> Dict[str, int]:
    """How often each deferral reason occurred."""
    out: Dict[str, int] = {}
    for event in events_of(journal):
        if event.type == "test.defer":
            reason = str(event.data.get("reason"))
            out[reason] = out.get(reason, 0) + 1
    return out


def core_test_intervals(journal) -> Dict[int, List[float]]:
    """Completion times of every finished test, per core."""
    out: Dict[int, List[float]] = {}
    for event in events_of(journal):
        if event.type == "test.complete":
            core = int(event.data["core"])
            out.setdefault(core, []).append(event.time)
    return out


def core_test_gaps(journal) -> Dict[int, List[float]]:
    """Gaps (µs) between successive completed tests, per core.

    The first gap is measured from t=0 (cores start never-tested), which
    matches ``TestStats.test_gaps_us`` accounting.
    """
    gaps: Dict[int, List[float]] = {}
    for core, times in core_test_intervals(journal).items():
        previous = 0.0
        out = []
        for t in times:
            out.append(t - previous)
            previous = t
        gaps[core] = out
    return gaps


def vf_coverage(journal) -> Dict[int, List[int]]:
    """Sorted V/F level indexes each core completed a test at."""
    seen: Dict[int, set] = {}
    for event in events_of(journal):
        if event.type == "test.complete":
            core = int(event.data["core"])
            seen.setdefault(core, set()).add(int(event.data["level"]))
    return {core: sorted(levels) for core, levels in seen.items()}


def all_levels_covered(journal, n_levels: int) -> bool:
    """True iff every core that was tested covered all ``n_levels`` levels."""
    coverage = vf_coverage(journal)
    if not coverage:
        return False
    return all(len(levels) == n_levels for levels in coverage.values())


def dvfs_changes(journal) -> Dict[int, int]:
    """Number of DVFS level changes applied, per core."""
    out: Dict[int, int] = {}
    for event in events_of(journal):
        if event.type == "dvfs.change":
            core = int(event.data["core"])
            out[core] = out.get(core, 0) + 1
    return out


def summarize(journal) -> Dict[str, object]:
    """Flat roll-up of a journal: spans, decision counts, coverage."""
    events = list(events_of(journal))
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.type] = counts.get(event.type, 0) + 1
    intervals = core_test_intervals(events)
    coverage = vf_coverage(events)
    return {
        "events": len(events),
        "t_first": events[0].time if events else 0.0,
        "t_last": events[-1].time if events else 0.0,
        "counts": counts,
        "test_launches": counts.get("test.launch", 0),
        "test_deferrals": counts.get("test.defer", 0),
        "deferral_reasons": deferral_reasons(events),
        "tests_completed": counts.get("test.complete", 0),
        "tests_aborted": counts.get("test.abort", 0),
        "cores_tested": len(intervals),
        "levels_covered": sorted(
            {level for levels in coverage.values() for level in levels}
        ),
        "budget_violations": counts.get("budget.violation", 0),
        "dvfs_changes": counts.get("dvfs.change", 0),
        "verify_violations": counts.get("verify.violation", 0),
        "verify_ticks": counts.get("verify.power", 0),
    }


def format_summary(journal, n_levels: Optional[int] = None) -> str:
    """Render the roll-up plus per-core tables for terminal output."""
    from repro.metrics.report import format_table

    events = list(events_of(journal))
    roll = summarize(events)
    parts = [
        format_table(
            ["event_type", "count"],
            sorted(roll["counts"].items()),
            title=(
                f"journal: {roll['events']} events over "
                f"[{roll['t_first']:g}, {roll['t_last']:g}] us"
            ),
        )
    ]
    if roll["test_deferrals"]:
        parts.append(
            format_table(
                ["deferral_reason", "count"],
                sorted(roll["deferral_reasons"].items()),
            )
        )
    if roll["verify_violations"]:
        parts.append(
            f"VERIFY: {roll['verify_violations']} invariant violation(s) "
            "recorded (filter with --type verify.)"
        )
    intervals = core_test_intervals(events)
    if intervals:
        coverage = vf_coverage(events)
        gaps = core_test_gaps(events)
        rows = []
        for core in sorted(intervals):
            core_gaps = gaps[core]
            rows.append(
                [
                    core,
                    len(intervals[core]),
                    sum(core_gaps) / len(core_gaps),
                    max(core_gaps),
                    ",".join(str(level) for level in coverage.get(core, [])),
                ]
            )
        parts.append(
            format_table(
                ["core", "tests", "mean_gap_us", "max_gap_us", "levels_tested"],
                rows,
            )
        )
        if n_levels is not None:
            parts.append(
                f"all {n_levels} V/F levels covered on every tested core: "
                f"{all_levels_covered(events, n_levels)}"
            )
    return "\n\n".join(parts)

"""Structured run observability: journal, audit, profiler, provenance.

The subsystem is off by default and obeys the no-op-sink invariant:
instrumentation sites default to the disabled :data:`NULL_JOURNAL` /
:data:`NULL_PROFILER` singletons and cost one attribute read when
observability is off.  Enabling it must never change what a run
computes — journaling and profiling are strictly read-only.

Two ways to turn it on:

* pass ``journal=`` / ``profiler=`` explicitly to ``ManycoreSystem`` /
  ``run_system`` (preferred; no global state), or
* install process-wide defaults with :func:`configure` — used by the CLI
  flags (``--journal``, ``--profile``) and the ``@profiled`` decorator.

Note the globals do not propagate to ``run_many`` worker processes;
journaled runs should use the serial path (``jobs=1``).
"""

from __future__ import annotations

from typing import Optional

from repro.obs import audit
from repro.obs.journal import (
    DEBUG_TYPES,
    LEVELS,
    NULL_JOURNAL,
    SAMPLED_TYPES,
    Journal,
    JournalEvent,
    events_of,
)
from repro.obs.profiler import NULL_PROFILER, PhaseProfiler, profiled
from repro.obs.provenance import (
    RunManifest,
    config_digest,
    digest_of,
    experiment_provenance,
    rows_digest,
)

__all__ = [
    "DEBUG_TYPES",
    "LEVELS",
    "NULL_JOURNAL",
    "NULL_PROFILER",
    "SAMPLED_TYPES",
    "Journal",
    "JournalEvent",
    "PhaseProfiler",
    "RunManifest",
    "active_journal",
    "active_profiler",
    "audit",
    "config_digest",
    "configure",
    "digest_of",
    "events_of",
    "experiment_provenance",
    "profiled",
    "rows_digest",
]

_active_journal: Journal = NULL_JOURNAL
_active_profiler: PhaseProfiler = NULL_PROFILER


def configure(
    journal: Optional[Journal] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> None:
    """Install process-wide default sinks (``None`` resets to disabled)."""
    global _active_journal, _active_profiler
    _active_journal = journal if journal is not None else NULL_JOURNAL
    _active_profiler = profiler if profiler is not None else NULL_PROFILER


def active_journal() -> Journal:
    """The process-wide default journal (NULL_JOURNAL unless configured)."""
    return _active_journal


def active_profiler() -> PhaseProfiler:
    """The process-wide default profiler (NULL_PROFILER unless configured)."""
    return _active_profiler

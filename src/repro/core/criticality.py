"""Test-criticality metric (the paper's core selection heuristic).

The scheduler must decide *which* idle cores deserve the scarce power
budget.  The paper derives a per-core **test criticality** from the aging
model: a core becomes more urgent to test the more wear-out stress it has
accumulated since its last test, with a secondary time term so that even a
mostly-idle core is eventually re-screened (faults are not exclusively
stress-induced).

``criticality(core, now) = w_s · stress_since_test / S_ref
                         + w_t · (now − last_test_end) / T_ref``

A core is *due* when its criticality crosses ``threshold``; candidates are
served most-critical-first.  ``S_ref`` / ``T_ref`` normalise the two terms:
with default aging parameters a core that has been ~100% busy at nominal
V/F for ``T_ref`` µs scores ≈ ``w_s + w_t`` (well past threshold), while a
core idle since its last test needs ``T_ref / w_t`` µs to become due —
i.e. stressed cores are re-tested several times more often than cold ones,
which is the adaptivity experiment E4 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.platform.core import Core


@dataclass(frozen=True)
class CriticalityParameters:
    """Weights and normalisation of the criticality metric."""

    stress_weight: float = 0.6
    time_weight: float = 0.4
    stress_reference: float = 4.0      # stress units for one criticality unit
    time_reference_us: float = 3000.0  # µs since last test for one unit
    threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.stress_weight < 0 or self.time_weight < 0:
            raise ValueError("weights must be non-negative")
        if self.stress_weight + self.time_weight <= 0:
            raise ValueError("at least one weight must be positive")
        if self.stress_reference <= 0 or self.time_reference_us <= 0:
            raise ValueError("references must be positive")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


class TestCriticality:
    """Evaluates and ranks per-core test criticality."""

    def __init__(self, params: CriticalityParameters = CriticalityParameters()) -> None:
        self.params = params

    def value(self, core: Core, now: float) -> float:
        """Criticality of ``core`` at time ``now`` (0 right after a test)."""
        p = self.params
        stress_term = core.stress_since_test / p.stress_reference
        elapsed = max(0.0, now - core.last_test_end)
        time_term = elapsed / p.time_reference_us
        return p.stress_weight * stress_term + p.time_weight * time_term

    def is_due(self, core: Core, now: float) -> bool:
        return self.value(core, now) >= self.params.threshold

    def rank(self, cores: Iterable[Core], now: float) -> List[Core]:
        """Cores sorted most-critical-first (core id as the tie-break)."""
        return sorted(
            cores, key=lambda c: (-self.value(c, now), c.core_id)
        )

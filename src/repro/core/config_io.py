"""SystemConfig serialisation (JSON round-trip).

Experiment configurations are plain nested dataclasses; this module turns
them into JSON-compatible dictionaries and back, so runs can be archived,
diffed and replayed exactly:

>>> from repro.core.system import SystemConfig
>>> from repro.core.config_io import config_to_dict, config_from_dict
>>> cfg = SystemConfig(seed=42)
>>> config_from_dict(config_to_dict(cfg)) == cfg
True

Unknown keys in the input are rejected (a typo silently ignored is a
mis-run silently produced), and nested parameter blocks are rebuilt into
their proper dataclass types so validation in ``__post_init__`` re-runs.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.aging.model import AgingParameters
from repro.core.criticality import CriticalityParameters
from repro.core.system import SystemConfig
from repro.platform.thermal import ThermalParameters
from repro.platform.variation import VariationParameters

#: Nested dataclass fields of SystemConfig and their types.
_NESTED = {
    "criticality": CriticalityParameters,
    "aging": AgingParameters,
    "thermal": ThermalParameters,
    "variation": VariationParameters,
}
#: Tuple-typed fields (JSON arrays come back as lists).
_TUPLES = ("profile_names", "profile_weights", "type_grid")


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Flatten a :class:`SystemConfig` into a JSON-compatible dict."""
    return dataclasses.asdict(config)


def config_from_dict(data: Dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict` output."""
    known = {f.name for f in dataclasses.fields(SystemConfig)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown config keys: {sorted(unknown)}")
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key in _NESTED and isinstance(value, dict):
            kwargs[key] = _NESTED[key](**value)
        elif key in _TUPLES and isinstance(value, list):
            kwargs[key] = tuple(value)
        else:
            kwargs[key] = value
    return SystemConfig(**kwargs)


def config_to_json(config: SystemConfig, indent: int = 2) -> str:
    return json.dumps(config_to_dict(config), indent=indent, sort_keys=True)


def config_from_json(text: str) -> SystemConfig:
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError("config JSON must be an object")
    return config_from_dict(data)


def save_config(config: SystemConfig, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(config_to_json(config))
        handle.write("\n")


def load_config(path: str) -> SystemConfig:
    with open(path, "r", encoding="utf-8") as handle:
        return config_from_json(handle.read())

"""The paper's contribution: criticality metric, power-aware test
scheduler, test-aware mapper, execution engine and the integrated system."""

from repro.core.criticality import CriticalityParameters, TestCriticality
from repro.core.executor import ExecutionEngine, TaskExecution
from repro.core.mapping import TestAwareUtilizationMapper
from repro.core.scheduler import PowerAwareTestScheduler
from repro.core.system import (
    ManycoreSystem,
    SimulationResult,
    SystemConfig,
    run_system,
)

__all__ = [
    "CriticalityParameters",
    "ExecutionEngine",
    "ManycoreSystem",
    "PowerAwareTestScheduler",
    "SimulationResult",
    "SystemConfig",
    "TaskExecution",
    "TestAwareUtilizationMapper",
    "TestCriticality",
    "run_system",
]

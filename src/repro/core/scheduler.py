"""The proposed power-aware online test scheduler (DATE'15, Sec. "method").

Per control epoch the scheduler:

1. computes the chip's current power headroom under the guarded TDP cap
   (the "temporarily available power budget" of the abstract);
2. collects the idle, unowned cores whose test criticality crossed the
   threshold and ranks them most-critical-first;
3. admits test sessions while they fit in the headroom.  The V/F level of
   each session is the core's least-recently-tested level (rotating corner
   coverage, the TC'16 extension); when the preferred level's power does
   not fit, the scheduler *downgrades* the session towards near-threshold
   levels — a cheap test now beats no test — and skips the core only when
   even the cheapest level does not fit;
4. on a budget emergency (measured power above the hard cap, e.g. because
   a workload burst landed right after tests were admitted) it aborts
   running sessions, youngest first, until the chip fits again.  Workload
   is never throttled on behalf of testing — that is the non-intrusiveness
   property that keeps the throughput penalty under 1%.

The scheduler also caps concurrent sessions (``max_concurrent``) so the
test campaign cannot monopolise the chip even under very light load.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.criticality import CriticalityParameters, TestCriticality
from repro.platform.chip import Chip
from repro.platform.core import Core
from repro.platform.dvfs import VFLevel
from repro.power.budget import PowerBudget
from repro.power.meter import PowerMeter
from repro.testing.runner import TestRunner
from repro.testing.schedulers import TestSchedulerBase


class PowerAwareTestScheduler(TestSchedulerBase):
    """Criticality-ranked, budget-honouring, non-intrusive test scheduling."""

    name = "power-aware"
    preemptable = True

    def __init__(
        self,
        chip: Chip,
        runner: TestRunner,
        meter: PowerMeter,
        budget: PowerBudget,
        criticality: Optional[TestCriticality] = None,
        min_interval_us: float = 2000.0,
        level_policy: str = "rotate",
        max_concurrent: int = 8,
        reserve_w: float = 0.0,
    ) -> None:
        super().__init__(chip, runner, min_interval_us, level_policy)
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if reserve_w < 0:
            raise ValueError("reserve_w must be non-negative")
        self.meter = meter
        self.budget = budget
        self.criticality = criticality or TestCriticality(CriticalityParameters())
        self.max_concurrent = max_concurrent
        self.reserve_w = reserve_w
        self.skipped_no_budget = 0
        self.downgraded_levels = 0
        self.emergency_aborts = 0
        #: One-shot measured-power injection for drivers that already read
        #: the meter this epoch (the lockstep batch runner): consumed and
        #: cleared by the next :meth:`tick`, which otherwise reads the
        #: meter itself.  ``None`` means "read the meter" (the default).
        self.measured_override: Optional[float] = None

    # ------------------------------------------------------------------
    # Candidate selection
    # ------------------------------------------------------------------
    def candidates(self, now: float) -> List[Core]:
        """Due cores (criticality over threshold), most critical first."""
        due = [
            core
            for core in self.chip.idle_cores()
            if core.owner_app is None
            and now - core.last_test_end >= self.min_interval_us
            and self.criticality.is_due(core, now)
        ]
        return self.criticality.rank(due, now)

    def _fitting_level(self, core: Core, now: float, headroom: float) -> Optional[VFLevel]:
        """Pure downgrade walk: preferred level, lowered until it fits.

        Mutates nothing — shared by the admitting path (which counts
        downgrades) and the read-only audit path (:meth:`explain`).
        """
        index = self.pick_level(core, now).index
        while index >= 0:
            level = self.chip.vf_table[index]
            if self.session_cost(core, level) <= headroom:
                return level
            index -= 1
        return None

    def affordable_level(self, core: Core, now: float, headroom: float) -> Optional[VFLevel]:
        """Preferred level, downgraded until its session power fits."""
        level = self._fitting_level(core, now, headroom)
        if level is not None and level.index != self.pick_level(core, now).index:
            self.downgraded_levels += 1
        return level

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def tick(self, now: float, dt: float) -> None:
        journal = self.journal
        tm = self.telemetry
        override = self.measured_override
        self.measured_override = None
        measured = self.meter.chip_power() if override is None else override
        if measured > self.budget.cap:
            aborted = self._emergency(measured)
            tm.counter("test.emergency").inc()
            if journal.enabled:
                journal.emit(
                    "test.emergency",
                    now,
                    measured_w=measured,
                    cap_w=self.budget.cap,
                    aborted=aborted,
                )
            return
        headroom = self.budget.guarded_cap - measured - self.reserve_w
        slots = self.max_concurrent - len(self.runner.active_sessions())
        if headroom <= 0 or slots <= 0:
            if journal.enabled or tm.enabled:
                # Every due core is deferred this epoch; ``candidates`` is
                # read-only, so the observe-only ranking changes nothing.
                reason = "no-headroom" if headroom <= 0 else "max-concurrent"
                deferred = self.candidates(now)
                if deferred:
                    tm.counter("test.defer." + reason).inc(len(deferred))
                if journal.enabled:
                    for core in deferred:
                        journal.emit(
                            "test.defer",
                            now,
                            core=core.core_id,
                            reason=reason,
                            headroom_w=headroom,
                            criticality=self.criticality.value(core, now),
                        )
            return
        ranked = self.candidates(now)
        for position, core in enumerate(ranked):
            if slots <= 0 or headroom <= 0:
                reason = "max-concurrent" if slots <= 0 else "no-headroom"
                tm.counter("test.defer." + reason).inc(len(ranked) - position)
                if journal.enabled:
                    for waiting in ranked[position:]:
                        journal.emit(
                            "test.defer",
                            now,
                            core=waiting.core_id,
                            reason=reason,
                            headroom_w=headroom,
                            criticality=self.criticality.value(waiting, now),
                        )
                break
            level = self.affordable_level(core, now, headroom)
            if level is None:
                self.skipped_no_budget += 1
                tm.counter("test.defer.no-level-fits").inc()
                if journal.enabled:
                    journal.emit(
                        "test.defer",
                        now,
                        core=core.core_id,
                        reason="no-level-fits",
                        headroom_w=headroom,
                        criticality=self.criticality.value(core, now),
                    )
                continue
            cost = self.session_cost(core, level)
            if journal.enabled or tm.enabled:
                downgraded = level.index != self.pick_level(core, now).index
                tm.counter("test.launch").inc()
                if downgraded:
                    tm.counter("test.launch.downgraded").inc()
                if journal.enabled:
                    journal.emit(
                        "test.launch",
                        now,
                        core=core.core_id,
                        level=level.index,
                        headroom_w=headroom,
                        cost_w=cost,
                        criticality=self.criticality.value(core, now),
                        downgraded=downgraded,
                    )
            self.runner.start(core, level)
            headroom -= cost
            slots -= 1

    def explain(self, now: float) -> Dict[str, object]:
        """Read-only decision audit: what :meth:`tick` would do right now.

        Replays the admission walk (headroom check, criticality ranking,
        level downgrade) against the live chip without starting or aborting
        anything and without touching the scheduler's counters — safe to
        call between ticks, from tests, or from a debugger.
        """
        measured = self.meter.chip_power()
        headroom = self.budget.guarded_cap - measured - self.reserve_w
        slots = self.max_concurrent - len(self.runner.active_sessions())
        report: Dict[str, object] = {
            "time": now,
            "measured_w": measured,
            "cap_w": self.budget.cap,
            "guarded_cap_w": self.budget.guarded_cap,
            "emergency": measured > self.budget.cap,
            "headroom_w": headroom,
            "slots": slots,
            "decisions": [],
        }
        if report["emergency"]:
            return report
        decisions: List[Dict[str, object]] = report["decisions"]  # type: ignore[assignment]
        for core in self.candidates(now):
            entry: Dict[str, object] = {
                "core": core.core_id,
                "criticality": self.criticality.value(core, now),
                "headroom_w": headroom,
            }
            if slots <= 0:
                entry.update(action="defer", reason="max-concurrent")
            elif headroom <= 0:
                entry.update(action="defer", reason="no-headroom")
            else:
                level = self._fitting_level(core, now, headroom)
                if level is None:
                    entry.update(action="defer", reason="no-level-fits")
                else:
                    preferred = self.pick_level(core, now)
                    cost = self.session_cost(core, level)
                    entry.update(
                        action="launch",
                        level=level.index,
                        cost_w=cost,
                        downgraded=level.index != preferred.index,
                    )
                    headroom -= cost
                    slots -= 1
            decisions.append(entry)
        return report

    def _emergency(self, measured: float) -> int:
        """Abort sessions, youngest first, until back under the hard cap.

        Returns the number of sessions aborted.
        """
        sessions = sorted(
            self.runner.active_sessions(),
            key=lambda s: s.started_at,
            reverse=True,
        )
        aborted = 0
        for session in sessions:
            if measured <= self.budget.cap:
                break
            cost = self.session_cost(session.core, session.level)
            self.runner.abort(session.core)
            self.emergency_aborts += 1
            aborted += 1
            measured -= cost
        return aborted

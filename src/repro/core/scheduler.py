"""The proposed power-aware online test scheduler (DATE'15, Sec. "method").

Per control epoch the scheduler:

1. computes the chip's current power headroom under the guarded TDP cap
   (the "temporarily available power budget" of the abstract);
2. collects the idle, unowned cores whose test criticality crossed the
   threshold and ranks them most-critical-first;
3. admits test sessions while they fit in the headroom.  The V/F level of
   each session is the core's least-recently-tested level (rotating corner
   coverage, the TC'16 extension); when the preferred level's power does
   not fit, the scheduler *downgrades* the session towards near-threshold
   levels — a cheap test now beats no test — and skips the core only when
   even the cheapest level does not fit;
4. on a budget emergency (measured power above the hard cap, e.g. because
   a workload burst landed right after tests were admitted) it aborts
   running sessions, youngest first, until the chip fits again.  Workload
   is never throttled on behalf of testing — that is the non-intrusiveness
   property that keeps the throughput penalty under 1%.

The scheduler also caps concurrent sessions (``max_concurrent``) so the
test campaign cannot monopolise the chip even under very light load.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.criticality import CriticalityParameters, TestCriticality
from repro.platform.chip import Chip
from repro.platform.core import Core
from repro.platform.dvfs import VFLevel
from repro.power.budget import PowerBudget
from repro.power.meter import PowerMeter
from repro.testing.runner import TestRunner
from repro.testing.schedulers import TestSchedulerBase


class PowerAwareTestScheduler(TestSchedulerBase):
    """Criticality-ranked, budget-honouring, non-intrusive test scheduling."""

    name = "power-aware"
    preemptable = True

    def __init__(
        self,
        chip: Chip,
        runner: TestRunner,
        meter: PowerMeter,
        budget: PowerBudget,
        criticality: Optional[TestCriticality] = None,
        min_interval_us: float = 2000.0,
        level_policy: str = "rotate",
        max_concurrent: int = 8,
        reserve_w: float = 0.0,
    ) -> None:
        super().__init__(chip, runner, min_interval_us, level_policy)
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if reserve_w < 0:
            raise ValueError("reserve_w must be non-negative")
        self.meter = meter
        self.budget = budget
        self.criticality = criticality or TestCriticality(CriticalityParameters())
        self.max_concurrent = max_concurrent
        self.reserve_w = reserve_w
        self.skipped_no_budget = 0
        self.downgraded_levels = 0
        self.emergency_aborts = 0

    # ------------------------------------------------------------------
    # Candidate selection
    # ------------------------------------------------------------------
    def candidates(self, now: float) -> List[Core]:
        """Due cores (criticality over threshold), most critical first."""
        due = [
            core
            for core in self.chip.idle_cores()
            if core.owner_app is None
            and now - core.last_test_end >= self.min_interval_us
            and self.criticality.is_due(core, now)
        ]
        return self.criticality.rank(due, now)

    def affordable_level(self, core: Core, now: float, headroom: float) -> Optional[VFLevel]:
        """Preferred level, downgraded until its session power fits."""
        preferred = self.pick_level(core, now)
        index = preferred.index
        while index >= 0:
            level = self.chip.vf_table[index]
            if self.runner.estimated_power(level) <= headroom:
                if index != preferred.index:
                    self.downgraded_levels += 1
                return level
            index -= 1
        return None

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def tick(self, now: float, dt: float) -> None:
        measured = self.meter.chip_power()
        if measured > self.budget.cap:
            self._emergency(measured)
            return
        headroom = self.budget.guarded_cap - measured - self.reserve_w
        if headroom <= 0:
            return
        slots = self.max_concurrent - len(self.runner.active_sessions())
        if slots <= 0:
            return
        for core in self.candidates(now):
            if slots <= 0 or headroom <= 0:
                break
            level = self.affordable_level(core, now, headroom)
            if level is None:
                self.skipped_no_budget += 1
                continue
            cost = self.runner.estimated_power(level)
            self.runner.start(core, level)
            headroom -= cost
            slots -= 1

    def _emergency(self, measured: float) -> None:
        """Abort sessions, youngest first, until back under the hard cap."""
        sessions = sorted(
            self.runner.active_sessions(),
            key=lambda s: s.started_at,
            reverse=True,
        )
        for session in sessions:
            if measured <= self.budget.cap:
                break
            cost = self.runner.estimated_power(session.level)
            self.runner.abort(session.core)
            self.emergency_aborts += 1
            measured -= cost

"""The proposed test-aware utilization-oriented runtime mapper (DATE'15).

The baseline contiguous mapper optimises communication locality only.  The
paper's mapper keeps the contiguity machinery but biases *which* cores a
new application occupies with two policy terms:

* **utilization orientation** — prefer cores with low recent utilization,
  spreading stress across the die (cooler, slower-aging chip) and keeping
  chronically busy cores from never seeing an idle period;
* **test awareness** — avoid cores whose test criticality is high (they
  are about to be tested; occupying them would either delay the test or
  force an abort) and avoid cores currently running a test session.

Both terms enter the shared placement cost in "hop-equivalents", so the
weights directly trade communication hops against stress/test pressure.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.criticality import TestCriticality
from repro.mapping.base import (
    MappingContext,
    RuntimeMapper,
    assign_tasks_near,
    pick_first_node,
)
from repro.platform.core import Core
from repro.workload.application import ApplicationInstance


class TestAwareUtilizationMapper(RuntimeMapper):
    """Contiguous mapping biased by utilization and test criticality."""

    name = "test-aware"

    def __init__(
        self,
        criticality: TestCriticality,
        utilization_weight: float = 2.0,
        criticality_weight: float = 2.0,
        testing_penalty: float = 6.0,
        utilization_window_us: float = 2000.0,
        type_weight: float = 1.0,
    ) -> None:
        if utilization_weight < 0 or criticality_weight < 0 or testing_penalty < 0:
            raise ValueError("weights must be non-negative")
        if type_weight < 0:
            raise ValueError("weights must be non-negative")
        if utilization_window_us <= 0:
            raise ValueError("utilization window must be positive")
        self.criticality = criticality
        self.utilization_weight = utilization_weight
        self.criticality_weight = criticality_weight
        self.testing_penalty = testing_penalty
        self.utilization_window_us = utilization_window_us
        self.type_weight = type_weight

    # ------------------------------------------------------------------
    def core_cost(self, now: float, core: Core) -> float:
        """Policy cost of occupying ``core`` (hop-equivalents)."""
        cost = self.utilization_weight * core.utilization(
            now, self.utilization_window_us
        )
        cost += self.criticality_weight * min(
            2.0, self.criticality.value(core, now)
        )
        if core.is_testing():
            cost += self.testing_penalty
        # Heterogeneity: hot tile types cost extra.  The bias is exactly
        # 0.0 for std tiles and added only when nonzero, so homogeneous
        # placement costs keep their pre-heterogeneity bits.
        bias = self.type_bias(core)
        if bias != 0.0:
            cost += self.type_weight * bias
        return cost

    def map_application(
        self, app: ApplicationInstance, ctx: MappingContext
    ) -> Optional[Dict[int, int]]:
        if app.graph.n_tasks > len(ctx.available):
            return None
        first = pick_first_node(ctx, app.graph.n_tasks, extra_cost=self.core_cost)
        if first is None:
            return None
        return assign_tasks_near(app, ctx, first, extra_cost=self.core_cost)

"""The integrated power-aware online-testing manycore system.

:class:`ManycoreSystem` wires every substrate together on the DES kernel:

* a mesh :class:`~repro.platform.chip.Chip` at a technology node with TDP;
* the :class:`~repro.core.executor.ExecutionEngine` running task graphs;
* a power manager (PID budgeting by default — the ICCD'14 substrate);
* a runtime mapper (the proposed test-aware mapper or a baseline);
* a test scheduler (the proposed power-aware scheduler or a baseline);
* aging accrual and optional fault injection;
* a metrics collector sampling every control epoch.

The control loop runs every ``epoch_us``: fault injection → power manager →
test scheduler → mapping attempt → metric sampling.  Arrivals and core
releases additionally trigger mapping attempts immediately, so mapping
latency is not quantised to the epoch.

:func:`build_system`/:meth:`ManycoreSystem.run` is the public entry point
used by the examples and every experiment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field
from time import perf_counter as _perf_counter
from typing import Deque, Dict, List, Optional, Tuple

from repro.aging.faults import FaultInjector, FaultParameters, FaultRecord
from repro.aging.model import AgingModel, AgingParameters
from repro.core.criticality import CriticalityParameters, TestCriticality
from repro.core.executor import ExecutionEngine
from repro.core.mapping import TestAwareUtilizationMapper
from repro.core.scheduler import PowerAwareTestScheduler
from repro.mapping.base import MappingContext, RuntimeMapper
from repro.mapping.baselines import ContiguousMapper, RandomFreeMapper, ScatterMapper
from repro.mapping.mappro import MapProMapper
from repro.metrics.collectors import MetricsCollector
from repro.noc.model import NocModel, NocParameters
from repro.obs import active_journal, active_profiler
from repro.obs.journal import Journal
from repro.obs.profiler import PhaseProfiler
from repro.obs.provenance import RunManifest, digest_of
from repro.telemetry import active_telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.noc.queued import QueuedNocModel
from repro.noc.topology import Mesh
from repro.platform.chip import Chip
from repro.platform.core import CoreState
from repro.platform.thermal import ThermalModel, ThermalParameters
from repro.platform.variation import VariationModel, VariationParameters
from repro.power.budget import PowerBudget
from repro.power.manager import PowerManager, make_power_manager
from repro.power.meter import PowerMeter
from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_CONTROL
from repro.sim.rng import StreamRegistry
from repro.testing.runner import TestRunner, TestStats
from repro.testing.sbst import SBSTLibrary, default_library
from repro.testing.schedulers import (
    NoTestScheduler,
    PowerUnawareTestScheduler,
    RoundRobinTestScheduler,
    TestSchedulerBase,
)
from repro.workload.application import ApplicationInstance
from repro.workload.arrivals import (
    Arrival,
    BurstyArrivalProcess,
    PoissonArrivalProcess,
)
from repro.workload.generator import PROFILE_PRESETS, ApplicationProfile


@dataclass(frozen=True)
class SystemConfig:
    """Everything that defines one simulation run."""

    # Platform
    width: int = 8
    height: int = 8
    node_name: str = "16nm"
    tdp_w: float = 80.0
    n_vf_levels: int = 8
    guard_fraction: float = 0.02
    #: Per-tile core-type names, row-major.  Empty means homogeneous
    #: ``std`` (the degenerate pre-heterogeneity platform); one entry
    #: means a homogeneous grid of that type; otherwise exactly
    #: ``width * height`` entries.
    type_grid: Tuple[str, ...] = ()
    #: Technology-model registry name (``cmos`` baseline or ``ntv``).
    tech_model: str = "cmos"
    # Control
    epoch_us: float = 100.0
    dvfs_transition_us: float = 0.0
    noc_mode: str = "analytic"          # analytic | queued
    horizon_us: float = 100_000.0
    seed: int = 1
    # Workload
    arrival_rate_per_ms: float = 6.0
    profile_names: Tuple[str, ...] = ("small", "medium", "large")
    profile_weights: Tuple[float, ...] = (0.40, 0.45, 0.15)
    bursty: bool = False
    # Policies
    mapper: str = "contiguous"          # contiguous | scatter | random | mappro | test-aware
    #: Mixed-criticality scheduling (ICCD'14): serve the queue in
    #: real-time-class priority order and bias DVFS towards RT cores.
    rt_priorities: bool = False
    power_policy: str = "pid"           # pid | tsp | naive | worst-case | none
    test_policy: str = "power-aware"    # power-aware | none | unaware | round-robin
    test_preemption: str = "auto"       # auto | abort | reserve
    # Testing knobs
    min_test_interval_us: float = 2500.0
    test_level_policy: str = "rotate"   # rotate | nominal
    max_concurrent_tests: int = 8
    sbst_scale: float = 1.0
    #: Resume aborted SBST sessions from a checkpoint (same core + level)
    #: instead of restarting the suite from scratch.
    test_checkpointing: bool = False
    criticality: CriticalityParameters = field(default_factory=CriticalityParameters)
    # Mapper knobs (test-aware)
    utilization_weight: float = 2.0
    criticality_weight: float = 2.0
    utilization_window_us: float = 2000.0
    # Reliability knobs
    aging: AgingParameters = field(default_factory=AgingParameters)
    fault_hazard_per_us: float = 0.0
    fault_stress_scale: float = 50.0
    # Platform realism knobs (off by default: the baseline evaluation)
    thermal_enabled: bool = False
    thermal: ThermalParameters = field(default_factory=ThermalParameters)
    thermal_test_margin_c: float = 5.0
    variation_enabled: bool = False
    variation: VariationParameters = field(default_factory=VariationParameters)

    def __post_init__(self) -> None:
        if self.epoch_us <= 0 or self.horizon_us <= 0:
            raise ValueError("epoch and horizon must be positive")
        if len(self.profile_names) != len(self.profile_weights):
            raise ValueError("profile names and weights must align")
        if self.test_preemption not in ("auto", "abort", "reserve"):
            raise ValueError(f"unknown preemption policy {self.test_preemption!r}")
        n_cores = self.width * self.height
        if len(self.type_grid) not in (0, 1, n_cores):
            raise ValueError(
                f"type_grid must have 0, 1 or {n_cores} entries for a "
                f"{self.width}x{self.height} mesh, got {len(self.type_grid)}"
            )

    def profiles(self) -> List[ApplicationProfile]:
        return [PROFILE_PRESETS[name] for name in self.profile_names]


@dataclass
class SimulationResult:
    """Bundle of everything a finished run produced."""

    config: SystemConfig
    horizon_us: float
    metrics: MetricsCollector
    test_stats: TestStats
    fault_records: List[FaultRecord]
    scheduler_name: str
    mapper_name: str
    power_policy_name: str
    per_core_busy_us: Dict[int, float]
    per_core_age_stress: Dict[int, float]
    per_core_tests: Dict[int, int]
    peak_temperature_c: Optional[float]
    per_level_tests: Dict[int, int]
    noc_avg_hops: float
    events_fired: int
    emergency_aborts: int = 0
    skipped_no_budget: int = 0
    #: Provenance manifest (config, seed, version, summary digest, profile).
    manifest: Optional[RunManifest] = None

    # ------------------------------------------------------------------
    @property
    def throughput_ops_per_us(self) -> float:
        return self.metrics.throughput_ops_per_us(self.horizon_us)

    @property
    def apps_completed(self) -> int:
        return self.metrics.apps_completed

    @property
    def tests_completed(self) -> int:
        return self.test_stats.completed

    @property
    def test_power_share(self) -> float:
        return self.metrics.test_power_share(self.horizon_us)

    def mean_detection_latency_us(self) -> Optional[float]:
        latencies = [
            r.detection_latency() for r in self.fault_records if r.detected
        ]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    def summary(self) -> Dict[str, float]:
        """Flat scalar summary (the rows experiments print)."""
        waiting = self.metrics.mean_waiting_time()
        return {
            "apps_completed": float(self.metrics.apps_completed),
            "tasks_completed": float(self.metrics.tasks_completed),
            "throughput_ops_per_us": self.throughput_ops_per_us,
            "mean_waiting_us": waiting if waiting is not None else 0.0,
            "avg_power_w": self.metrics.average_power(self.horizon_us),
            "budget_violation_rate": self.metrics.audit.violation_rate,
            "tests_completed": float(self.test_stats.completed),
            "tests_aborted": float(self.test_stats.aborted),
            "test_power_share": self.test_power_share,
            "faults_injected": float(len(self.fault_records)),
            "faults_detected": float(
                sum(1 for r in self.fault_records if r.detected)
            ),
        }


#: Memoized arrival traces keyed by the workload-defining config fields
#: (see :meth:`ManycoreSystem.generate_arrivals`).  Bounded FIFO so long
#: sweeps over workload knobs cannot grow it without limit.
_ARRIVAL_TRACES: Dict[tuple, List[Arrival]] = {}
_ARRIVAL_TRACES_MAX = 64


class ManycoreSystem:
    """One fully-wired simulation instance."""

    def __init__(
        self,
        config: SystemConfig,
        journal: Optional[Journal] = None,
        profiler: Optional[PhaseProfiler] = None,
        verifier=None,
        telemetry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        # Observability sinks: explicit argument, else the process-wide
        # default installed by repro.obs.configure /
        # repro.telemetry.configure_telemetry (NULL_* when off).
        self.journal = journal if journal is not None else active_journal()
        self.profiler = profiler if profiler is not None else active_profiler()
        self.telemetry = telemetry if telemetry is not None else active_telemetry()
        # Runtime invariant checker (repro.verify.InvariantChecker), or
        # None.  Kept duck-typed: repro.core must not import repro.verify
        # (the relation suite imports config/sweep machinery from here).
        self.verifier = verifier
        self._map_acc = None  # cached "mapping" accumulator
        self.sim = Simulator()
        if self.profiler.enabled:
            self.sim.profiler = self.profiler
        self.streams = StreamRegistry(config.seed)
        self.chip = Chip.build(
            config.width,
            config.height,
            config.node_name,
            tdp_w=config.tdp_w,
            n_vf_levels=config.n_vf_levels,
            type_grid=config.type_grid,
            tech_model=config.tech_model,
        )
        self.mesh = Mesh(config.width, config.height)
        if config.noc_mode == "analytic":
            self.noc = NocModel(self.mesh, NocParameters())
        elif config.noc_mode == "queued":
            self.noc = QueuedNocModel(self.mesh, NocParameters())
        else:
            raise ValueError(f"unknown noc_mode {config.noc_mode!r}")
        self.meter = PowerMeter(self.chip)
        self.budget = PowerBudget(config.tdp_w, config.guard_fraction)
        self.aging = AgingModel(self.chip.node, config.aging)
        self.injector = FaultInjector(
            self.chip,
            FaultParameters(
                base_hazard_per_us=config.fault_hazard_per_us,
                stress_scale=config.fault_stress_scale,
            ),
            self.streams.stream("faults"),
        )
        self.library: SBSTLibrary = default_library(config.sbst_scale)
        if config.variation_enabled:
            VariationModel(config.variation, self.streams.stream("variation")).apply(
                self.chip
            )
        self.thermal: Optional[ThermalModel] = (
            ThermalModel(self.chip, config.thermal) if config.thermal_enabled else None
        )
        self.metrics = MetricsCollector(self.budget)
        self.executor = ExecutionEngine(
            self.sim,
            self.chip,
            self.noc,
            self.meter,
            self.aging,
            dvfs_transition_us=config.dvfs_transition_us,
        )
        self.runner = TestRunner(
            self.sim,
            self.chip,
            self.meter,
            self.library,
            self.aging,
            self.injector,
            checkpointing=config.test_checkpointing,
        )
        self.criticality = TestCriticality(config.criticality)
        self.power_manager = self._build_power_manager()
        self.mapper = self._build_mapper()
        self.test_scheduler = self._build_test_scheduler()
        self.queue: Deque[ApplicationInstance] = deque()
        self._app_counter = 0
        # Both inputs (config knob and scheduler class) are fixed for the
        # system's lifetime; _available_cores runs on every core release.
        self._preemption_resolved = self.preemption_policy()
        # Last failed mapping attempt, as (head app, chip.mutations at the
        # time).  Every mapper here fails purely as a function of the
        # availability set, so retrying the same head on an unchanged chip
        # is guaranteed to fail again and is skipped (see _try_map).
        self._map_blocked: Optional[tuple] = None
        self._wire()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_power_manager(self) -> PowerManager:
        manager = make_power_manager(
            self.config.power_policy, self.chip, self.meter, self.budget
        )
        manager.bind_actuator(self.executor.change_level)
        if self.config.rt_priorities:
            manager.rt_rank = self._rt_rank_of_core
        return manager

    def _rt_rank_of_core(self, core) -> int:
        """Priority rank of the work on ``core`` (0 = hard-rt)."""
        from repro.workload.generator import RT_CLASSES

        execution = self.executor.execution_on(core)
        if execution is None:
            return RT_CLASSES["best-effort"]
        return RT_CLASSES.get(execution.app.graph.rt_class, 2)

    def _build_mapper(self) -> RuntimeMapper:
        name = self.config.mapper
        if name == "contiguous":
            return ContiguousMapper()
        if name == "scatter":
            return ScatterMapper()
        if name == "random":
            return RandomFreeMapper(self.streams.stream("mapper"))
        if name == "mappro":
            return MapProMapper()
        if name == "test-aware":
            return TestAwareUtilizationMapper(
                self.criticality,
                utilization_weight=self.config.utilization_weight,
                criticality_weight=self.config.criticality_weight,
                utilization_window_us=self.config.utilization_window_us,
            )
        raise ValueError(f"unknown mapper {name!r}")

    def _build_test_scheduler(self) -> TestSchedulerBase:
        name = self.config.test_policy
        common = dict(
            min_interval_us=self.config.min_test_interval_us,
            level_policy=self.config.test_level_policy,
        )
        if name == "none":
            return NoTestScheduler(self.chip, self.runner, **common)
        if name == "unaware":
            return PowerUnawareTestScheduler(self.chip, self.runner, **common)
        if name == "round-robin":
            return RoundRobinTestScheduler(
                self.chip,
                self.runner,
                max_concurrent=self.config.max_concurrent_tests,
                **common,
            )
        if name == "power-aware":
            return PowerAwareTestScheduler(
                self.chip,
                self.runner,
                self.meter,
                self.budget,
                criticality=self.criticality,
                max_concurrent=self.config.max_concurrent_tests,
                **common,
            )
        raise ValueError(f"unknown test policy {name!r}")

    def _wire(self) -> None:
        self.executor.start_level_provider = self.power_manager.start_level_for
        self.executor.on_task_finished.append(
            lambda task, now: self.metrics.on_task_finished(task.ops, now)
        )
        self.executor.on_app_finished.append(self.metrics.on_app_finished)
        self.executor.on_cores_freed.append(lambda now: self._try_map())
        if self.profiler.enabled:
            self.executor.profiler = self.profiler
        if self.journal.enabled:
            self.runner.journal = self.journal
            self.test_scheduler.journal = self.journal
            self.power_manager.journal = self.journal
            self.executor.on_app_finished.append(self._journal_app_finish)
            if self.journal.level == "debug":
                # High-rate state churn: only worth the listener call when
                # the journal would actually keep core.transition events.
                self.chip.add_transition_listener(self._journal_core_transition)
        tm = self.telemetry
        if tm.enabled:
            self.runner.telemetry = tm
            self.test_scheduler.telemetry = tm
            # Hot-loop metric handles, resolved once per system.
            self._tm_epochs = tm.counter("sim.epochs")
            self._tm_measured = tm.gauge("power.measured_w")
            self._tm_headroom = tm.gauge("power.headroom_w")
        if self.verifier is not None and self.verifier.enabled:
            # Last so the meter and journal listeners observe transitions
            # first; the checker is read-only either way.
            self.verifier.attach(self)

    # ------------------------------------------------------------------
    # Journal emission (all read-only: no RNG, no model state, no floats)
    # ------------------------------------------------------------------
    def _journal_app_finish(self, app: ApplicationInstance, now: float) -> None:
        self.journal.emit(
            "app.finish",
            now,
            app=app.app_id,
            turnaround_us=now - app.arrival_time,
            waited_us=(
                app.start_time - app.arrival_time
                if app.start_time is not None
                else None
            ),
        )

    def _journal_core_transition(self, core, old, new) -> None:
        if old is not new:
            self.journal.emit(
                "core.transition",
                self.sim.now,
                core=core.core_id,
                from_state=old.name,
                to_state=new.name,
            )

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    def generate_arrivals(self) -> List[Arrival]:
        """Arrival trace for this configuration (memoized across systems).

        The trace is a pure function of the workload knobs and the seed:
        the ``"workload"`` RNG stream is derived only from ``config.seed``
        and consumed nowhere else, and :class:`Arrival` objects (and the
        :class:`~repro.workload.application.ApplicationGraph` templates they
        carry) are immutable, so experiment sweeps that replay the same
        seed under different policies can share one trace.  Callers must
        treat the returned list as read-only.
        """
        key = (
            self.config.bursty,
            self.config.arrival_rate_per_ms,
            self.config.profile_names,
            self.config.profile_weights,
            self.config.seed,
            self.config.horizon_us,
        )
        cached = _ARRIVAL_TRACES.get(key)
        if cached is not None:
            return cached
        cls = BurstyArrivalProcess if self.config.bursty else PoissonArrivalProcess
        process = cls(
            self.config.arrival_rate_per_ms,
            self.config.profiles(),
            list(self.config.profile_weights),
            rng=self.streams.stream("workload"),
        )
        trace = process.generate(self.config.horizon_us)
        if len(_ARRIVAL_TRACES) >= _ARRIVAL_TRACES_MAX:
            _ARRIVAL_TRACES.pop(next(iter(_ARRIVAL_TRACES)))
        _ARRIVAL_TRACES[key] = trace
        return trace

    def _on_arrival(self, arrival: Arrival) -> None:
        self._app_counter += 1
        app = arrival.instantiate(self._app_counter)
        self.metrics.on_app_arrival(app, self.sim.now)
        if self.journal.enabled:
            self.journal.emit(
                "app.arrival",
                self.sim.now,
                app=app.app_id,
                name=app.graph.name,
                n_tasks=app.graph.n_tasks,
                rt_class=app.graph.rt_class,
            )
        self.queue.append(app)
        self._try_map()

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def preemption_policy(self) -> str:
        """Resolved test-preemption policy.

        ``auto`` follows the scheduler: the proposed scheduler's sessions
        are preemptable (non-intrusive testing), the baselines hold their
        core until the session finishes (intrusive, the classic behaviour).
        """
        if self.config.test_preemption != "auto":
            return self.config.test_preemption
        return "abort" if self.test_scheduler.preemptable else "reserve"

    def _available_cores(self):
        available = self.chip.free_cores()
        if self._preemption_resolved == "abort":
            available = available + [
                c for c in self.chip.testing_cores() if c.owner_app is None
            ]
        slots = self.power_manager.spare_core_slots()
        if slots is not None and len(available) > slots:
            # Admission-limited policy (worst-case TDP scheduling): only the
            # first `slots` cores may be woken this mapping round.
            available = available[:slots]
        return available

    def _next_in_queue(self) -> Optional[ApplicationInstance]:
        """Head-of-queue under the active queueing discipline.

        FIFO by default; with ``rt_priorities`` the queue is served in
        real-time-class priority order (arrival time as the tie-break),
        the ICCD'14 mixed-criticality treatment.
        """
        if not self.queue:
            return None
        if not self.config.rt_priorities:
            return self.queue[0]
        from repro.workload.generator import RT_CLASSES

        return min(
            self.queue,
            key=lambda app: (
                RT_CLASSES.get(app.graph.rt_class, 2),
                app.arrival_time,
                app.app_id,
            ),
        )

    def _try_map(self) -> None:
        # Mapping attempts fire on every arrival, core release and control
        # tick — hot enough that timing goes through a cached accumulator
        # (see ExecutionEngine._start_transfer) rather than a context
        # manager per call.
        if self.profiler.enabled:
            acc = self._map_acc
            if acc is None:
                acc = self._map_acc = self.profiler.accumulator("mapping")
            t0 = _perf_counter()
            self._try_map_impl()
            acc.calls += 1
            acc.wall_s += _perf_counter() - t0
            return
        self._try_map_impl()

    def _try_map_impl(self) -> None:
        while self.queue:
            app = self._next_in_queue()
            mutations = self.chip.mutations
            blocked = self._map_blocked
            if (
                blocked is not None
                and blocked[0] is app
                and blocked[1] == mutations
            ):
                # Nothing on the chip changed since this app last failed to
                # map; the attempt would fail identically (mapping failure
                # depends only on core availability, and the failure paths
                # consume no RNG), so skip the rebuild.
                return
            # Every mapper needs one distinct core per task and rejects
            # otherwise, so an exact availability count decides the common
            # saturated case without building the list or the context.
            n_avail = self.chip.n_free_cores()
            if self._preemption_resolved == "abort":
                # Cores under test are never app-owned (the runner refuses
                # to test an owned core), so the whole testing set counts.
                n_avail += len(self.chip.state_ids(CoreState.TESTING))
            slots = self.power_manager.spare_core_slots()
            if slots is not None and n_avail > slots:
                n_avail = slots
            if app.graph.n_tasks > n_avail:
                self._map_blocked = (app, mutations)
                if self.journal.debug:
                    # Debug-level: fires per distinct blockage (the memo
                    # above dedupes retries of the same chip state), which
                    # is still far more often than any decision event.
                    self.journal.emit(
                        "map.blocked",
                        self.sim.now,
                        app=app.app_id,
                        reason="insufficient-cores",
                        n_tasks=app.graph.n_tasks,
                        n_available=n_avail,
                    )
                return
            ctx = MappingContext(
                self.chip, self.mesh, self.sim.now, self._available_cores()
            )
            placement = self.mapper.map_application(app, ctx)
            if placement is None:
                self._map_blocked = (app, mutations)
                if self.journal.debug:
                    self.journal.emit(
                        "map.blocked",
                        self.sim.now,
                        app=app.app_id,
                        reason="mapper-refused",
                        n_tasks=app.graph.n_tasks,
                        n_available=n_avail,
                    )
                return
            for core_id in placement.values():
                core = self.chip.core(core_id)
                if core.is_testing():
                    self.runner.abort(core)
            self.queue.remove(app)
            self.executor.admit(app, placement)
            self.metrics.on_app_admitted(app, self.sim.now)
            if self.journal.enabled:
                self.journal.emit(
                    "app.map",
                    self.sim.now,
                    app=app.app_id,
                    cores=tuple(sorted(placement.values())),
                    waited_us=self.sim.now - app.arrival_time,
                )

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _control_tick(self) -> None:
        now = self.sim.now
        dt = self.config.epoch_us
        self.injector.tick(now, dt)
        if self.thermal is not None:
            self.thermal.step(
                {core.core_id: self.meter.core_power(core) for core in self.chip},
                dt,
            )
            self.metrics.trace.record(
                "thermal.max_c", now, self.thermal.hottest()
            )
        with self.profiler.phase("pid.step"):
            self.power_manager.tick(now, dt)
        if (
            self.thermal is None
            or self.thermal.headroom_c() >= self.config.thermal_test_margin_c
        ):
            # Thermal guard: on a chip already near the junction limit, the
            # high-toggle SBST sessions are deferred until it cools.
            with self.profiler.phase("test.schedule"):
                self.test_scheduler.tick(now, dt)
        self._try_map()
        breakdown = self.meter.breakdown()
        if self.telemetry.enabled:
            self._tm_epochs.inc()
            self._tm_measured.set(breakdown.total)
            self._tm_headroom.set(self.budget.headroom(breakdown.total))
        if self.journal.enabled and self.budget.violated(breakdown.total):
            self.journal.emit(
                "budget.violation",
                now,
                measured_w=breakdown.total,
                cap_w=self.budget.cap,
                overshoot_w=breakdown.total - self.budget.cap,
            )
        self.metrics.sample_power(now, breakdown)
        self.metrics.sample_counts(
            now,
            busy=len(self.chip.state_ids(CoreState.BUSY)),
            testing=len(self.chip.state_ids(CoreState.TESTING)),
            idle=len(self.chip.state_ids(CoreState.IDLE)),
            queued=len(self.queue),
        )
        verifier = self.verifier
        if verifier is not None and verifier.enabled:
            # Reuses the breakdown this epoch already computed, so the
            # checker adds no extra meter queries (and cannot disturb a
            # verify_every_n audit cadence).
            verifier.on_control_tick(self, now, breakdown)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        for arrival in self.generate_arrivals():
            self.sim.at(arrival.time, self._on_arrival, arrival)
        self.sim.every(
            self.config.epoch_us, self._control_tick, priority=PRIORITY_CONTROL
        )
        self.sim.run(until=self.config.horizon_us)
        if self.telemetry.enabled:
            self.telemetry.counter("sim.runs").inc()
            self.telemetry.counter("sim.events").inc(self.sim.events_fired)
        return self._collect_result()

    def _collect_result(self) -> SimulationResult:
        scheduler = self.test_scheduler
        emergency = getattr(scheduler, "emergency_aborts", 0)
        skipped = getattr(scheduler, "skipped_no_budget", 0)
        result = SimulationResult(
            config=self.config,
            horizon_us=self.config.horizon_us,
            metrics=self.metrics,
            test_stats=self.runner.stats,
            fault_records=list(self.injector.records),
            scheduler_name=scheduler.name,
            mapper_name=self.mapper.name,
            power_policy_name=self.power_manager.name,
            per_core_busy_us={
                c.core_id: c.busy_window.total_busy for c in self.chip
            },
            per_core_age_stress={
                c.core_id: c.age_stress for c in self.chip
            },
            per_core_tests=dict(self.runner.stats.per_core_completed),
            peak_temperature_c=(
                self.thermal.peak_seen_c if self.thermal is not None else None
            ),
            per_level_tests=dict(self.runner.stats.per_level_completed),
            noc_avg_hops=self.noc.average_hops(),
            events_fired=self.sim.events_fired,
            emergency_aborts=emergency,
            skipped_no_budget=skipped,
        )
        result.manifest = self._build_manifest(result)
        return result

    def _build_manifest(self, result: SimulationResult) -> RunManifest:
        # Imported lazily: repro (the package root) imports repro.core, so
        # a top-level import here would be a cycle.
        import repro

        return RunManifest(
            version=getattr(repro, "__version__", "0"),
            seed=self.config.seed,
            horizon_us=self.config.horizon_us,
            config=asdict(self.config),
            summary_digest=digest_of(sorted(result.summary().items())),
            profile=self.profiler.summary() if self.profiler.enabled else {},
            journal_events=len(self.journal),
            journal_dropped=self.journal.dropped,
        )


def run_system(
    config: SystemConfig,
    journal: Optional[Journal] = None,
    profiler: Optional[PhaseProfiler] = None,
    verifier=None,
    telemetry: Optional[MetricsRegistry] = None,
) -> SimulationResult:
    """Build and run one simulation (the one-call public entry point).

    ``verifier`` accepts a :class:`repro.verify.InvariantChecker`;
    ``telemetry`` a :class:`repro.telemetry.MetricsRegistry`.  With the
    defaults the run is byte-identical to an unobserved one — and stays
    byte-identical with everything enabled (the sinks are write-only).
    """
    return ManycoreSystem(
        config,
        journal=journal,
        profiler=profiler,
        verifier=verifier,
        telemetry=telemetry,
    ).run()

"""Execution engine: runs mapped applications on the chip.

Responsibilities:

* admit a mapped application (claim its cores, start its root tasks);
* execute tasks at the core's current DVFS level, re-timing the in-flight
  task whenever the power manager changes the level (the engine is the
  power manager's *level actuator*);
* move task outputs over the NoC (latency + transfer power) and release
  dependent tasks when their inputs have arrived;
* maintain per-core busy accounting and aging stress;
* free cores (for other applications *and for the test scheduler* — idle
  periods are where tests live) and detect application completion.

Task-to-core mapping is 1:1 (each task owns one core for the lifetime of
the application region, the model used by the group's CoNA/SHiC mapping
papers); a core becomes reclaimable as soon as its task has finished and
its outgoing transfers have drained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.aging.model import AgingModel
from repro.noc.model import NocModel
from time import perf_counter as _perf_counter

from repro.obs.profiler import NULL_PROFILER
from repro.platform.chip import Chip
from repro.platform.core import Core, CoreState
from repro.platform.dvfs import VFLevel
from repro.power.meter import PowerMeter
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.workload.application import ApplicationInstance
from repro.workload.task import Edge, Task


@dataclass(slots=True)
class TaskExecution:
    """Bookkeeping of one in-flight task."""

    app: ApplicationInstance
    task: Task
    core: Core
    started_at: float
    last_update: float
    ops_remaining: float
    finish_event: Event
    #: End of the current DVFS-transition stall (no progress before this).
    stall_until: float = 0.0


class ExecutionEngine:
    """Executes applications; actuates DVFS changes on running tasks."""

    def __init__(
        self,
        sim: Simulator,
        chip: Chip,
        noc: NocModel,
        meter: PowerMeter,
        aging: Optional[AgingModel] = None,
        dvfs_transition_us: float = 0.0,
    ) -> None:
        if dvfs_transition_us < 0:
            raise ValueError("dvfs_transition_us must be non-negative")
        self.sim = sim
        self.chip = chip
        self.noc = noc
        self.meter = meter
        self.aging = aging
        #: Stall per V/f switch on a busy core: the PLL/regulator settling
        #: time during which the task makes no progress.  Real platforms
        #: pay tens of microseconds; 0 models instantaneous switching.
        self.dvfs_transition_us = dvfs_transition_us
        self.dvfs_transitions = 0
        self._running: Dict[int, TaskExecution] = {}   # core_id -> execution
        self._apps: Dict[int, ApplicationInstance] = {}
        self._pending_out: Dict[int, int] = {}          # core_id -> in-flight out edges
        #: Chooses the DVFS level a new task starts at (bound to the power
        #: manager's budget-aware policy by the system).
        self.start_level_provider: Callable[[Core, float], VFLevel] = (
            lambda core, activity: self.chip.vf_table.max_level
        )
        #: Hooks: on_task_finished(task, now); on_app_finished(app, now);
        #: on_cores_freed(now) fires when cores become allocatable again.
        self.on_task_finished: List[Callable[[Task, float], None]] = []
        self.on_app_finished: List[Callable[[ApplicationInstance, float], None]] = []
        self.on_cores_freed: List[Callable[[float], None]] = []
        #: Observability sink (no-op by default; installed by the system).
        self.profiler = NULL_PROFILER
        self._noc_acc = None  # cached "noc.transfer" accumulator

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def running_tasks(self) -> int:
        return len(self._running)

    def active_apps(self) -> int:
        return len(self._apps)

    def execution_on(self, core: Core) -> Optional[TaskExecution]:
        return self._running.get(core.core_id)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, app: ApplicationInstance, placement: Dict[int, int]) -> None:
        """Claim cores per ``placement`` and start the application."""
        if set(placement) != set(app.graph.tasks):
            raise ValueError("placement must cover exactly the app's tasks")
        core_ids = list(placement.values())
        if len(set(core_ids)) != len(core_ids):
            raise ValueError("placement maps two tasks to one core")
        now = self.sim.now
        for core_id in core_ids:
            core = self.chip.core(core_id)
            if not (core.is_idle() and core.owner_app is None):
                raise ValueError(
                    f"core {core_id} not allocatable (state={core.state},"
                    f" owner={core.owner_app})"
                )
            core.owner_app = app.app_id
        app.placement = dict(placement)
        app.start_time = now
        self._apps[app.app_id] = app
        for task_id in app.graph.roots():
            self._start_task(app, task_id)

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def _start_task(self, app: ApplicationInstance, task_id: int) -> None:
        core = self.chip.cores[app.placement[task_id]]
        if not core.is_idle():
            raise RuntimeError(
                f"core {core.core_id} expected idle for task start, "
                f"got {core.state}"
            )
        task = app.graph.tasks[task_id]
        now = self.sim.now
        level = self.start_level_provider(core, task.activity)
        core.state = CoreState.BUSY
        core.level = level
        core.busy_since = now
        self.meter.set_core_activity(core, task.activity)
        duration = task.duration_at(core.speed_at(level))
        core.busy_until = now + duration
        event = self.sim.schedule(duration, self._finish_task, core.core_id)
        self._running[core.core_id] = TaskExecution(
            app=app,
            task=task,
            core=core,
            started_at=now,
            last_update=now,
            ops_remaining=task.ops,
            finish_event=event,
        )

    def change_level(self, core: Core, new_level: VFLevel) -> None:
        """Power-manager actuator: re-time the in-flight task on ``core``."""
        execution = self._running.get(core.core_id)
        if execution is None:
            raise ValueError(f"core {core.core_id} runs no task")
        if new_level.index == core.level.index:
            return
        now = self.sim.now
        elapsed = now - execution.last_update
        # No ops retire during a transition stall; progress only counts
        # from the later of the last update and the stall's end.
        productive = max(0.0, now - max(execution.last_update, execution.stall_until))
        done = productive * core.speed_at()
        if self.aging is not None and elapsed > 0:
            self.aging.accrue_busy(core, elapsed, core.level, execution.task.activity)
        execution.ops_remaining = max(0.0, execution.ops_remaining - done)
        execution.last_update = now
        execution.finish_event.cancel()
        core.level = new_level
        self.dvfs_transitions += 1
        execution.stall_until = now + self.dvfs_transition_us
        remaining_us = (
            self.dvfs_transition_us
            + execution.ops_remaining / core.speed_at(new_level)
        )
        core.busy_until = now + remaining_us
        execution.finish_event = self.sim.schedule(
            remaining_us, self._finish_task, core.core_id
        )

    def _finish_task(self, core_id: int) -> None:
        execution = self._running.pop(core_id, None)
        if execution is None:
            return
        core = execution.core
        app = execution.app
        task = execution.task
        now = self.sim.now
        elapsed = now - execution.last_update
        if self.aging is not None and elapsed > 0:
            self.aging.accrue_busy(core, elapsed, core.level, task.activity)
        core.busy_window.add(execution.started_at, now)
        core.state = CoreState.IDLE
        core.busy_until = 0.0
        self.meter.set_core_activity(core, None)
        app.mark_task_done(task.task_id)
        for hook in self.on_task_finished:
            hook(task, now)

        out_edges = app.graph.successors[task.task_id]
        if out_edges:
            self._pending_out[core_id] = len(out_edges)
            for edge in out_edges:
                self._start_transfer(app, edge)
        else:
            self._release_core(core)
        self._check_app_done(app)

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def _start_transfer(self, app: ApplicationInstance, edge: Edge) -> None:
        # Transfers are the hottest instrumentation site (tens of
        # thousands per run), so timing goes straight into a cached
        # accumulator instead of a per-call context manager.
        if self.profiler.enabled:
            acc = self._noc_acc
            if acc is None:
                acc = self._noc_acc = self.profiler.accumulator("noc.transfer")
            t0 = _perf_counter()
            self._start_transfer_impl(app, edge)
            acc.calls += 1
            acc.wall_s += _perf_counter() - t0
            return
        self._start_transfer_impl(app, edge)

    def _start_transfer_impl(self, app: ApplicationInstance, edge: Edge) -> None:
        src_core = self.chip.cores[app.placement[edge.src]]
        dst_core = self.chip.cores[app.placement[edge.dst]]
        estimate = self.noc.begin_transfer(
            src_core.position, dst_core.position, edge.volume_flits,
            now=self.sim.now,
        )
        if estimate.latency_us <= 0:
            self.noc.end_transfer(
                src_core.position, dst_core.position, edge.volume_flits
            )
            self._finish_transfer(app, edge, 0.0)
            return
        power_w = estimate.energy_uj / estimate.latency_us
        self.meter.add_noc_power(power_w)

        def complete() -> None:
            self.meter.remove_noc_power(power_w)
            self.noc.end_transfer(
                src_core.position, dst_core.position, edge.volume_flits
            )
            self._finish_transfer(app, edge, estimate.latency_us)

        self.sim.schedule(estimate.latency_us, complete)

    def _finish_transfer(
        self, app: ApplicationInstance, edge: Edge, latency_us: float
    ) -> None:
        app.transferred_edges.add((edge.src, edge.dst))
        src_core = self.chip.cores[app.placement[edge.src]]
        pending = self._pending_out.get(src_core.core_id, 0) - 1
        if pending <= 0:
            self._pending_out.pop(src_core.core_id, None)
            self._release_core(src_core)
        else:
            self._pending_out[src_core.core_id] = pending
        # Start the consumer if all of its inputs have now arrived.
        if (
            edge.dst not in app.completed_tasks
            and app.placement[edge.dst] not in self._running
            and app.task_ready(edge.dst)
        ):
            self._start_task(app, edge.dst)
        self._check_app_done(app)

    # ------------------------------------------------------------------
    # Completion / release
    # ------------------------------------------------------------------
    def _release_core(self, core: Core) -> None:
        if core.owner_app is None:
            return
        core.owner_app = None
        now = self.sim.now
        for hook in self.on_cores_freed:
            hook(now)

    def _check_app_done(self, app: ApplicationInstance) -> None:
        graph = app.graph
        if len(app.completed_tasks) != graph.n_tasks:
            return
        if len(app.transferred_edges) < graph.n_edges:
            return
        if app.app_id not in self._apps:
            return
        del self._apps[app.app_id]
        app.finish_time = self.sim.now
        # Free any cores still held (sinks and stragglers).
        for core_id in app.placement.values():
            core = self.chip.core(core_id)
            if core.owner_app == app.app_id:
                self._release_core(core)
        for hook in self.on_app_finished:
            hook(app, self.sim.now)

"""repro: reproduction of "Power-aware online testing of manycore systems
in the dark silicon era" (Haghbayan et al., DATE 2015).

Public API (the pieces a downstream user composes):

>>> from repro import SystemConfig, run_system
>>> result = run_system(SystemConfig(horizon_us=20_000, seed=7))
>>> result.summary()["tests_completed"] >= 0
True
"""

from repro.core import (
    CriticalityParameters,
    ManycoreSystem,
    PowerAwareTestScheduler,
    SimulationResult,
    SystemConfig,
    TestAwareUtilizationMapper,
    TestCriticality,
    run_system,
)
from repro.platform import Chip, CoreState, get_node, node_names

__version__ = "1.0.0"

__all__ = [
    "Chip",
    "CoreState",
    "CriticalityParameters",
    "ManycoreSystem",
    "PowerAwareTestScheduler",
    "SimulationResult",
    "SystemConfig",
    "TestAwareUtilizationMapper",
    "TestCriticality",
    "get_node",
    "node_names",
    "run_system",
    "__version__",
]

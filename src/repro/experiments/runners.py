"""Experiment runners E1..E9 — one per reconstructed table/figure.

Each runner builds the system configurations it needs, runs them on the
*same* workload trace (shared seed ⇒ bit-identical arrivals), and returns
an :class:`~repro.experiments.result.ExperimentResult` whose rows mirror
the figure/table the paper reported.  See DESIGN.md for the experiment
index and EXPERIMENTS.md for paper-claim vs. measured numbers.

All runners accept ``horizon_us``/``seeds`` so the benchmark harness can
run them at full scale while unit tests use small horizons, plus ``jobs``
to spread their independent simulation runs over worker processes via
:func:`repro.experiments.parallel.run_many` (serial and parallel runs
produce identical results; see that module's docstring).
"""

from __future__ import annotations

import statistics
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.system import SimulationResult, SystemConfig
from repro.experiments.parallel import run_many
from repro.experiments.result import ExperimentResult
from repro.platform.technology import get_node, node_names

#: Baseline workload used by most experiments (16 nm, saturating load).
DEFAULT_CONFIG = SystemConfig(
    node_name="16nm",
    tdp_w=80.0,
    horizon_us=60_000.0,
    arrival_rate_per_ms=8.0,
    seed=11,
)


def _penalty_pct(baseline: float, measured: float) -> float:
    """Throughput penalty (%) of ``measured`` against ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (1.0 - measured / baseline)


def _grid(horizon_us: float, step_us: float) -> List[float]:
    n = int(horizon_us / step_us)
    return [i * step_us for i in range(n + 1)]


# ----------------------------------------------------------------------
# E1 — power trace under the budget
# ----------------------------------------------------------------------
def run_e1_power_trace(
    horizon_us: float = 60_000.0, seed: int = 11, jobs: Optional[int] = None
) -> ExperimentResult:
    """Chip power vs. time against the TDP for proposed vs. power-unaware."""
    base = replace(DEFAULT_CONFIG, horizon_us=horizon_us, seed=seed)
    rows = []
    series: Dict[str, List[float]] = {}
    grid = _grid(horizon_us, base.epoch_us * 5)
    policies = ("power-aware", "unaware")
    runs = run_many(
        [replace(base, test_policy=policy) for policy in policies], jobs
    )
    for policy, result in zip(policies, runs):
        trace = result.metrics.trace
        series[f"power.total[{policy}]"] = trace.resample("power.total", grid)
        series[f"power.test[{policy}]"] = trace.resample("power.test", grid)
        rows.append(
            [
                policy,
                result.metrics.average_power(horizon_us),
                trace.maximum("power.total"),
                result.metrics.audit.violation_rate,
                result.tests_completed,
                result.test_power_share,
            ]
        )
    return ExperimentResult(
        experiment_id="E1",
        title="Chip power vs. time under the TDP budget (16 nm)",
        claim=(
            "the proposed approach can efficiently utilize temporarily free "
            "resources and available power budget for the testing purposes"
        ),
        headers=[
            "scheduler", "avg_power_w", "peak_power_w",
            "violation_rate", "tests", "test_energy_share",
        ],
        rows=rows,
        series=series,
        scalars={"tdp_w": base.tdp_w},
        notes=[
            "power-aware keeps peak power at or under the cap; the unaware "
            "baseline punctures it whenever tests land on a busy chip",
        ],
    )


# ----------------------------------------------------------------------
# E2 — throughput penalty of online testing
# ----------------------------------------------------------------------
def run_e2_throughput_penalty(
    horizon_us: float = 60_000.0, seed: int = 11, jobs: Optional[int] = None
) -> ExperimentResult:
    """Throughput penalty per test scheduler at 16 nm (headline claim)."""
    base = replace(DEFAULT_CONFIG, horizon_us=horizon_us, seed=seed)
    policies = ("none", "power-aware", "unaware", "round-robin")
    runs = run_many(
        [replace(base, test_policy=policy) for policy in policies], jobs
    )
    results: Dict[str, SimulationResult] = dict(zip(policies, runs))
    baseline = results["none"].throughput_ops_per_us
    rows = []
    for policy, result in results.items():
        rows.append(
            [
                policy,
                result.throughput_ops_per_us,
                _penalty_pct(baseline, result.throughput_ops_per_us),
                result.tests_completed,
                result.test_stats.aborted,
                result.test_power_share,
                result.metrics.audit.violation_rate,
            ]
        )
    penalty = _penalty_pct(
        baseline, results["power-aware"].throughput_ops_per_us
    )
    return ExperimentResult(
        experiment_id="E2",
        title="System-throughput penalty of online testing (16 nm)",
        claim="within less than 1% penalty on system throughput for 16 nm",
        headers=[
            "scheduler", "throughput_ops_per_us", "penalty_pct",
            "tests", "aborted", "test_energy_share", "violation_rate",
        ],
        rows=rows,
        scalars={"proposed_penalty_pct": penalty},
    )


# ----------------------------------------------------------------------
# E3 — technology-node sweep
# ----------------------------------------------------------------------
def run_e3_tech_nodes(
    horizon_us: float = 60_000.0,
    seed: int = 11,
    nodes: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Penalty and dark-silicon squeeze across 45/32/22/16 nm."""
    base = replace(DEFAULT_CONFIG, horizon_us=horizon_us, seed=seed)
    rows = []
    worst_penalty = 0.0
    names = list(nodes or node_names())
    configs = []
    for name in names:
        configs.append(replace(base, node_name=name, test_policy="none"))
        configs.append(replace(base, node_name=name, test_policy="power-aware"))
    runs = run_many(configs, jobs)
    for i, name in enumerate(names):
        node = get_node(name)
        lit = node.lit_fraction(base.width * base.height, base.tdp_w)
        off = runs[2 * i]
        on = runs[2 * i + 1]
        penalty = _penalty_pct(
            off.throughput_ops_per_us, on.throughput_ops_per_us
        )
        worst_penalty = max(worst_penalty, penalty)
        rows.append(
            [
                name,
                lit,
                1.0 - lit,
                off.throughput_ops_per_us,
                on.throughput_ops_per_us,
                penalty,
                on.tests_completed,
                on.test_power_share,
            ]
        )
    return ExperimentResult(
        experiment_id="E3",
        title="Dark-silicon squeeze across technology nodes",
        claim=(
            "power budget tightens from 45 nm to 16 nm while the testing "
            "penalty stays negligible"
        ),
        headers=[
            "node", "lit_fraction", "dark_fraction",
            "thr_no_test", "thr_proposed", "penalty_pct",
            "tests", "test_energy_share",
        ],
        rows=rows,
        scalars={"worst_penalty_pct": worst_penalty},
    )


# ----------------------------------------------------------------------
# E4 — test-frequency adaptivity to core stress
# ----------------------------------------------------------------------
def run_e4_adaptivity(
    horizon_us: float = 60_000.0,
    seeds: Sequence[int] = (5, 11, 23),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Tests per core vs. core busy time (criticality adaptivity).

    Uses a stress-dominant criticality configuration (the mechanism this
    experiment isolates): with the time term turned up, periodic
    re-screening of idle cores equalises test counts and hides the
    adaptivity the stress term provides.
    """
    from repro.core.criticality import CriticalityParameters

    stress_dominant = CriticalityParameters(
        stress_weight=0.85, time_weight=0.15,
        stress_reference=4.0, time_reference_us=3000.0,
    )
    base = replace(
        DEFAULT_CONFIG,
        horizon_us=horizon_us,
        mapper="contiguous",
        criticality=stress_dominant,
    )
    correlations = []
    quartile_busy = [[] for _ in range(4)]
    quartile_tests = [[] for _ in range(4)]
    last_series: List[float] = []
    runs = run_many([replace(base, seed=seed) for seed in seeds], jobs)
    for result in runs:
        busy = result.per_core_busy_us
        tests = result.per_core_tests
        core_ids = sorted(busy)
        xs = [busy[i] for i in core_ids]
        ys = [float(tests.get(i, 0)) for i in core_ids]
        if statistics.pstdev(xs) > 0 and statistics.pstdev(ys) > 0:
            correlations.append(statistics.correlation(xs, ys))
        order = sorted(core_ids, key=lambda i: busy[i])
        quarter = max(1, len(order) // 4)
        buckets = [order[k * quarter:(k + 1) * quarter] for k in range(3)]
        buckets.append(order[3 * quarter:])
        for k, bucket in enumerate(buckets):
            quartile_busy[k].extend(busy[i] for i in bucket)
            quartile_tests[k].extend(float(tests.get(i, 0)) for i in bucket)
        last_series = [float(tests.get(i, 0)) for i in order]
    rows = [
        [
            f"Q{k + 1}",
            statistics.mean(quartile_busy[k]),
            statistics.mean(quartile_tests[k]),
        ]
        for k in range(4)
        if quartile_busy[k]
    ]
    corr = statistics.mean(correlations) if correlations else 0.0
    return ExperimentResult(
        experiment_id="E4",
        title="Test frequency adapts to core stress (utilization)",
        claim="adapt to the current stress level of the cores (TC'16)",
        headers=["busy_quartile", "mean_busy_us", "mean_tests"],
        rows=rows,
        scalars={"pearson_busy_vs_tests": corr},
        series={"tests_by_core_busy_rank": last_series},
        notes=[
            f"mean Pearson over {len(seeds)} seeds; stress-dominant "
            "criticality (w_s=0.85) isolates the adaptivity mechanism",
        ],
    )


# ----------------------------------------------------------------------
# E5 — test power share across load
# ----------------------------------------------------------------------
def run_e5_test_power_share(
    horizon_us: float = 60_000.0,
    seed: int = 11,
    rates: Sequence[float] = (2.0, 4.0, 6.0, 8.0, 10.0),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Energy share dedicated to testing across offered loads."""
    base = replace(DEFAULT_CONFIG, horizon_us=horizon_us, seed=seed)
    rows = []
    shares = []
    runs = run_many(
        [replace(base, arrival_rate_per_ms=rate) for rate in rates], jobs
    )
    for rate, result in zip(rates, runs):
        share = result.test_power_share
        shares.append(share)
        rows.append(
            [
                rate,
                result.metrics.average_power(horizon_us),
                share,
                result.tests_completed,
                result.metrics.audit.violation_rate,
            ]
        )
    return ExperimentResult(
        experiment_id="E5",
        title="Power share dedicated to online testing vs. load",
        claim="dedicating only ~2% of the actual consumed power (TC'16)",
        headers=[
            "arrival_rate_per_ms", "avg_power_w", "test_energy_share",
            "tests", "violation_rate",
        ],
        rows=rows,
        scalars={"max_share": max(shares), "mean_share": statistics.mean(shares)},
        series={"test_share_by_rate": shares},
    )


# ----------------------------------------------------------------------
# E6 — V/F-level coverage of the test campaign
# ----------------------------------------------------------------------
def run_e6_vf_coverage(
    horizon_us: float = 60_000.0, seed: int = 11, jobs: Optional[int] = None
) -> ExperimentResult:
    """Distribution of completed tests across DVFS levels."""
    base = replace(DEFAULT_CONFIG, horizon_us=horizon_us, seed=seed)
    rows = []
    covered = {}
    level_policies = ("rotate", "nominal")
    runs = run_many(
        [replace(base, test_level_policy=p) for p in level_policies], jobs
    )
    for level_policy, result in zip(level_policies, runs):
        per_level = result.per_level_tests
        n_levels = base.n_vf_levels
        covered[level_policy] = sum(
            1 for i in range(n_levels) if per_level.get(i, 0) > 0
        )
        for index in range(n_levels):
            rows.append([level_policy, index, per_level.get(index, 0)])
    return ExperimentResult(
        experiment_id="E6",
        title="Test coverage across voltage/frequency levels",
        claim="cover all the voltage and frequency levels during the various tests (TC'16)",
        headers=["level_policy", "vf_level", "tests_completed"],
        rows=rows,
        scalars={
            "levels_covered_rotate": float(covered.get("rotate", 0)),
            "levels_covered_nominal": float(covered.get("nominal", 0)),
        },
    )


# ----------------------------------------------------------------------
# E7 — runtime-mapping comparison
# ----------------------------------------------------------------------
def run_e7_mapping(
    horizon_us: float = 60_000.0,
    seeds: Sequence[int] = (11, 23, 47),
    arrival_rate_per_ms: float = 3.0,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Test-aware utilization-oriented mapping vs. baselines.

    Moderate load: the mapper has freedom in *which* cores it leaves idle,
    which is where test awareness pays off (fresher test coverage at
    contiguous-mapping communication locality).
    """
    base = replace(
        DEFAULT_CONFIG,
        horizon_us=horizon_us,
        arrival_rate_per_ms=arrival_rate_per_ms,
    )
    rows = []
    per_mapper: Dict[str, Dict[str, float]] = {}
    mappers = ("contiguous", "scatter", "random", "mappro", "test-aware")
    runs = run_many(
        [
            replace(base, mapper=mapper, seed=seed)
            for mapper in mappers
            for seed in seeds
        ],
        jobs,
    )
    for m, mapper in enumerate(mappers):
        aborts, max_gaps, mean_gaps, hops, thrs = [], [], [], [], []
        for result in runs[m * len(seeds):(m + 1) * len(seeds)]:
            aborts.append(result.test_stats.aborted)
            max_gaps.append(result.test_stats.max_gap_us())
            mean_gaps.append(result.test_stats.mean_gap_us())
            hops.append(result.noc_avg_hops)
            thrs.append(result.throughput_ops_per_us)
        row = {
            "aborted": statistics.mean(aborts),
            "max_gap_us": statistics.mean(max_gaps),
            "mean_gap_us": statistics.mean(mean_gaps),
            "avg_hops": statistics.mean(hops),
            "throughput": statistics.mean(thrs),
        }
        per_mapper[mapper] = row
        rows.append(
            [
                mapper, row["throughput"], row["avg_hops"],
                row["mean_gap_us"], row["max_gap_us"], row["aborted"],
            ]
        )
    return ExperimentResult(
        experiment_id="E7",
        title="Runtime mapping: test-aware utilization-oriented vs. baselines",
        claim=(
            "test-aware utilization-oriented runtime mapping considers the "
            "utilization of cores and their test criticality"
        ),
        headers=[
            "mapper", "throughput_ops_per_us", "avg_hops",
            "mean_test_gap_us", "max_test_gap_us", "tests_aborted",
        ],
        rows=rows,
        scalars={
            "abort_reduction_vs_contiguous": (
                per_mapper["contiguous"]["aborted"]
                - per_mapper["test-aware"]["aborted"]
            ),
            "hops_overhead_vs_contiguous": (
                per_mapper["test-aware"]["avg_hops"]
                - per_mapper["contiguous"]["avg_hops"]
            ),
        },
    )


# ----------------------------------------------------------------------
# E8 — fault-detection latency
# ----------------------------------------------------------------------
def run_e8_detection_latency(
    horizon_us: float = 60_000.0,
    seeds: Sequence[int] = (3, 7, 13, 29),
    hazard_per_us: float = 1e-6,
    stress_scale: float = 10.0,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Detection latency of injected permanent faults per scheduler.

    ``stress_scale`` is deliberately tight (10 stress units double the
    hazard): the paper's threat model is *aging-induced* wear-out, i.e.
    faults concentrate on the stressed cores the criticality metric sends
    the test budget to.
    """
    base = replace(
        DEFAULT_CONFIG,
        fault_hazard_per_us=hazard_per_us,
        fault_stress_scale=stress_scale,
    )
    base = replace(base, horizon_us=horizon_us)
    rows = []
    mean_latency: Dict[str, float] = {}
    policies = ("power-aware", "round-robin", "unaware", "none")
    runs = run_many(
        [
            replace(base, test_policy=policy, seed=seed)
            for policy in policies
            for seed in seeds
        ],
        jobs,
    )
    for p, policy in enumerate(policies):
        injected = detected = 0
        latencies: List[float] = []
        for result in runs[p * len(seeds):(p + 1) * len(seeds)]:
            injected += len(result.fault_records)
            for record in result.fault_records:
                if record.detected:
                    detected += 1
                    latencies.append(record.detection_latency())
        rows.append(
            [
                policy,
                injected,
                detected,
                detected / injected if injected else 0.0,
                statistics.mean(latencies) if latencies else float("nan"),
                max(latencies) if latencies else float("nan"),
            ]
        )
        if latencies:
            mean_latency[policy] = statistics.mean(latencies)
    return ExperimentResult(
        experiment_id="E8",
        title="Permanent-fault detection latency per scheduler",
        claim="online defect screening detects runtime faults (motivation)",
        headers=[
            "scheduler", "injected", "detected", "detection_rate",
            "mean_latency_us", "max_latency_us",
        ],
        rows=rows,
        scalars={
            f"mean_latency[{k}]": v for k, v in mean_latency.items()
        },
    )


# ----------------------------------------------------------------------
# E9 — PID power budgeting ablation (ICCD'14 substrate)
# ----------------------------------------------------------------------
def run_e9_pid_ablation(
    horizon_us: float = 60_000.0,
    seed: int = 11,
    tdp_w: float = 50.0,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """PID budgeting vs. naive TDP policies under a bursty workload."""
    base = replace(
        DEFAULT_CONFIG,
        horizon_us=horizon_us,
        seed=seed,
        tdp_w=tdp_w,
        bursty=True,
        test_policy="none",
        profile_names=("small", "medium"),
        profile_weights=(0.5, 0.5),
    )
    policies = ("worst-case", "naive", "pid")
    runs = run_many(
        [replace(base, power_policy=policy) for policy in policies], jobs
    )
    results = dict(zip(policies, runs))
    rows = []
    for policy, result in results.items():
        rows.append(
            [
                policy,
                result.throughput_ops_per_us,
                result.metrics.average_power(horizon_us),
                result.metrics.audit.violation_rate,
                result.apps_completed,
            ]
        )
    boost = 0.0
    worst = results["worst-case"].throughput_ops_per_us
    if worst > 0:
        boost = 100.0 * (
            results["pid"].throughput_ops_per_us / worst - 1.0
        )
    return ExperimentResult(
        experiment_id="E9",
        title="PID dynamic power budgeting vs. naive TDP scheduling (ICCD'14)",
        claim="boost system throughput by over 43% compared to a naive TDP policy",
        headers=[
            "power_policy", "throughput_ops_per_us", "avg_power_w",
            "violation_rate", "apps_completed",
        ],
        rows=rows,
        scalars={"pid_boost_over_worst_case_pct": boost},
    )


# ----------------------------------------------------------------------
# E11 — heterogeneous tile mixes (repo extension, not a paper table)
# ----------------------------------------------------------------------
#: Three-type 4x4 floorplan: an IO-tile ring around a hot O3 cluster,
#: with an accelerator row along the top edge.
E11_TYPE_GRID: Tuple[str, ...] = (
    "io", "io", "io", "io",
    "io", "o3", "o3", "io",
    "io", "o3", "o3", "io",
    "accel", "accel", "accel", "accel",
)


def _tests_by_type(result: SimulationResult) -> Dict[str, int]:
    """Completed test sessions per tile type (from the per-core counts)."""
    from repro.verify.relations import _resolved_type_names

    names = _resolved_type_names(result.config)
    counts: Dict[str, int] = {}
    for core_id, tests in result.per_core_tests.items():
        name = names[core_id]
        counts[name] = counts.get(name, 0) + tests
    return counts


def run_e11_hetero(
    horizon_us: float = 60_000.0, seed: int = 11, jobs: Optional[int] = None
) -> ExperimentResult:
    """Power-aware testing on a three-type heterogeneous 4x4 floorplan.

    Extends the paper's homogeneous study (this table has no DATE'15
    counterpart): the same power-aware scheduler runs on a mixed
    IO/O3/accelerator grid under the baseline CMOS model and the
    near-threshold variant, against the homogeneous-std control.  The
    dark fraction is the *derived* quantity of the type catalog — it
    reacts to the tile mix and the technology model while the scheduler
    keeps the budget honest (violation rate stays zero).
    """
    from repro.verify.relations import _dark_fraction_of

    base = replace(
        DEFAULT_CONFIG,
        width=4,
        height=4,
        tdp_w=25.0,
        horizon_us=horizon_us,
        seed=seed,
    )
    variants = [
        ("homogeneous", "cmos", ()),
        ("hetero-3type", "cmos", E11_TYPE_GRID),
        ("hetero-3type", "ntv", E11_TYPE_GRID),
    ]
    configs = [
        replace(base, type_grid=grid, tech_model=model)
        for _, model, grid in variants
    ]
    runs = run_many(configs, jobs)
    rows = []
    for (label, model, _), config, result in zip(variants, configs, runs):
        by_type = _tests_by_type(result)
        rows.append(
            [
                label,
                model,
                _dark_fraction_of(config),
                result.throughput_ops_per_us,
                result.tests_completed,
                by_type.get("std", 0),
                by_type.get("io", 0),
                by_type.get("o3", 0),
                by_type.get("accel", 0),
                result.metrics.audit.violation_rate,
            ]
        )
    dark_by_variant = {
        f"dark_fraction[{label}/{model}]": row[2]
        for (label, model, _), row in zip(variants, rows)
    }
    return ExperimentResult(
        experiment_id="E11",
        title="Heterogeneous tile mixes under the TDP budget (4x4, 25 W)",
        claim=(
            "the power-aware approach carries over to heterogeneous "
            "platforms: the dark-silicon ratio follows the tile mix and "
            "technology model while the budget stays honoured"
        ),
        headers=[
            "platform", "tech_model", "dark_fraction",
            "throughput_ops_per_us", "tests",
            "tests_std", "tests_io", "tests_o3", "tests_accel",
            "violation_rate",
        ],
        rows=rows,
        scalars=dark_by_variant,
        notes=[
            "repo extension (no DATE'15 counterpart): certifies the "
            "pluggable core-type / technology-model layer end-to-end",
        ],
    )


def experiment_configs(
    horizon_us: float = 60_000.0, seed: int = 11
) -> Dict[str, SystemConfig]:
    """One representative *proposed-policy* config per experiment E1–E9.

    These are the configurations the invariant checker certifies (see
    :mod:`repro.verify`): each experiment's proposed-method variant —
    power-aware testing under PID budgeting — which the paper claims
    never violates the budget.  Baseline variants (power-unaware
    testing, naive TDP policies) violate by design and are exercised as
    the *negative* cases in ``tests/test_verify.py``.
    """
    from repro.core.criticality import CriticalityParameters

    base = replace(DEFAULT_CONFIG, horizon_us=horizon_us, seed=seed)
    return {
        "E1": base,
        "E2": base,
        "E3": replace(base, node_name="45nm"),
        "E4": replace(
            base,
            criticality=CriticalityParameters(
                stress_weight=0.85, time_weight=0.15,
                stress_reference=4.0, time_reference_us=3000.0,
            ),
        ),
        "E5": replace(base, arrival_rate_per_ms=4.0),
        "E6": replace(base, test_level_policy="nominal"),
        "E7": replace(base, mapper="test-aware", arrival_rate_per_ms=3.0),
        "E8": replace(
            base, fault_hazard_per_us=1e-6, fault_stress_scale=10.0
        ),
        "E9": replace(
            base,
            tdp_w=50.0,
            bursty=True,
            profile_names=("small", "medium"),
            profile_weights=(0.5, 0.5),
        ),
        "E11": replace(
            base,
            width=4,
            height=4,
            tdp_w=25.0,
            type_grid=E11_TYPE_GRID,
            tech_model="cmos",
        ),
    }


#: Registry used by the benchmark harness and the CLI example.
EXPERIMENTS = {
    "E1": run_e1_power_trace,
    "E2": run_e2_throughput_penalty,
    "E3": run_e3_tech_nodes,
    "E4": run_e4_adaptivity,
    "E5": run_e5_test_power_share,
    "E6": run_e6_vf_coverage,
    "E7": run_e7_mapping,
    "E8": run_e8_detection_latency,
    "E9": run_e9_pid_ablation,
    "E11": run_e11_hetero,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"E2"``).

    The returned result carries a provenance dict (code version, kwargs,
    digest over the rows) so archived tables stay attributable.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    result = runner(**kwargs)
    import repro
    from repro.obs.provenance import experiment_provenance

    result.provenance = experiment_provenance(
        experiment_id,
        getattr(repro, "__version__", "0"),
        result.rows,
        kwargs,
    )
    return result

"""Experiment harness: reconstructed tables/figures (E1..E9), the E10
lifetime extension, the E11 heterogeneous-platform family, and
design-choice ablations (A1..A6)."""

from repro.experiments.ablations import (
    ABLATIONS,
    run_a1_criticality_weights,
    run_a2_guard_band,
    run_a3_test_concurrency,
    run_a4_preemption,
    run_a5_thermal_guard,
    run_a6_variation,
    run_a7_rt_priorities,
    run_a8_noc_fidelity,
    run_e10_lifetime,
)
from repro.experiments.parallel import RunFailed, run_many
from repro.experiments.result import ExperimentResult
from repro.experiments.runners import (
    DEFAULT_CONFIG,
    EXPERIMENTS,
    E11_TYPE_GRID,
    run_e1_power_trace,
    run_e2_throughput_penalty,
    run_e3_tech_nodes,
    run_e4_adaptivity,
    run_e5_test_power_share,
    run_e6_vf_coverage,
    run_e7_mapping,
    run_e8_detection_latency,
    run_e9_pid_ablation,
    run_e11_hetero,
    run_experiment,
)

EXPERIMENTS.update(ABLATIONS)

__all__ = [
    "ABLATIONS",
    "DEFAULT_CONFIG",
    "E11_TYPE_GRID",
    "EXPERIMENTS",
    "ExperimentResult",
    "RunFailed",
    "run_a1_criticality_weights",
    "run_a2_guard_band",
    "run_a3_test_concurrency",
    "run_a4_preemption",
    "run_a5_thermal_guard",
    "run_a6_variation",
    "run_a7_rt_priorities",
    "run_a8_noc_fidelity",
    "run_e10_lifetime",
    "run_e1_power_trace",
    "run_e2_throughput_penalty",
    "run_e3_tech_nodes",
    "run_e4_adaptivity",
    "run_e5_test_power_share",
    "run_e6_vf_coverage",
    "run_e7_mapping",
    "run_e8_detection_latency",
    "run_e9_pid_ablation",
    "run_e11_hetero",
    "run_experiment",
    "run_many",
]

"""Parallel execution of independent simulation runs.

Experiment runners and the statistics harness evaluate many independent
(configuration × seed) points: every run is a pure function of its
:class:`~repro.core.system.SystemConfig` (all randomness flows from the
config's seed through per-run RNG streams).  That makes the sweep
embarrassingly parallel *and* order-independent: executing the same
configs serially or across a process pool must — and does — produce
byte-identical :class:`~repro.core.system.SimulationResult` data.

:func:`run_many` is the single entry point.  ``jobs=None``/``0``/``1``
falls back to the plain serial loop (no pool, no pickling), so callers
can thread a ``--jobs`` flag straight through without special-casing.
Results always come back in input order regardless of completion order.
``batch_size=`` additionally routes seed-replica groups through the
lockstep batch engine (``repro.batch``), one whole seed-chunk per
worker dispatch — the batched results are digest-identical to scalar
runs, so the choice is purely a throughput knob.

A failing run raises :class:`RunFailed` carrying the index and config
digest of the offender, in both the serial and the pooled path — a bare
exception out of a pool gives no clue *which* of 64 configs died.
``run_many`` remains all-or-nothing (a sweep with holes is not a
sweep); batch workloads that must survive failures and keep partial
results belong to ``repro.campaign``.

**Memoization.**  ``cache=`` (a :class:`repro.cache.RunCache`, or the
process default installed by :func:`repro.cache.set_default_cache`)
serves previously-computed points without re-running them: the
supervisor probes the cache for every config, dispatches only the
misses (serially or to the pool — workers return results and never
touch the cache), then stores the fresh results itself, so the index
has exactly one writer.  Cached results are pickle round-trips of the
originals, so a warm sweep is byte-identical to a cold one.  When a
process-wide journal/profiler is active the whole call is *bypassed*
(counted per config on the cache's stats): a cached result cannot
carry the observability stream of the run it skipped.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.batch import run_batch
from repro.core.system import SimulationResult, SystemConfig, run_system
from repro.obs.provenance import config_digest
from repro.telemetry import (
    TelemetrySession,
    active_telemetry,
    worker_telemetry,
)
from repro.telemetry.spans import SpanContext


class RunFailed(RuntimeError):
    """One run of a sweep failed; identifies exactly which one."""

    def __init__(self, index: int, digest: str, error: str) -> None:
        super().__init__(
            f"run {index} (config digest {digest[:12]}) failed: {error}"
        )
        self.index = index
        self.digest = digest
        self.error = error


def _run_one(payload):
    """Module-level worker so it is picklable by the process pool.

    Never raises: an exception would poison ``pool.map`` mid-iteration
    and surface with no attribution.  Failures come back as tagged
    tuples and are re-raised, attributed, by the parent.

    ``payload`` is ``(index, config)`` — with a trailing
    :class:`~repro.telemetry.spans.SpanContext` when the sweep collects
    telemetry, in which case an ok-outcome grows a trailing telemetry
    blob for the supervisor to merge.
    """
    index, config = payload[0], payload[1]
    ctx: Optional[SpanContext] = payload[2] if len(payload) > 2 else None
    try:
        with worker_telemetry(ctx, str(index), "sweep.run") as scope:
            result = run_system(config)
        if scope is not None:
            return ("ok", index, result, scope.blob())
        return ("ok", index, result)
    except Exception as exc:
        return (
            "err",
            index,
            config_digest(config),
            f"{type(exc).__name__}: {exc}",
        )


def _run_chunk(payload):
    """Module-level batched worker (picklable); mirrors :func:`_run_one`.

    Runs one seed-chunk through the lockstep batch engine and returns the
    per-seed results together with the original sweep indices, so the
    parent can slot them into place no matter in which order the pool's
    futures complete.
    """
    indices, config, seeds = payload[0], payload[1], payload[2]
    ctx: Optional[SpanContext] = payload[3] if len(payload) > 3 else None
    try:
        with worker_telemetry(ctx, str(indices[0]), "sweep.chunk") as scope:
            results = run_batch(config, seeds)
        if scope is not None:
            return ("ok", indices, results, scope.blob())
        return ("ok", indices, results)
    except Exception as exc:
        return (
            "err",
            indices,
            config_digest(replace(config, seed=seeds[0])),
            f"{type(exc).__name__}: {exc}",
        )


def _seed_chunks(
    config_list: List[SystemConfig],
    indices: List[int],
    batch_size: int,
) -> List[List[int]]:
    """Partition ``indices`` into lockstep-compatible seed chunks.

    Configs are grouped by everything-but-seed (the digest of the config
    with its seed pinned) and each group is chunked, in input order, into
    runs of at most ``batch_size`` — only seed-replicas of the *same*
    config may share a lockstep batch.  Heterogeneous sweeps degrade
    gracefully to one-lane chunks.
    """
    groups: Dict[str, List[int]] = {}
    order: List[str] = []
    for index in indices:
        key = config_digest(replace(config_list[index], seed=0))
        members = groups.get(key)
        if members is None:
            groups[key] = members = []
            order.append(key)
        members.append(index)
    chunks: List[List[int]] = []
    for key in order:
        members = groups[key]
        for start in range(0, len(members), batch_size):
            chunks.append(members[start : start + batch_size])
    return chunks


def _run_batched(
    config_list: List[SystemConfig],
    indices: List[int],
    jobs: Optional[int],
    batch_size: int,
    ctx: Optional[SpanContext] = None,
    on_blob=None,
) -> List[SimulationResult]:
    """Run the configs at ``indices`` as lockstep seed-chunks.

    Results come back in ``indices`` order regardless of pool completion
    order: every chunk carries its original indices, the supervisor slots
    completed chunks into a dense table, and error attribution is
    deterministic too (the failing chunk with the smallest leading index
    wins when several fail at once).
    """
    chunks = _seed_chunks(config_list, indices, batch_size)
    by_index: Dict[int, SimulationResult] = {}
    if not jobs or jobs == 1 or len(chunks) <= 1:
        for chunk in chunks:
            config = config_list[chunk[0]]
            seeds = [config_list[i].seed for i in chunk]
            try:
                with worker_telemetry(
                    ctx, str(chunk[0]), "sweep.chunk"
                ) as scope:
                    chunk_results = run_batch(config, seeds)
            except Exception as exc:
                raise RunFailed(
                    chunk[0],
                    config_digest(config),
                    f"{type(exc).__name__}: {exc}",
                ) from exc
            if scope is not None and on_blob is not None:
                on_blob(scope.blob())
            by_index.update(zip(chunk, chunk_results))
        return [by_index[i] for i in indices]
    payloads = [
        (chunk, config_list[chunk[0]], [config_list[i].seed for i in chunk])
        + ((ctx,) if ctx is not None else ())
        for chunk in chunks
    ]
    workers = min(jobs, len(payloads))
    failures: List[Tuple[int, str, str]] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_chunk, payload) for payload in payloads]
        for future in as_completed(futures):
            outcome = future.result()
            if outcome[0] == "err":
                failures.append((outcome[1][0], outcome[2], outcome[3]))
            else:
                by_index.update(zip(outcome[1], outcome[2]))
                if len(outcome) > 3 and on_blob is not None:
                    on_blob(outcome[3])
    if failures:
        index, digest, error = min(failures)
        raise RunFailed(index, digest, error)
    return [by_index[i] for i in indices]


def _resolve_cache(cache, n_configs: int):
    """Effective cache for one call: explicit arg, else process default.

    Returns ``None`` (and notes a bypass per config) when observability
    is active: serving a memoized result would silently drop the
    journal/profile stream the caller asked for, and storing an
    observed run would be redundant work.
    """
    if cache is None:
        from repro.cache import active_cache

        cache = active_cache()
    if cache is None:
        return None
    from repro.obs import active_journal, active_profiler

    if active_journal().enabled or active_profiler().enabled:
        cache.note_bypass(n_configs, reason="observability enabled")
        return None
    return cache


def _run_indexed(
    config_list: List[SystemConfig],
    indices: List[int],
    jobs: Optional[int],
    batch_size: Optional[int] = None,
    ctx: Optional[SpanContext] = None,
    on_blob=None,
) -> List[SimulationResult]:
    """Run the configs at ``indices``; failures keep original indices.

    With ``ctx`` set, every run (serial or pooled alike) executes under
    a worker telemetry scope and its blob is handed to ``on_blob`` —
    the serial path uses the same collect-then-merge semantics as the
    pool, which is what makes serial and pooled snapshots identical.
    """
    if batch_size is not None:
        return _run_batched(config_list, indices, jobs, batch_size, ctx, on_blob)
    if not jobs or jobs == 1 or len(indices) <= 1:
        results = []
        for index in indices:
            try:
                with worker_telemetry(ctx, str(index), "sweep.run") as scope:
                    results.append(run_system(config_list[index]))
            except Exception as exc:
                raise RunFailed(
                    index,
                    config_digest(config_list[index]),
                    f"{type(exc).__name__}: {exc}",
                ) from exc
            if scope is not None and on_blob is not None:
                on_blob(scope.blob())
        return results
    workers = min(jobs, len(indices))
    payloads = [
        (index, config_list[index]) + ((ctx,) if ctx is not None else ())
        for index in indices
    ]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        outcomes = list(pool.map(_run_one, payloads))
    for outcome in outcomes:
        if outcome[0] == "err":
            raise RunFailed(outcome[1], outcome[2], outcome[3])
        if len(outcome) > 3 and on_blob is not None:
            on_blob(outcome[3])
    return [outcome[2] for outcome in outcomes]


def run_many(
    configs: Iterable[SystemConfig],
    jobs: Optional[int] = None,
    cache=None,
    batch_size: Optional[int] = None,
) -> List[SimulationResult]:
    """Run every config, optionally across ``jobs`` worker processes.

    ``jobs=None`` (or ``0``/``1``) runs serially in-process.  Results are
    returned in the order of ``configs`` and are identical to a serial
    run: each simulation is deterministic given its config, and both
    pooled paths reassemble results by original index.

    ``batch_size`` (``None`` disables) routes the runs through the
    lockstep batch engine (:func:`repro.batch.run_batch`): configs that
    differ only in seed are grouped into chunks of at most
    ``batch_size`` lanes, and with ``jobs`` each worker process advances
    one whole chunk.  Chunk futures complete in whatever order the pool
    likes; ordering stays deterministic because every chunk carries its
    original sweep indices.  Batched results are digest-identical to
    scalar runs (that is the batch engine's contract), so serial, pooled
    and batched sweeps all produce the same rows.

    ``cache`` (a :class:`repro.cache.RunCache`; defaults to the process
    default, if any) memoizes results by salted config digest — hits
    are served without running, misses are computed (pooled/batched if
    asked) and stored by the supervisor.  Results are identical with the
    cache on, off, warm or cold.

    Raises :class:`RunFailed` (with the failing config's index and
    digest) if any run fails; nothing is cached for a failing sweep.
    For a batched sweep the failure is attributed to the failing chunk's
    first config, deterministically (smallest index wins across chunks).
    Nonsensical execution knobs fail fast, before any work starts:
    non-int ``jobs``/``batch_size`` (including bools) raise
    :class:`TypeError`, negative ``jobs`` and ``batch_size < 1`` raise
    :class:`ValueError`.
    """
    config_list = list(configs)
    if jobs is not None:
        if isinstance(jobs, bool) or not isinstance(jobs, int):
            raise TypeError(
                f"jobs must be an int or None, got "
                f"{type(jobs).__name__} ({jobs!r})"
            )
        if jobs < 0:
            raise ValueError(
                f"jobs must be non-negative (0 or 1 means serial), "
                f"got {jobs}"
            )
    if batch_size is not None:
        if isinstance(batch_size, bool) or not isinstance(batch_size, int):
            raise TypeError(
                f"batch_size must be an int or None, got "
                f"{type(batch_size).__name__} ({batch_size!r})"
            )
        if batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1 (None disables batching), "
                f"got {batch_size}"
            )
    cache = _resolve_cache(cache, len(config_list))
    # Telemetry: with a process-active registry, the sweep becomes one
    # session — workers (or serial worker scopes) collect deltas, the
    # supervisor merges them here.  Cache hits are *not* simulated, so
    # they contribute cache.* counters but no sim.* ones.
    tm = active_telemetry()
    session: Optional[TelemetrySession] = None
    ctx: Optional[SpanContext] = None
    on_blob = None
    prev_cache_tm = None
    if tm.enabled:
        session = TelemetrySession(
            "sweep", registry=tm, attrs={"n_configs": len(config_list)}
        )
        ctx = session.ctx
        on_blob = session.merge_blob
        if cache is not None:
            prev_cache_tm = cache.telemetry
            cache.bind_telemetry(tm)
    try:
        if cache is None:
            return _run_indexed(
                config_list,
                list(range(len(config_list))),
                jobs,
                batch_size,
                ctx,
                on_blob,
            )
        results: List[Optional[SimulationResult]] = [None] * len(config_list)
        miss_indices: List[int] = []
        for index, config in enumerate(config_list):
            cached = cache.get_result(config)
            if cached is not None:
                results[index] = cached
            else:
                miss_indices.append(index)
        if miss_indices:
            fresh = _run_indexed(
                config_list, miss_indices, jobs, batch_size, ctx, on_blob
            )
            for index, result in zip(miss_indices, fresh):
                cache.put_result(config_list[index], result)
                results[index] = result
        return results  # type: ignore[return-value]
    finally:
        if prev_cache_tm is not None:
            cache.telemetry = prev_cache_tm
        if session is not None:
            session.finish(n_configs=len(config_list))

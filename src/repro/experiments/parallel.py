"""Parallel execution of independent simulation runs.

Experiment runners and the statistics harness evaluate many independent
(configuration × seed) points: every run is a pure function of its
:class:`~repro.core.system.SystemConfig` (all randomness flows from the
config's seed through per-run RNG streams).  That makes the sweep
embarrassingly parallel *and* order-independent: executing the same
configs serially or across a process pool must — and does — produce
byte-identical :class:`~repro.core.system.SimulationResult` data.

:func:`run_many` is the single entry point.  ``jobs=None``/``0``/``1``
falls back to the plain serial loop (no pool, no pickling), so callers
can thread a ``--jobs`` flag straight through without special-casing.
Results always come back in input order regardless of completion order.

A failing run raises :class:`RunFailed` carrying the index and config
digest of the offender, in both the serial and the pooled path — a bare
exception out of a pool gives no clue *which* of 64 configs died.
``run_many`` remains all-or-nothing (a sweep with holes is not a
sweep); batch workloads that must survive failures and keep partial
results belong to ``repro.campaign``.

**Memoization.**  ``cache=`` (a :class:`repro.cache.RunCache`, or the
process default installed by :func:`repro.cache.set_default_cache`)
serves previously-computed points without re-running them: the
supervisor probes the cache for every config, dispatches only the
misses (serially or to the pool — workers return results and never
touch the cache), then stores the fresh results itself, so the index
has exactly one writer.  Cached results are pickle round-trips of the
originals, so a warm sweep is byte-identical to a cold one.  When a
process-wide journal/profiler is active the whole call is *bypassed*
(counted per config on the cache's stats): a cached result cannot
carry the observability stream of the run it skipped.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Tuple

from repro.core.system import SimulationResult, SystemConfig, run_system
from repro.obs.provenance import config_digest


class RunFailed(RuntimeError):
    """One run of a sweep failed; identifies exactly which one."""

    def __init__(self, index: int, digest: str, error: str) -> None:
        super().__init__(
            f"run {index} (config digest {digest[:12]}) failed: {error}"
        )
        self.index = index
        self.digest = digest
        self.error = error


def _run_one(payload: Tuple[int, SystemConfig]):
    """Module-level worker so it is picklable by the process pool.

    Never raises: an exception would poison ``pool.map`` mid-iteration
    and surface with no attribution.  Failures come back as tagged
    tuples and are re-raised, attributed, by the parent.
    """
    index, config = payload
    try:
        return ("ok", index, run_system(config))
    except Exception as exc:
        return (
            "err",
            index,
            config_digest(config),
            f"{type(exc).__name__}: {exc}",
        )


def _resolve_cache(cache, n_configs: int):
    """Effective cache for one call: explicit arg, else process default.

    Returns ``None`` (and notes a bypass per config) when observability
    is active: serving a memoized result would silently drop the
    journal/profile stream the caller asked for, and storing an
    observed run would be redundant work.
    """
    if cache is None:
        from repro.cache import active_cache

        cache = active_cache()
    if cache is None:
        return None
    from repro.obs import active_journal, active_profiler

    if active_journal().enabled or active_profiler().enabled:
        cache.note_bypass(n_configs, reason="observability enabled")
        return None
    return cache


def _run_indexed(
    config_list: List[SystemConfig],
    indices: List[int],
    jobs: Optional[int],
) -> List[SimulationResult]:
    """Run the configs at ``indices``; failures keep original indices."""
    if not jobs or jobs == 1 or len(indices) <= 1:
        results = []
        for index in indices:
            try:
                results.append(run_system(config_list[index]))
            except Exception as exc:
                raise RunFailed(
                    index,
                    config_digest(config_list[index]),
                    f"{type(exc).__name__}: {exc}",
                ) from exc
        return results
    workers = min(jobs, len(indices))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        outcomes = list(
            pool.map(
                _run_one, [(index, config_list[index]) for index in indices]
            )
        )
    for outcome in outcomes:
        if outcome[0] == "err":
            raise RunFailed(outcome[1], outcome[2], outcome[3])
    return [outcome[2] for outcome in outcomes]


def run_many(
    configs: Iterable[SystemConfig],
    jobs: Optional[int] = None,
    cache=None,
) -> List[SimulationResult]:
    """Run every config, optionally across ``jobs`` worker processes.

    ``jobs=None`` (or ``0``/``1``) runs serially in-process.  Results are
    returned in the order of ``configs`` and are identical to a serial
    run: each simulation is deterministic given its config, and
    ``ProcessPoolExecutor.map`` preserves input order.

    ``cache`` (a :class:`repro.cache.RunCache`; defaults to the process
    default, if any) memoizes results by salted config digest — hits
    are served without running, misses are computed (pooled if asked)
    and stored by the supervisor.  Results are identical with the cache
    on, off, warm or cold.

    Raises :class:`RunFailed` (with the failing config's index and
    digest) if any run fails; nothing is cached for a failing sweep.
    """
    config_list = list(configs)
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    cache = _resolve_cache(cache, len(config_list))
    if cache is None:
        return _run_indexed(
            config_list, list(range(len(config_list))), jobs
        )
    results: List[Optional[SimulationResult]] = [None] * len(config_list)
    miss_indices: List[int] = []
    for index, config in enumerate(config_list):
        cached = cache.get_result(config)
        if cached is not None:
            results[index] = cached
        else:
            miss_indices.append(index)
    if miss_indices:
        fresh = _run_indexed(config_list, miss_indices, jobs)
        for index, result in zip(miss_indices, fresh):
            cache.put_result(config_list[index], result)
            results[index] = result
    return results  # type: ignore[return-value]

"""Parallel execution of independent simulation runs.

Experiment runners and the statistics harness evaluate many independent
(configuration × seed) points: every run is a pure function of its
:class:`~repro.core.system.SystemConfig` (all randomness flows from the
config's seed through per-run RNG streams).  That makes the sweep
embarrassingly parallel *and* order-independent: executing the same
configs serially or across a process pool must — and does — produce
byte-identical :class:`~repro.core.system.SimulationResult` data.

:func:`run_many` is the single entry point.  ``jobs=None``/``0``/``1``
falls back to the plain serial loop (no pool, no pickling), so callers
can thread a ``--jobs`` flag straight through without special-casing.
Results always come back in input order regardless of completion order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional

from repro.core.system import SimulationResult, SystemConfig, run_system


def _run_one(config: SystemConfig) -> SimulationResult:
    """Module-level worker so it is picklable by the process pool."""
    return run_system(config)


def run_many(
    configs: Iterable[SystemConfig], jobs: Optional[int] = None
) -> List[SimulationResult]:
    """Run every config, optionally across ``jobs`` worker processes.

    ``jobs=None`` (or ``0``/``1``) runs serially in-process.  Results are
    returned in the order of ``configs`` and are identical to a serial
    run: each simulation is deterministic given its config, and
    ``ProcessPoolExecutor.map`` preserves input order.
    """
    config_list = list(configs)
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if not jobs or jobs == 1 or len(config_list) <= 1:
        return [run_system(config) for config in config_list]
    workers = min(jobs, len(config_list))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_one, config_list))

"""Parallel execution of independent simulation runs.

Experiment runners and the statistics harness evaluate many independent
(configuration × seed) points: every run is a pure function of its
:class:`~repro.core.system.SystemConfig` (all randomness flows from the
config's seed through per-run RNG streams).  That makes the sweep
embarrassingly parallel *and* order-independent: executing the same
configs serially or across a process pool must — and does — produce
byte-identical :class:`~repro.core.system.SimulationResult` data.

:func:`run_many` is the single entry point.  ``jobs=None``/``0``/``1``
falls back to the plain serial loop (no pool, no pickling), so callers
can thread a ``--jobs`` flag straight through without special-casing.
Results always come back in input order regardless of completion order.

A failing run raises :class:`RunFailed` carrying the index and config
digest of the offender, in both the serial and the pooled path — a bare
exception out of a pool gives no clue *which* of 64 configs died.
``run_many`` remains all-or-nothing (a sweep with holes is not a
sweep); batch workloads that must survive failures and keep partial
results belong to ``repro.campaign``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Tuple

from repro.core.system import SimulationResult, SystemConfig, run_system
from repro.obs.provenance import config_digest


class RunFailed(RuntimeError):
    """One run of a sweep failed; identifies exactly which one."""

    def __init__(self, index: int, digest: str, error: str) -> None:
        super().__init__(
            f"run {index} (config digest {digest[:12]}) failed: {error}"
        )
        self.index = index
        self.digest = digest
        self.error = error


def _run_one(payload: Tuple[int, SystemConfig]):
    """Module-level worker so it is picklable by the process pool.

    Never raises: an exception would poison ``pool.map`` mid-iteration
    and surface with no attribution.  Failures come back as tagged
    tuples and are re-raised, attributed, by the parent.
    """
    index, config = payload
    try:
        return ("ok", index, run_system(config))
    except Exception as exc:
        return (
            "err",
            index,
            config_digest(config),
            f"{type(exc).__name__}: {exc}",
        )


def run_many(
    configs: Iterable[SystemConfig], jobs: Optional[int] = None
) -> List[SimulationResult]:
    """Run every config, optionally across ``jobs`` worker processes.

    ``jobs=None`` (or ``0``/``1``) runs serially in-process.  Results are
    returned in the order of ``configs`` and are identical to a serial
    run: each simulation is deterministic given its config, and
    ``ProcessPoolExecutor.map`` preserves input order.

    Raises :class:`RunFailed` (with the failing config's index and
    digest) if any run fails.
    """
    config_list = list(configs)
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if not jobs or jobs == 1 or len(config_list) <= 1:
        results = []
        for index, config in enumerate(config_list):
            try:
                results.append(run_system(config))
            except Exception as exc:
                raise RunFailed(
                    index,
                    config_digest(config),
                    f"{type(exc).__name__}: {exc}",
                ) from exc
        return results
    workers = min(jobs, len(config_list))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        outcomes = list(pool.map(_run_one, enumerate(config_list)))
    for outcome in outcomes:
        if outcome[0] == "err":
            raise RunFailed(outcome[1], outcome[2], outcome[3])
    return [outcome[2] for outcome in outcomes]

"""Experiment result container shared by all E1..E9 runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.metrics.report import format_table, sparkline


@dataclass
class ExperimentResult:
    """Table + optional series produced by one experiment runner."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[List[object]]
    claim: str = ""
    notes: List[str] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    scalars: Dict[str, float] = field(default_factory=dict)
    #: Run provenance (experiment id, code version, kwargs, rows digest);
    #: filled by :func:`repro.experiments.run_experiment`.
    provenance: Dict[str, object] = field(default_factory=dict)

    def render(self, precision: int = 3) -> str:
        """Human-readable report block for terminals and logs."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.claim:
            parts.append(f"claim: {self.claim}")
        parts.append(format_table(self.headers, self.rows, precision=precision))
        for name, values in sorted(self.series.items()):
            parts.append(f"{name}: {sparkline(values)}")
        for note in self.notes:
            parts.append(f"note: {note}")
        if self.scalars:
            rendered = ", ".join(
                f"{k}={v:.4g}" for k, v in sorted(self.scalars.items())
            )
            parts.append(f"scalars: {rendered}")
        return "\n".join(parts)

    def row_dicts(self) -> List[Dict[str, object]]:
        """Rows as dictionaries keyed by column header."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def to_csv(self) -> str:
        """The result table as CSV text (for external plotting)."""
        from repro.metrics.export import rows_to_csv

        return rows_to_csv(self.headers, self.rows)

    def series_csv(self) -> str:
        """All series as CSV columns (index column is the sample rank)."""
        from repro.metrics.export import series_to_csv

        if not self.series:
            raise ValueError(f"{self.experiment_id} has no series")
        n = max(len(v) for v in self.series.values())
        columns: Dict[str, List[float]] = {"sample": list(range(n))}
        for name, values in sorted(self.series.items()):
            padded = list(values) + [float("nan")] * (n - len(values))
            columns[name] = padded
        return series_to_csv(columns)

"""Extension experiment (E10) and design-choice ablations (A1..A6).

DESIGN.md calls out the design choices of the reproduction; each ablation
here isolates one of them:

* **E10** — lifetime extension from utilization-oriented mapping (the
  DATE'16 companion claim: wear-levelled mapping prolongs system life).
* **A1** — criticality metric composition (stress-only / balanced /
  time-only): what each term buys.
* **A2** — budget guard band: violation rate vs. throughput.
* **A3** — concurrent-test cap: campaign speed vs. intrusiveness.
* **A4** — test preemption (abort vs. reserve) for the proposed
  scheduler: where the non-intrusiveness actually comes from.
* **A5** — thermal guard margin (with the RC thermal model enabled).
* **A6** — process variation on/off: robustness of the scheduling claims
  on a non-uniform die.
"""

from __future__ import annotations

import statistics
from dataclasses import replace
from typing import Dict, List, Sequence

from repro.aging.lifetime import LifetimeAnalyzer, LifetimeParameters
from repro.core.criticality import CriticalityParameters
from repro.core.system import SystemConfig, run_system
from repro.experiments.result import ExperimentResult
from repro.experiments.runners import DEFAULT_CONFIG, _penalty_pct
from repro.workload.scenarios import scenario_config_kwargs


# ----------------------------------------------------------------------
# E10 — lifetime extension from wear-levelling mapping (DATE'16 claim)
# ----------------------------------------------------------------------
def run_e10_lifetime(
    horizon_us: float = 60_000.0,
    seeds: Sequence[int] = (11, 23, 47),
    scenario: str = "moderate",
) -> ExperimentResult:
    """Expected chip lifetime under contiguous vs. utilization-oriented
    mapping.

    The DATE'16 companion reports up to 62% end-of-life reliability
    improvement from reliability-aware mapping; the mechanism our mapper
    shares with it is wear levelling — spreading stress so the worst core
    ages slower.
    """
    base = replace(
        DEFAULT_CONFIG, horizon_us=horizon_us, **scenario_config_kwargs(scenario)
    )
    analyzer = LifetimeAnalyzer(LifetimeParameters())
    rows = []
    reports: Dict[str, List] = {}
    for mapper in ("contiguous", "scatter", "test-aware"):
        per_seed = []
        for seed in seeds:
            result = run_system(replace(base, mapper=mapper, seed=seed))
            per_seed.append(
                analyzer.analyze(result.per_core_age_stress, horizon_us)
            )
        reports[mapper] = per_seed
        rows.append(
            [
                mapper,
                statistics.mean(r.stress_max for r in per_seed),
                statistics.mean(r.wear_imbalance for r in per_seed),
                statistics.mean(r.min_reliability for r in per_seed),
                statistics.mean(r.expected_lifetime_hours for r in per_seed),
            ]
        )
    gains = [
        LifetimeAnalyzer.lifetime_gain_pct(b, i)
        for b, i in zip(reports["contiguous"], reports["test-aware"])
    ]
    return ExperimentResult(
        experiment_id="E10",
        title="Lifetime extension from utilization-oriented mapping",
        claim="wear-levelled runtime mapping prolongs system lifetime (DATE'16)",
        headers=[
            "mapper", "max_stress", "wear_imbalance",
            "min_reliability", "lifetime_hours",
        ],
        rows=rows,
        scalars={"lifetime_gain_pct": statistics.mean(gains)},
    )


# ----------------------------------------------------------------------
# A1 — criticality metric composition
# ----------------------------------------------------------------------
def run_a1_criticality_weights(
    horizon_us: float = 60_000.0, seed: int = 11
) -> ExperimentResult:
    """Stress-only vs. balanced vs. time-only criticality."""
    variants = {
        "stress-only": CriticalityParameters(
            stress_weight=1.0, time_weight=0.0,
            stress_reference=4.0, time_reference_us=3000.0,
        ),
        "balanced": CriticalityParameters(),
        "time-only": CriticalityParameters(
            stress_weight=0.0, time_weight=1.0,
            stress_reference=4.0, time_reference_us=3000.0,
        ),
    }
    base = replace(
        DEFAULT_CONFIG, horizon_us=horizon_us, seed=seed,
        fault_hazard_per_us=1e-6, fault_stress_scale=10.0,
    )
    rows = []
    corr_by_variant = {}
    for name, criticality in variants.items():
        result = run_system(replace(base, criticality=criticality))
        busy = result.per_core_busy_us
        tests = result.per_core_tests
        ids = sorted(busy)
        xs = [busy[i] for i in ids]
        ys = [float(tests.get(i, 0)) for i in ids]
        corr = (
            statistics.correlation(xs, ys)
            if statistics.pstdev(xs) > 0 and statistics.pstdev(ys) > 0
            else 0.0
        )
        corr_by_variant[name] = corr
        detected = sum(1 for r in result.fault_records if r.detected)
        rows.append(
            [
                name,
                result.tests_completed,
                corr,
                len(result.fault_records),
                detected,
                result.test_power_share,
            ]
        )
    return ExperimentResult(
        experiment_id="A1",
        title="Ablation: criticality metric composition",
        claim="the stress term drives adaptivity; the time term bounds staleness",
        headers=[
            "criticality", "tests", "corr_busy_tests",
            "injected", "detected", "test_energy_share",
        ],
        rows=rows,
        scalars={f"corr[{k}]": v for k, v in corr_by_variant.items()},
    )


# ----------------------------------------------------------------------
# A2 — guard band sweep
# ----------------------------------------------------------------------
def run_a2_guard_band(
    horizon_us: float = 60_000.0,
    seed: int = 11,
    fractions: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
) -> ExperimentResult:
    """TDP guard band: safety margin vs. throughput given away."""
    base = replace(DEFAULT_CONFIG, horizon_us=horizon_us, seed=seed)
    rows = []
    for fraction in fractions:
        result = run_system(replace(base, guard_fraction=fraction))
        rows.append(
            [
                fraction,
                result.throughput_ops_per_us,
                result.metrics.average_power(horizon_us),
                result.metrics.audit.violation_rate,
                result.tests_completed,
            ]
        )
    return ExperimentResult(
        experiment_id="A2",
        title="Ablation: TDP guard band",
        claim="a small guard band absorbs inter-epoch wiggle without costing throughput",
        headers=[
            "guard_fraction", "throughput_ops_per_us", "avg_power_w",
            "violation_rate", "tests",
        ],
        rows=rows,
        scalars={
            "violations_at_zero_guard": rows[0][3],
            "violations_at_default_guard": rows[1][3],
        },
    )


# ----------------------------------------------------------------------
# A3 — concurrent-test cap
# ----------------------------------------------------------------------
def run_a3_test_concurrency(
    horizon_us: float = 60_000.0,
    seed: int = 11,
    caps: Sequence[int] = (1, 2, 4, 8, 16),
) -> ExperimentResult:
    """How many simultaneous SBST sessions the chip should allow."""
    base = replace(DEFAULT_CONFIG, horizon_us=horizon_us, seed=seed)
    off = run_system(replace(base, test_policy="none"))
    rows = []
    for cap in caps:
        result = run_system(replace(base, max_concurrent_tests=cap))
        rows.append(
            [
                cap,
                result.tests_completed,
                result.test_stats.mean_gap_us(),
                _penalty_pct(
                    off.throughput_ops_per_us, result.throughput_ops_per_us
                ),
                result.test_power_share,
                result.metrics.audit.violation_rate,
            ]
        )
    return ExperimentResult(
        experiment_id="A3",
        title="Ablation: concurrent test sessions cap",
        claim="test campaign speed saturates while the penalty stays flat",
        headers=[
            "max_concurrent", "tests", "mean_gap_us",
            "penalty_pct", "test_energy_share", "violation_rate",
        ],
        rows=rows,
    )


# ----------------------------------------------------------------------
# A4 — preemption policy
# ----------------------------------------------------------------------
def run_a4_preemption(
    horizon_us: float = 60_000.0, seed: int = 11
) -> ExperimentResult:
    """Abort-on-demand vs. reserved sessions for the proposed scheduler."""
    base = replace(DEFAULT_CONFIG, horizon_us=horizon_us, seed=seed)
    off = run_system(replace(base, test_policy="none"))
    rows = []
    for policy in ("abort", "reserve"):
        result = run_system(replace(base, test_preemption=policy))
        rows.append(
            [
                policy,
                _penalty_pct(
                    off.throughput_ops_per_us, result.throughput_ops_per_us
                ),
                result.tests_completed,
                result.test_stats.aborted,
                result.metrics.mean_waiting_time() or 0.0,
            ]
        )
    return ExperimentResult(
        experiment_id="A4",
        title="Ablation: test preemption (abort vs. reserve)",
        claim="preemptable tests are where the non-intrusiveness comes from",
        headers=["preemption", "penalty_pct", "tests", "aborted", "mean_wait_us"],
        rows=rows,
        scalars={
            "abort_penalty_pct": rows[0][1],
            "reserve_penalty_pct": rows[1][1],
        },
    )


# ----------------------------------------------------------------------
# A5 — thermal guard margin (RC thermal model enabled)
# ----------------------------------------------------------------------
def run_a5_thermal_guard(
    horizon_us: float = 60_000.0,
    seed: int = 11,
    margins: Sequence[float] = (0.0, 5.0, 15.0),
) -> ExperimentResult:
    """Defer tests when the die is within ``margin`` °C of the limit.

    Uses a thermally tight package (higher self resistance, 72 °C limit)
    so the saturating workload genuinely approaches the junction limit —
    with the roomy default package the guard never binds and the ablation
    would be vacuous.
    """
    from repro.platform.thermal import ThermalParameters

    tight_package = ThermalParameters(
        r_self_c_per_w=18.0, r_lateral_c_per_w=10.0, limit_c=72.0
    )
    base = replace(
        DEFAULT_CONFIG,
        horizon_us=horizon_us,
        seed=seed,
        thermal_enabled=True,
        thermal=tight_package,
    )
    rows = []
    for margin in margins:
        result = run_system(replace(base, thermal_test_margin_c=margin))
        rows.append(
            [
                margin,
                result.peak_temperature_c,
                result.tests_completed,
                result.throughput_ops_per_us,
            ]
        )
    return ExperimentResult(
        experiment_id="A5",
        title="Ablation: thermal guard margin for test admission",
        claim="testing defers on a hot die; a few degrees of margin suffice",
        headers=["margin_c", "peak_temp_c", "tests", "throughput_ops_per_us"],
        rows=rows,
        scalars={"peak_temp_at_default": rows[1][1]},
    )


# ----------------------------------------------------------------------
# A6 — process variation on/off
# ----------------------------------------------------------------------
def run_a6_variation(
    horizon_us: float = 60_000.0, seed: int = 11
) -> ExperimentResult:
    """Do the headline claims survive a non-uniform die?"""
    rows = []
    penalties = {}
    for enabled in (False, True):
        base = replace(
            DEFAULT_CONFIG,
            horizon_us=horizon_us,
            seed=seed,
            variation_enabled=enabled,
        )
        off = run_system(replace(base, test_policy="none"))
        on = run_system(base)
        penalty = _penalty_pct(
            off.throughput_ops_per_us, on.throughput_ops_per_us
        )
        label = "varied-die" if enabled else "uniform-die"
        penalties[label] = penalty
        rows.append(
            [
                label,
                on.throughput_ops_per_us,
                penalty,
                on.tests_completed,
                on.metrics.audit.violation_rate,
            ]
        )
    return ExperimentResult(
        experiment_id="A6",
        title="Ablation: process variation on/off",
        claim="<1% penalty and budget safety hold on a variation-affected die",
        headers=[
            "die", "throughput_ops_per_us", "penalty_pct",
            "tests", "violation_rate",
        ],
        rows=rows,
        scalars={f"penalty[{k}]": v for k, v in penalties.items()},
    )


# ----------------------------------------------------------------------
# A7 — mixed-criticality priorities (ICCD'14 workload model)
# ----------------------------------------------------------------------
def run_a7_rt_priorities(
    horizon_us: float = 60_000.0, seed: int = 11
) -> ExperimentResult:
    """Hard/soft/no real-time priorities vs. plain FIFO service.

    The ICCD'14 substrate "distinguishes applications with hard Real-Time,
    soft Real-Time and no Real-Time constraints and treats them with
    appropriate priorities": the queue is served in class-priority order
    and the PID's DVFS favours RT cores.
    """
    base = replace(
        DEFAULT_CONFIG,
        horizon_us=horizon_us,
        seed=seed,
        profile_names=("hard-rt-small", "soft-rt-medium", "large"),
        profile_weights=(0.3, 0.4, 0.3),
    )
    rows = []
    waits: Dict[str, Dict[str, float]] = {}
    for enabled in (False, True):
        result = run_system(replace(base, rt_priorities=enabled))
        by_class = result.metrics.mean_waiting_by_class()
        label = "priorities" if enabled else "fifo"
        waits[label] = by_class
        for rt_class in ("hard-rt", "soft-rt", "best-effort"):
            rows.append(
                [
                    label,
                    rt_class,
                    by_class.get(rt_class, float("nan")),
                    result.throughput_ops_per_us,
                    result.metrics.audit.violation_rate,
                ]
            )
    speedup = 0.0
    if "hard-rt" in waits["fifo"] and waits["priorities"].get("hard-rt", 0) > 0:
        speedup = waits["fifo"]["hard-rt"] / waits["priorities"]["hard-rt"]
    return ExperimentResult(
        experiment_id="A7",
        title="Mixed-criticality priorities (hard/soft/no real-time)",
        claim=(
            "distinguishes hard/soft/no Real-Time applications and treats "
            "them with appropriate priorities (ICCD'14)"
        ),
        headers=[
            "queueing", "rt_class", "mean_wait_us",
            "throughput_ops_per_us", "violation_rate",
        ],
        rows=rows,
        scalars={"hard_rt_wait_speedup": speedup},
    )


# ----------------------------------------------------------------------
# A8 — NoC model fidelity (substitution validation)
# ----------------------------------------------------------------------
def run_a8_noc_fidelity(
    horizon_us: float = 60_000.0, seed: int = 11
) -> ExperimentResult:
    """Analytic vs. queued (store-and-forward) NoC under the same workload.

    DESIGN.md substitutes the authors' cycle-level NoC with an analytic
    model; this experiment quantifies what that abstraction costs by
    re-running the headline configuration with explicit temporal link
    queueing.  Small deltas justify the substitution.
    """
    base = replace(DEFAULT_CONFIG, horizon_us=horizon_us, seed=seed)
    rows = []
    thr = {}
    for mode in ("analytic", "queued"):
        result = run_system(replace(base, noc_mode=mode))
        thr[mode] = result.throughput_ops_per_us
        rows.append(
            [
                mode,
                result.throughput_ops_per_us,
                result.metrics.mean_waiting_time() or 0.0,
                result.tests_completed,
                result.noc_avg_hops,
                result.metrics.audit.violation_rate,
            ]
        )
    delta = 0.0
    if thr["analytic"] > 0:
        delta = 100.0 * abs(thr["queued"] / thr["analytic"] - 1.0)
    return ExperimentResult(
        experiment_id="A8",
        title="NoC abstraction fidelity: analytic vs. queued store-and-forward",
        claim="the analytic NoC substitution does not move the headline results",
        headers=[
            "noc_model", "throughput_ops_per_us", "mean_wait_us",
            "tests", "avg_hops", "violation_rate",
        ],
        rows=rows,
        scalars={"throughput_delta_pct": delta},
    )


ABLATIONS = {
    "E10": run_e10_lifetime,
    "A1": run_a1_criticality_weights,
    "A2": run_a2_guard_band,
    "A3": run_a3_test_concurrency,
    "A4": run_a4_preemption,
    "A5": run_a5_thermal_guard,
    "A6": run_a6_variation,
    "A7": run_a7_rt_priorities,
    "A8": run_a8_noc_fidelity,
}

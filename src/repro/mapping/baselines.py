"""Baseline runtime mappers.

* :class:`ContiguousMapper` — CoNA/SHiC-style state of the art the paper
  builds on: pick the first node whose square neighbourhood is freest,
  then place tasks contiguously around it for communication locality.
* :class:`ScatterMapper` — naive first-free placement in core-id order;
  destroys locality, used to show the value of contiguity.
* :class:`RandomFreeMapper` — uniformly random placement on free cores
  from an injected RNG stream (a classic mapping-paper baseline).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.mapping.base import (
    MappingContext,
    RuntimeMapper,
    assign_tasks_near,
    pick_first_node,
)
from repro.workload.application import ApplicationInstance


class ContiguousMapper(RuntimeMapper):
    """First-node selection + contiguous nearest-neighbour placement."""

    name = "contiguous"

    def map_application(
        self, app: ApplicationInstance, ctx: MappingContext
    ) -> Optional[Dict[int, int]]:
        if app.graph.n_tasks > len(ctx.available):
            return None
        first = pick_first_node(ctx, app.graph.n_tasks)
        if first is None:
            return None
        return assign_tasks_near(app, ctx, first)


class ScatterMapper(RuntimeMapper):
    """Naive mapper: tasks take free cores in core-id order."""

    name = "scatter"

    def map_application(
        self, app: ApplicationInstance, ctx: MappingContext
    ) -> Optional[Dict[int, int]]:
        cores = sorted(ctx.available, key=lambda c: c.core_id)
        if len(app.graph) > len(cores):
            return None
        order = app.graph.topo_order
        return {task_id: cores[i].core_id for i, task_id in enumerate(order)}


class RandomFreeMapper(RuntimeMapper):
    """Uniformly random placement on available cores."""

    name = "random"

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def map_application(
        self, app: ApplicationInstance, ctx: MappingContext
    ) -> Optional[Dict[int, int]]:
        cores = sorted(ctx.available, key=lambda c: c.core_id)
        if len(app.graph) > len(cores):
            return None
        chosen = self.rng.sample(cores, len(app.graph))
        order = app.graph.topo_order
        return {task_id: chosen[i].core_id for i, task_id in enumerate(order)}

"""Runtime-mapping substrate: interface, shared machinery, baselines."""

from repro.mapping.base import (
    MappingContext,
    RuntimeMapper,
    assign_tasks_near,
    pick_first_node,
    square_region_score,
)
from repro.mapping.baselines import ContiguousMapper, RandomFreeMapper, ScatterMapper
from repro.mapping.mappro import MapProMapper

__all__ = [
    "ContiguousMapper",
    "MapProMapper",
    "MappingContext",
    "RandomFreeMapper",
    "RuntimeMapper",
    "ScatterMapper",
    "assign_tasks_near",
    "pick_first_node",
    "square_region_score",
]

"""MapPro-style proactive first-node selection (NOCS'15 companion).

MapPro ("Proactive Runtime Mapping for Dynamic Workloads by Quantifying
the Ripple Effect of Applications on Networks-on-Chip", NOCS 2015, same
group) selects the *region* for an incoming application proactively: the
chip maintains, for every node, a **spatial availability potential** that
quantifies how much free, un-fragmented area surrounds it; mapping an
application degrades the potential of the nodes around it (the "ripple"),
and the next application is steered to the node with the best remaining
potential for its size class.

We reproduce the quantified-potential idea with a distance-discounted
availability field:

``potential(n) = Σ_{m available} gamma^{manhattan(n, m)}``

computed over the currently available cores with a per-size radius cut.
Compared to the plain SHiC-style square score (our ``ContiguousMapper``),
the exponential discount prefers *round, dense* free regions over
elongated ones of equal area, which is what reduces dispersion and
congestion in the MapPro evaluation.

The field is recomputed per mapping request from the available set —
O(available² ) with a radius cut — which at mesh sizes up to 16×16 is
far below the cost of the simulation step; the incremental-update
optimisation of the paper is an implementation detail we do not need.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mapping.base import (
    MappingContext,
    RuntimeMapper,
    assign_tasks_near,
)
from repro.noc.topology import Mesh
from repro.platform.core import Core
from repro.workload.application import ApplicationInstance


class MapProMapper(RuntimeMapper):
    """Proactive region selection via a distance-discounted potential."""

    name = "mappro"

    def __init__(self, gamma: float = 0.6) -> None:
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        self.gamma = gamma

    # ------------------------------------------------------------------
    def radius_for(self, n_tasks: int) -> int:
        """Smallest square radius whose area holds the application."""
        radius = 1
        while (2 * radius + 1) ** 2 < n_tasks:
            radius += 1
        return radius

    def potential(
        self, ctx: MappingContext, core: Core, radius: int
    ) -> float:
        """Distance-discounted availability around ``core``."""
        total = 0.0
        for other in ctx.available:
            distance = Mesh.manhattan(core.position, other.position)
            if distance <= 2 * radius:
                total += self.gamma ** distance
        return total

    def potential_field(
        self, ctx: MappingContext, n_tasks: int
    ) -> Dict[int, float]:
        """The potential of every available node for this app size."""
        radius = self.radius_for(n_tasks)
        return {
            core.core_id: self.potential(ctx, core, radius)
            for core in ctx.available
        }

    # ------------------------------------------------------------------
    def map_application(
        self, app: ApplicationInstance, ctx: MappingContext
    ) -> Optional[Dict[int, int]]:
        if app.graph.n_tasks > len(ctx.available):
            return None
        field = self.potential_field(ctx, app.graph.n_tasks)
        if not field:
            return None
        by_core: Dict[int, Core] = {c.core_id: c for c in ctx.available}
        best_id = min(field, key=lambda cid: (-field[cid], cid))
        return assign_tasks_near(app, ctx, by_core[best_id])

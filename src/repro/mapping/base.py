"""Runtime-mapper interface and shared placement machinery.

A runtime mapper receives the head-of-queue application instance and the
current chip state and returns a ``task_id -> core_id`` placement, or
``None`` when it cannot (or chooses not to) place the application yet.

The placement machinery shared by the contiguous mappers (baseline CoNA-
style and the proposed test-aware mapper) is factored here:

* :func:`square_region_score` — SHiC-style first-node scoring: how many
  allocatable cores sit in the square of radius ``r`` around a node;
* :func:`assign_tasks_near` — greedy task-to-core assignment that walks the
  task graph in topological order and puts each task on the allocatable
  core minimising communication distance to its already-placed
  predecessors (with a pluggable tie-breaking cost, which is where the
  proposed mapper injects utilization/criticality awareness).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.noc.topology import Mesh
from repro.platform.chip import Chip
from repro.platform.core import Core
from repro.workload.application import ApplicationInstance

#: Extra placement cost for a candidate core, injected by mapper subclasses
#: (now, core) -> cost in "hop-equivalents".
CoreCost = Callable[[float, Core], float]


class MappingContext:
    """Everything a mapper may consult besides the chip itself."""

    def __init__(
        self,
        chip: Chip,
        mesh: Mesh,
        now: float,
        available: List[Core],
    ) -> None:
        self.chip = chip
        self.mesh = mesh
        self.now = now
        self.available = available
        self.available_ids = {core.core_id for core in available}


class RuntimeMapper:
    """Interface for runtime mapping policies."""

    name = "base"

    def map_application(
        self, app: ApplicationInstance, ctx: MappingContext
    ) -> Optional[Dict[int, int]]:  # pragma: no cover - interface
        raise NotImplementedError


def square_region_score(ctx: MappingContext, core: Core, radius: int) -> int:
    """Number of available cores in the ``(2r+1)²`` square centred on core."""
    count = 0
    for other in ctx.available:
        if abs(other.x - core.x) <= radius and abs(other.y - core.y) <= radius:
            count += 1
    return count


def pick_first_node(
    ctx: MappingContext, n_tasks: int, extra_cost: Optional[CoreCost] = None
) -> Optional[Core]:
    """SHiC-style first-node selection.

    The radius is the smallest square that could hold the application; the
    chosen node maximises available cores in that square (most-contiguous
    region), with ``extra_cost`` subtracted for policy-aware biasing and
    core id as the final deterministic tie-break.
    """
    if not ctx.available:
        return None
    radius = 1
    while (2 * radius + 1) ** 2 < n_tasks:
        radius += 1
    best: Optional[Core] = None
    best_key = None
    for core in ctx.available:
        score = float(square_region_score(ctx, core, radius))
        if extra_cost is not None:
            score -= extra_cost(ctx.now, core)
        key = (-score, core.core_id)
        if best_key is None or key < best_key:
            best_key = key
            best = core
    return best


def assign_tasks_near(
    app: ApplicationInstance,
    ctx: MappingContext,
    first: Core,
    extra_cost: Optional[CoreCost] = None,
) -> Optional[Dict[int, int]]:
    """Greedy contiguous assignment around ``first``.

    Tasks are placed in topological order; each goes to the free core with
    the lowest cost, where cost is the summed Manhattan distance to already
    placed predecessors (communication locality), the distance to the first
    node (region compactness), and the injected ``extra_cost``.
    Returns ``None`` when the region runs out of cores.
    """
    graph = app.graph
    if len(graph) > len(ctx.available):
        return None
    free: Dict[int, Core] = {c.core_id: c for c in ctx.available}
    placement: Dict[int, int] = {}
    positions: Dict[int, tuple] = {}

    order = graph.topo_order
    for task_id in order:
        best_core = None
        best_key = None
        for core in free.values():
            cost = 0.5 * Mesh.manhattan(core.position, first.position)
            for edge in graph.predecessors[task_id]:
                if edge.src in positions:
                    cost += Mesh.manhattan(core.position, positions[edge.src])
            if extra_cost is not None:
                cost += extra_cost(ctx.now, core)
            key = (cost, core.core_id)
            if best_key is None or key < best_key:
                best_key = key
                best_core = core
        if best_core is None:
            return None
        placement[task_id] = best_core.core_id
        positions[task_id] = best_core.position
        del free[best_core.core_id]
    return placement

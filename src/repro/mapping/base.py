"""Runtime-mapper interface and shared placement machinery.

A runtime mapper receives the head-of-queue application instance and the
current chip state and returns a ``task_id -> core_id`` placement, or
``None`` when it cannot (or chooses not to) place the application yet.

The placement machinery shared by the contiguous mappers (baseline CoNA-
style and the proposed test-aware mapper) is factored here:

* :func:`square_region_score` — SHiC-style first-node scoring: how many
  allocatable cores sit in the square of radius ``r`` around a node;
* :func:`assign_tasks_near` — greedy task-to-core assignment that walks the
  task graph in topological order and puts each task on the allocatable
  core minimising communication distance to its already-placed
  predecessors (with a pluggable tie-breaking cost, which is where the
  proposed mapper injects utilization/criticality awareness).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.noc.topology import Mesh
from repro.platform.chip import Chip
from repro.platform.core import Core
from repro.workload.application import ApplicationInstance

#: Extra placement cost for a candidate core, injected by mapper subclasses
#: (now, core) -> cost in "hop-equivalents".
CoreCost = Callable[[float, Core], float]


class MappingContext:
    """Everything a mapper may consult besides the chip itself."""

    def __init__(
        self,
        chip: Chip,
        mesh: Mesh,
        now: float,
        available: List[Core],
    ) -> None:
        self.chip = chip
        self.mesh = mesh
        self.now = now
        self.available = available
        self._available_ids: Optional[set] = None

    @property
    def available_ids(self) -> set:
        """Ids of the available cores (built lazily; most mappers never ask)."""
        if self._available_ids is None:
            self._available_ids = {core.core_id for core in self.available}
        return self._available_ids


class RuntimeMapper:
    """Interface for runtime mapping policies."""

    name = "base"

    def type_bias(self, core: Core) -> float:
        """Per-type placement bias of ``core`` (hop-equivalents).

        The heterogeneity touch point of the mapping layer: policies that
        weigh tiles differently (keep hot O3/accelerator tiles free for
        their own work; prefer cheap IO tiles for generic tasks) override
        or scale this.  The default biases by the tile's dynamic-power
        scale, which is exactly 0.0 for the degenerate ``std`` type —
        cost-aware mappers only *add* the term when it is nonzero, so
        homogeneous-std placements are bit-identical to the
        pre-heterogeneity engine.
        """
        return core.core_type.dyn_scale - 1.0

    def map_application(
        self, app: ApplicationInstance, ctx: MappingContext
    ) -> Optional[Dict[int, int]]:  # pragma: no cover - interface
        raise NotImplementedError


def square_region_score(ctx: MappingContext, core: Core, radius: int) -> int:
    """Number of available cores in the ``(2r+1)²`` square centred on core."""
    count = 0
    for other in ctx.available:
        if abs(other.x - core.x) <= radius and abs(other.y - core.y) <= radius:
            count += 1
    return count


def pick_first_node(
    ctx: MappingContext, n_tasks: int, extra_cost: Optional[CoreCost] = None
) -> Optional[Core]:
    """SHiC-style first-node selection.

    The radius is the smallest square that could hold the application; the
    chosen node maximises available cores in that square (most-contiguous
    region), with ``extra_cost`` subtracted for policy-aware biasing and
    core id as the final deterministic tie-break.
    """
    if not ctx.available:
        return None
    radius = 1
    while (2 * radius + 1) ** 2 < n_tasks:
        radius += 1
    # The region score is an integer occupancy count, so it can be read
    # off a 2-D prefix-sum grid in O(1) per candidate instead of scanning
    # every available core per candidate — same counts, same winner.
    width = ctx.mesh.width
    height = ctx.mesh.height
    pref = [[0] * (width + 1) for _ in range(height + 1)]
    for other in ctx.available:
        pref[other.y + 1][other.x + 1] += 1
    for y in range(1, height + 1):
        row = pref[y]
        prev = pref[y - 1]
        run = 0
        for x in range(1, width + 1):
            run += row[x]
            row[x] = run + prev[x]
    best: Optional[Core] = None
    best_key = None
    for core in ctx.available:
        x0 = max(0, core.x - radius)
        y0 = max(0, core.y - radius)
        x1 = min(width - 1, core.x + radius)
        y1 = min(height - 1, core.y + radius)
        score = float(
            pref[y1 + 1][x1 + 1] - pref[y0][x1 + 1]
            - pref[y1 + 1][x0] + pref[y0][x0]
        )
        if extra_cost is not None:
            score -= extra_cost(ctx.now, core)
        key = (-score, core.core_id)
        if best_key is None or key < best_key:
            best_key = key
            best = core
    return best


def assign_tasks_near(
    app: ApplicationInstance,
    ctx: MappingContext,
    first: Core,
    extra_cost: Optional[CoreCost] = None,
) -> Optional[Dict[int, int]]:
    """Greedy contiguous assignment around ``first``.

    Tasks are placed in topological order; each goes to the free core with
    the lowest cost, where cost is the summed Manhattan distance to already
    placed predecessors (communication locality), the distance to the first
    node (region compactness), and the injected ``extra_cost``.
    Returns ``None`` when the region runs out of cores.
    """
    graph = app.graph
    if graph.n_tasks > len(ctx.available):
        return None
    # Every cost term is integer-valued except the exact half-integer
    # first-node bias, so float addition is exact here and the sums may be
    # regrouped freely: the per-core cost splits into a per-core constant
    # (distance to the first node, hoisted below) plus separable per-axis
    # predecessor distances read from small tables — O(width + height)
    # absolute differences per task instead of O(|free| * preds).  Same
    # values, same (cost, core_id) winner as the naive double loop.
    first_x, first_y = first.position
    free: Dict[int, tuple] = {
        c.core_id: (c, 0.5 * (abs(c.x - first_x) + abs(c.y - first_y)), c.x, c.y)
        for c in ctx.available
    }
    placement: Dict[int, int] = {}
    positions: Dict[int, tuple] = {}

    width = ctx.mesh.width
    height = ctx.mesh.height
    now = ctx.now
    predecessors = graph.predecessors
    for task_id in graph.topo_order:
        pred_positions = [
            positions[edge.src]
            for edge in predecessors[task_id]
            if edge.src in positions
        ]
        col = [0] * width
        row = [0] * height
        for px, py in pred_positions:
            for x in range(width):
                col[x] += abs(x - px)
            for y in range(height):
                row[y] += abs(y - py)
        best_core = None
        best_cost = 0.0
        for core, base, cx, cy in free.values():
            cost = base + col[cx] + row[cy]
            if extra_cost is not None:
                cost += extra_cost(now, core)
            if (
                best_core is None
                or cost < best_cost
                or (cost == best_cost and core.core_id < best_core.core_id)
            ):
                best_cost = cost
                best_core = core
        if best_core is None:
            return None
        placement[task_id] = best_core.core_id
        positions[task_id] = best_core.position
        del free[best_core.core_id]
    return placement

"""CSV / JSON export of traces and results.

Figure-grade output: every experiment's series and every run's traces can
be dumped to CSV for external plotting, and a result's scalar summary to
JSON for archival, without pulling a plotting stack into the library.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

from repro.sim.trace import Trace


def trace_to_csv(
    trace: Trace,
    names: Optional[Sequence[str]] = None,
    grid_step: Optional[float] = None,
    t_end: Optional[float] = None,
) -> str:
    """Render trace series as CSV text.

    Without ``grid_step`` the union of record times is used as the time
    column (exact, irregular); with it, series are resampled on a regular
    grid of that step from 0 to ``t_end`` (required then).
    """
    selected = list(names) if names is not None else trace.names()
    for name in selected:
        if name not in trace.names():
            raise KeyError(name)
    if grid_step is not None:
        if t_end is None:
            raise ValueError("t_end is required with grid_step")
        if grid_step <= 0:
            raise ValueError("grid_step must be positive")
        grid = [i * grid_step for i in range(int(t_end / grid_step) + 1)]
    else:
        stamps = set()
        for name in selected:
            stamps.update(trace.series(name)[0])
        grid = sorted(stamps)

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time_us"] + selected)
    for t in grid:
        writer.writerow([t] + [trace.value_at(name, t) for name in selected])
    return buffer.getvalue()


def series_to_csv(columns: Dict[str, Sequence[float]]) -> str:
    """CSV from equal-length named columns (experiment series output)."""
    if not columns:
        raise ValueError("need at least one column")
    lengths = {len(values) for values in columns.values()}
    if len(lengths) != 1:
        raise ValueError("all columns must have equal length")
    names = list(columns)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(names)
    for row in zip(*(columns[name] for name in names)):
        writer.writerow(row)
    return buffer.getvalue()


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """CSV from experiment-table rows."""
    if not headers:
        raise ValueError("need at least one header")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(f"row {i} width {len(row)} != {len(headers)}")
        writer.writerow(list(row))
    return buffer.getvalue()


def summary_to_json(summary: Dict[str, float], indent: int = 2) -> str:
    return json.dumps(summary, indent=indent, sort_keys=True)


def write_text(path: str, text: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)

"""Metric collection during a simulation run.

The collector is a passive sink: the execution engine and the system's
control loop push events into it (application admitted / finished, task
finished, power sampled) and it maintains the counters and time series the
experiments report.  All rates are computed against the run horizon at
summary time, so partially-finished work at the horizon is counted the
same way for every policy being compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.power.budget import BudgetAudit, PowerBudget
from repro.power.meter import PowerBreakdown
from repro.sim.trace import Trace
from repro.workload.application import ApplicationInstance


@dataclass(frozen=True)
class AppRecord:
    """Completion record of one application instance."""

    app_id: int
    name: str
    n_tasks: int
    total_ops: float
    arrival_time: float
    start_time: float
    finish_time: float
    rt_class: str = "best-effort"
    #: True when the app "finished" without ever starting (no admission
    #: timestamp).  ``start_time`` then holds the finish time as a
    #: placeholder and the record is excluded from waiting/turnaround
    #: statistics.
    aborted: bool = False

    @property
    def waiting_time(self) -> float:
        return self.start_time - self.arrival_time

    @property
    def turnaround(self) -> float:
        return self.finish_time - self.arrival_time


class MetricsCollector:
    """Accumulates throughput, latency and power statistics."""

    def __init__(self, budget: PowerBudget) -> None:
        self.trace = Trace()
        self.audit = BudgetAudit(budget)
        self.apps_arrived = 0
        self.apps_admitted = 0
        self.apps_completed = 0
        self.apps_aborted = 0
        self.tasks_completed = 0
        self.ops_completed = 0.0
        self.app_records: List[AppRecord] = []

    # ------------------------------------------------------------------
    # Event sinks
    # ------------------------------------------------------------------
    def on_app_arrival(self, app: ApplicationInstance, now: float) -> None:
        self.apps_arrived += 1

    def on_app_admitted(self, app: ApplicationInstance, now: float) -> None:
        self.apps_admitted += 1

    def on_task_finished(self, ops: float, now: float) -> None:
        self.tasks_completed += 1
        self.ops_completed += ops

    def on_app_finished(self, app: ApplicationInstance, now: float) -> None:
        # A "finishing" app with no start timestamp never ran: count it as
        # aborted instead of completed so it cannot pollute the waiting-
        # and turnaround-time statistics with a fabricated start time.
        aborted = app.start_time is None
        if aborted:
            self.apps_aborted += 1
        else:
            self.apps_completed += 1
        self.app_records.append(
            AppRecord(
                app_id=app.app_id,
                name=app.graph.name,
                n_tasks=len(app.graph),
                total_ops=app.graph.total_ops(),
                arrival_time=app.arrival_time,
                start_time=app.start_time if app.start_time is not None else now,
                finish_time=now,
                rt_class=app.graph.rt_class,
                aborted=aborted,
            )
        )

    def sample_power(self, now: float, breakdown: PowerBreakdown) -> None:
        self.trace.record("power.workload", now, breakdown.workload)
        self.trace.record("power.test", now, breakdown.test)
        self.trace.record("power.leakage", now, breakdown.leakage)
        self.trace.record("power.noc", now, breakdown.noc)
        self.trace.record("power.total", now, breakdown.total)
        self.audit.observe(now, breakdown.total)

    def sample_counts(
        self, now: float, busy: int, testing: int, idle: int, queued: int
    ) -> None:
        self.trace.record("cores.busy", now, float(busy))
        self.trace.record("cores.testing", now, float(testing))
        self.trace.record("cores.idle", now, float(idle))
        self.trace.record("queue.length", now, float(queued))

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def throughput_ops_per_us(self, horizon_us: float) -> float:
        if horizon_us <= 0:
            raise ValueError("horizon must be positive")
        return self.ops_completed / horizon_us

    def apps_per_ms(self, horizon_us: float) -> float:
        if horizon_us <= 0:
            raise ValueError("horizon must be positive")
        return self.apps_completed / (horizon_us / 1000.0)

    def completed_records(self) -> List[AppRecord]:
        """Records of apps that actually ran (aborted ones excluded)."""
        return [r for r in self.app_records if not r.aborted]

    def mean_waiting_time(self) -> Optional[float]:
        records = self.completed_records()
        if not records:
            return None
        return sum(r.waiting_time for r in records) / len(records)

    def mean_turnaround(self) -> Optional[float]:
        records = self.completed_records()
        if not records:
            return None
        return sum(r.turnaround for r in records) / len(records)

    def mean_waiting_by_class(self) -> Dict[str, float]:
        """Mean queueing delay per real-time class (completed apps)."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for record in self.completed_records():
            sums[record.rt_class] = sums.get(record.rt_class, 0.0) + record.waiting_time
            counts[record.rt_class] = counts.get(record.rt_class, 0) + 1
        return {cls: sums[cls] / counts[cls] for cls in sums}

    def energy_uj(self, channel: str, horizon_us: float) -> float:
        """Energy (µJ) of one power channel over the run."""
        return self.trace.integral(f"power.{channel}", 0.0, horizon_us)

    def test_power_share(self, horizon_us: float) -> float:
        """Fraction of total chip energy spent on test routines."""
        total = self.energy_uj("total", horizon_us)
        if total <= 0:
            return 0.0
        return self.energy_uj("test", horizon_us) / total

    def average_power(self, horizon_us: float) -> float:
        return self.trace.time_average("power.total", 0.0, horizon_us)

"""Cross-seed replication statistics.

Single-seed numbers from a stochastic simulator are anecdotes; the
experiment harness replicates runs across seeds and reports mean and a
confidence half-width.  We use the Student-t interval (seeds are few) and
keep everything dependency-free.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.system import SimulationResult, SystemConfig
from repro.experiments.parallel import run_many

#: Two-sided 95% Student-t critical values for small sample sizes
#: (df = n - 1); beyond the table we fall back to the normal 1.96.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
}


@dataclass(frozen=True)
class Estimate:
    """Mean with a 95% confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "Estimate") -> bool:
        """Do the two 95% intervals overlap?"""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"


def estimate(samples: Sequence[float]) -> Estimate:
    """95% Student-t estimate of the mean of ``samples``."""
    if not samples:
        raise ValueError("need at least one sample")
    n = len(samples)
    mean = statistics.mean(samples)
    if n == 1:
        return Estimate(mean=mean, half_width=float("inf"), n=1)
    sd = statistics.stdev(samples)
    t = _T_95.get(n - 1, 1.96)
    return Estimate(mean=mean, half_width=t * sd / math.sqrt(n), n=n)


def replicate(
    config: SystemConfig, seeds: Sequence[int], jobs: Optional[int] = None
) -> List[SimulationResult]:
    """Run the same configuration under each seed.

    ``jobs`` spreads the replicas over worker processes; results are
    identical to the serial run and ordered by ``seeds``.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    return run_many([replace(config, seed=seed) for seed in seeds], jobs)


def summarize_replicas(
    results: Sequence[SimulationResult],
) -> Dict[str, Estimate]:
    """Per-metric estimates over the replicas' scalar summaries."""
    if not results:
        raise ValueError("need at least one result")
    keys = results[0].summary().keys()
    samples: Dict[str, List[float]] = {key: [] for key in keys}
    for result in results:
        for key, value in result.summary().items():
            samples[key].append(value)
    return {key: estimate(values) for key, values in samples.items()}


def compare_policies(
    base: SystemConfig,
    field: str,
    values: Sequence[object],
    seeds: Sequence[int],
    metric: Callable[[SimulationResult], float] = (
        lambda r: r.throughput_ops_per_us
    ),
    jobs: Optional[int] = None,
) -> Dict[object, Estimate]:
    """Estimate ``metric`` for each policy value, paired across seeds."""
    if not values:
        raise ValueError("need at least one value")
    out: Dict[object, Estimate] = {}
    for value in values:
        config = replace(base, **{field: value})
        results = replicate(config, seeds, jobs)
        out[value] = estimate([metric(result) for result in results])
    return out

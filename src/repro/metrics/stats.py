"""Cross-seed replication statistics.

Single-seed numbers from a stochastic simulator are anecdotes; the
experiment harness replicates runs across seeds and reports mean and a
confidence half-width.  We use the Student-t interval (seeds are few) and
keep everything dependency-free.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.system import SimulationResult, SystemConfig
from repro.experiments.parallel import run_many

#: Two-sided 95% Student-t critical values for small sample sizes
#: (df = n - 1); beyond the table we fall back to the normal 1.96.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
}


@dataclass(frozen=True)
class Estimate:
    """Mean with a 95% confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "Estimate") -> bool:
        """Do the two 95% intervals overlap?"""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"


@dataclass(frozen=True)
class BinomialEstimate:
    """Proportion estimate with a two-sided confidence interval.

    Used by the campaign subsystem for fault-detection probability: each
    injected fault is a Bernoulli trial (detected / escaped), and the
    stopping rule samples runs until the interval is tight enough.
    """

    successes: int
    n: int
    low: float
    high: float
    method: str = "wilson"

    @property
    def point(self) -> float:
        return self.successes / self.n if self.n else 0.0

    @property
    def half_width(self) -> float:
        if self.n == 0:
            return float("inf")
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:
        return (
            f"{self.point:.4g} [{self.low:.4g}, {self.high:.4g}] "
            f"({self.successes}/{self.n}, {self.method})"
        )


def _check_binomial(successes: int, n: int) -> None:
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0 <= successes <= max(n, 0):
        raise ValueError(f"successes must be in [0, n], got {successes}/{n}")


def wilson_interval(
    successes: int, n: int, z: float = 1.96
) -> BinomialEstimate:
    """Wilson score interval for a binomial proportion (95% by default).

    Well-behaved at the boundaries (0/n and n/n stay inside [0, 1]),
    unlike the naive normal interval, which matters for detection rates
    that are routinely exactly 1.0 in short campaigns.
    """
    _check_binomial(successes, n)
    if n == 0:
        return BinomialEstimate(0, 0, 0.0, 1.0, "wilson")
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = (p + z2 / (2.0 * n)) / denom
    margin = (
        z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom
    )
    return BinomialEstimate(
        successes, n, max(0.0, centre - margin), min(1.0, centre + margin),
        "wilson",
    )


def _binom_cdf(k: int, n: int, p: float) -> float:
    """P(X <= k) for X ~ Binomial(n, p), via log-space summation."""
    if p <= 0.0:
        return 1.0
    if p >= 1.0:
        return 1.0 if k >= n else 0.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    total = 0.0
    for i in range(0, k + 1):
        log_pmf = (
            math.lgamma(n + 1)
            - math.lgamma(i + 1)
            - math.lgamma(n - i + 1)
            + i * log_p
            + (n - i) * log_q
        )
        total += math.exp(log_pmf)
    return min(total, 1.0)


def clopper_pearson_interval(
    successes: int, n: int, alpha: float = 0.05
) -> BinomialEstimate:
    """Exact (conservative) Clopper-Pearson interval, dependency-free.

    The beta-quantile endpoints are found by bisecting the binomial tail
    directly (60 iterations ~ 1e-18 interval width), which keeps the
    implementation scipy-free at the cost of O(n) per bisection step —
    fine for campaign-scale fault counts.
    """
    _check_binomial(successes, n)
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if n == 0:
        return BinomialEstimate(0, 0, 0.0, 1.0, "clopper-pearson")
    half = alpha / 2.0

    def bisect(objective: Callable[[float], float]) -> float:
        # objective is monotone decreasing in p; find its root in [0, 1].
        lo, hi = 0.0, 1.0
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if objective(mid) > 0.0:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    if successes == 0:
        low = 0.0
    else:
        # low: P(X >= successes; p) == alpha/2
        low = bisect(
            lambda p: half - (1.0 - _binom_cdf(successes - 1, n, p))
        )
    if successes == n:
        high = 1.0
    else:
        # high: P(X <= successes; p) == alpha/2
        high = bisect(lambda p: _binom_cdf(successes, n, p) - half)
    return BinomialEstimate(successes, n, low, high, "clopper-pearson")


def binomial_interval(
    successes: int, n: int, method: str = "wilson"
) -> BinomialEstimate:
    """Dispatch on the interval method name (``wilson`` | ``clopper-pearson``)."""
    if method == "wilson":
        return wilson_interval(successes, n)
    if method == "clopper-pearson":
        return clopper_pearson_interval(successes, n)
    raise ValueError(f"unknown binomial interval method {method!r}")


def halfwidth_met(
    successes: int, n: int, target: float, method: str = "wilson"
) -> bool:
    """Sequential stopping predicate: is the CI half-width <= ``target``?

    ``n == 0`` (no trials observed yet) never satisfies the rule — an
    empty sample carries no evidence, whatever the target.
    """
    if target <= 0:
        raise ValueError(f"target half-width must be positive, got {target}")
    if n == 0:
        return False
    return binomial_interval(successes, n, method).half_width <= target


def estimate(samples: Sequence[float]) -> Estimate:
    """95% Student-t estimate of the mean of ``samples``."""
    if not samples:
        raise ValueError("need at least one sample")
    n = len(samples)
    mean = statistics.mean(samples)
    if n == 1:
        return Estimate(mean=mean, half_width=float("inf"), n=1)
    sd = statistics.stdev(samples)
    t = _T_95.get(n - 1, 1.96)
    return Estimate(mean=mean, half_width=t * sd / math.sqrt(n), n=n)


def replicate(
    config: SystemConfig, seeds: Sequence[int], jobs: Optional[int] = None
) -> List[SimulationResult]:
    """Run the same configuration under each seed.

    ``jobs`` spreads the replicas over worker processes; results are
    identical to the serial run and ordered by ``seeds``.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    return run_many([replace(config, seed=seed) for seed in seeds], jobs)


def summarize_replicas(
    results: Sequence[SimulationResult],
) -> Dict[str, Estimate]:
    """Per-metric estimates over the replicas' scalar summaries."""
    if not results:
        raise ValueError("need at least one result")
    keys = results[0].summary().keys()
    samples: Dict[str, List[float]] = {key: [] for key in keys}
    for result in results:
        for key, value in result.summary().items():
            samples[key].append(value)
    return {key: estimate(values) for key, values in samples.items()}


def compare_policies(
    base: SystemConfig,
    field: str,
    values: Sequence[object],
    seeds: Sequence[int],
    metric: Callable[[SimulationResult], float] = (
        lambda r: r.throughput_ops_per_us
    ),
    jobs: Optional[int] = None,
) -> Dict[object, Estimate]:
    """Estimate ``metric`` for each policy value, paired across seeds."""
    if not values:
        raise ValueError("need at least one value")
    out: Dict[object, Estimate] = {}
    for value in values:
        config = replace(base, **{field: value})
        results = replicate(config, seeds, jobs)
        out[value] = estimate([metric(result) for result in results])
    return out

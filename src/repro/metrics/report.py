"""Plain-text table and series rendering for experiment output.

The original paper presents its evaluation as figures and tables; the
benchmark harness prints the same rows/series as aligned ASCII so results
can be eyeballed in a terminal and diffed between runs.
"""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell, precision: int) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 3,
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ValueError("need at least one column")
    rendered: List[List[str]] = [
        [_format_cell(c, precision) for c in row] for row in rows
    ]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    precision: int = 3,
    max_points: int = 40,
) -> str:
    """Render a (possibly down-sampled) series as two aligned columns."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    n = len(xs)
    if n > max_points:
        stride = (n - 1) / (max_points - 1)
        idx = sorted({int(round(i * stride)) for i in range(max_points)})
        xs = [xs[i] for i in idx]
        ys = [ys[i] for i in idx]
    rows = [[x, y] for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, precision=precision, title=name)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line unicode sparkline of a series (figure-at-a-glance)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    n = len(values)
    if n > width:
        stride = n / width
        values = [values[int(i * stride)] for i in range(width)]
    lo = min(values)
    hi = max(values)
    if hi - lo < 1e-12:
        return blocks[0] * len(values)
    span = hi - lo
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * len(blocks)))]
        for v in values
    )

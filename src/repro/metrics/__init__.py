"""Simulation-domain metrics: collectors and report formatting.

Naming note — this package vs ``repro.telemetry``: **`repro.metrics`
is simulation-domain metrics** (per-app latency/throughput records,
detection statistics, power traces, report tables — *results* of a
run, the numbers experiments assert on), while **`repro.telemetry` is
runtime telemetry** (counters/gauges/histograms about the machinery
while it executes — events/s, launches and deferrals, cache hits,
worker health).  Nothing is re-exported across the two packages, and
telemetry never feeds back into the results collected here.
"""

from repro.metrics.collectors import AppRecord, MetricsCollector
from repro.metrics.report import format_series, format_table, sparkline

__all__ = [
    "AppRecord",
    "MetricsCollector",
    "format_series",
    "format_table",
    "sparkline",
]

"""Metrics: collectors and report formatting."""

from repro.metrics.collectors import AppRecord, MetricsCollector
from repro.metrics.report import format_series, format_table, sparkline

__all__ = [
    "AppRecord",
    "MetricsCollector",
    "format_series",
    "format_table",
    "sparkline",
]

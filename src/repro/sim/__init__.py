"""Discrete-event simulation kernel (engine, events, traces, RNG streams)."""

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import (
    Event,
    PRIORITY_CONTROL,
    PRIORITY_EARLY,
    PRIORITY_NORMAL,
)
from repro.sim.rng import StreamRegistry, derive_seed, make_rng
from repro.sim.trace import Trace

__all__ = [
    "Event",
    "PRIORITY_CONTROL",
    "PRIORITY_EARLY",
    "PRIORITY_NORMAL",
    "SimulationError",
    "Simulator",
    "StreamRegistry",
    "Trace",
    "derive_seed",
    "make_rng",
]

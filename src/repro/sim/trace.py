"""Time-series tracing for simulation observables.

A :class:`Trace` stores named, step-wise time series (the value recorded at
time ``t`` holds until the next record).  It offers the integrals and
averages the experiment harness needs: time-weighted averages of power
traces, peak values, and resampling onto a regular grid for figure output.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Sequence, Tuple


class Trace:
    """A collection of named step-function time series."""

    def __init__(self) -> None:
        self._times: Dict[str, List[float]] = {}
        self._values: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, name: str, time: float, value: float) -> None:
        """Record ``value`` for series ``name`` at ``time``.

        Times must be non-decreasing per series; a record at an existing
        last timestamp overwrites it (the final value at a time wins, which
        matches the engine's same-time event semantics).
        """
        times = self._times.get(name)
        if times is None:
            times = self._times[name] = []
            values = self._values[name] = []
        else:
            values = self._values[name]
        if times:
            last = times[-1]
            if time < last:
                raise ValueError(
                    f"non-monotonic record for {name!r}: {time} < {last}"
                )
            if time == last:
                values[-1] = value
                return
        times.append(time)
        values.append(value)

    def increment(self, name: str, time: float, delta: float) -> None:
        """Record ``last_value + delta`` (0 start) for counter-style series."""
        last = self.last(name, default=0.0)
        self.record(name, time, last + delta)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._times)

    def series(self, name: str) -> Tuple[List[float], List[float]]:
        """Return ``(times, values)`` lists (copies) for ``name``."""
        if name not in self._times:
            raise KeyError(name)
        return list(self._times[name]), list(self._values[name])

    def last(self, name: str, default: float = 0.0) -> float:
        values = self._values.get(name)
        return values[-1] if values else default

    def value_at(self, name: str, time: float, default: float = 0.0) -> float:
        """Step-function value of the series at ``time``."""
        times = self._times.get(name)
        if not times:
            return default
        idx = bisect.bisect_right(times, time) - 1
        if idx < 0:
            return default
        return self._values[name][idx]

    def integral(self, name: str, t0: float, t1: float) -> float:
        """Integral of the step function over ``[t0, t1]``.

        For a power series in Watts over microseconds this yields energy in
        micro-joules.
        """
        if t1 < t0:
            raise ValueError(f"empty interval [{t0}, {t1}]")
        times = self._times.get(name)
        if not times:
            return 0.0
        values = self._values[name]
        total = 0.0
        n = len(times)
        # Walk segments [times[i], times[i+1]) clipped to [t0, t1], starting
        # at the segment containing t0 (bisect) and stopping past t1 instead
        # of scanning the whole series; the segments visited with hi > lo —
        # and hence the float additions — are exactly the full walk's.
        i = bisect.bisect_right(times, t0) - 1
        if i < 0:
            i = 0
        while i < n:
            start = times[i]
            if start >= t1:
                break
            end = times[i + 1] if i + 1 < n else t1
            lo = start if start > t0 else t0
            hi = end if end < t1 else t1
            if hi > lo:
                total += values[i] * (hi - lo)
            i += 1
        # Segment before the first record contributes nothing (value unknown).
        return total

    def time_average(self, name: str, t0: float, t1: float) -> float:
        """Time-weighted average of the series over ``[t0, t1]``."""
        if t1 <= t0:
            raise ValueError(f"empty interval [{t0}, {t1}]")
        return self.integral(name, t0, t1) / (t1 - t0)

    def maximum(self, name: str, default: float = 0.0) -> float:
        values = self._values.get(name)
        return max(values) if values else default

    def resample(
        self, name: str, grid: Sequence[float]
    ) -> List[float]:
        """Sample the step function on ``grid`` (for figure series output)."""
        return [self.value_at(name, t) for t in grid]

    def merge_names(self, names: Iterable[str], out: str) -> None:
        """Create series ``out`` as the pointwise sum of ``names``.

        The union of all record times is used as the new grid.  The grid is
        swept once with one cursor per input series (O((R + G·S)) after the
        O(R log R) grid sort) instead of a ``value_at`` bisect per grid
        point per series; the per-point accumulation order — ``names``
        order, starting from int 0, with absent/not-yet-started series
        contributing the 0.0 default — matches the naive sum bit for bit.
        """
        names = list(names)
        grid = sorted({t for n in names if n in self._times for t in self._times[n]})
        series = [
            (self._times[n], self._values[n]) if n in self._times else None
            for n in names
        ]
        cursors = [-1] * len(names)  # index of the last record at time <= t
        for t in grid:
            total = 0
            for k, pair in enumerate(series):
                if pair is None:
                    total += 0.0
                    continue
                times, values = pair
                i = cursors[k]
                while i + 1 < len(times) and times[i + 1] <= t:
                    i += 1
                cursors[k] = i
                total += values[i] if i >= 0 else 0.0
            self.record(out, t, total)

"""A small deterministic discrete-event simulation engine.

The engine keeps a heap of :class:`~repro.sim.events.Event` objects and an
absolute clock ``now`` (microseconds throughout this project, although the
engine itself is unit-agnostic).  Model components schedule callbacks with
:meth:`Simulator.schedule` / :meth:`Simulator.at`; periodic control planes
(power manager, test scheduler) register with :meth:`Simulator.every`.

Determinism guarantees:

* events at equal ``(time, priority)`` fire in scheduling order;
* no wall-clock or global RNG use — randomness comes exclusively from
  :mod:`repro.sim.rng` streams owned by the caller.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.events import Event, PRIORITY_CONTROL, PRIORITY_NORMAL


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event simulation kernel with a deterministic event order."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._running = False
        self._stopped = False
        self.events_fired: int = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``action(*args)`` at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        event = Event(time=time, priority=priority, action=action, args=args)
        heapq.heappush(self._heap, event)
        return event

    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``action(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, action, *args, priority=priority)

    def every(
        self,
        period: float,
        action: Callable[[], Any],
        *,
        phase: float = 0.0,
        priority: int = PRIORITY_CONTROL,
    ) -> None:
        """Run ``action()`` periodically, first at ``now + phase + period``.

        Control-plane ticks default to :data:`PRIORITY_CONTROL` so they see
        the settled model state of their timestamp.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")

        def tick() -> None:
            action()
            if not self._stopped:
                self.schedule(period, tick, priority=priority)

        self.schedule(phase + period, tick, priority=priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the event heap drains or the clock passes ``until``.

        Returns the final simulation time (``until`` when a horizon was
        given, so time integrals cover the full window).
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._stopped = False
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                event.fire()
                self.events_fired += 1
                if self._stopped:
                    break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def pending(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for e in self._heap if not e.cancelled)

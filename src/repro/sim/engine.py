"""A small deterministic discrete-event simulation engine.

The engine keeps a heap of :class:`~repro.sim.events.Event` objects and an
absolute clock ``now`` (microseconds throughout this project, although the
engine itself is unit-agnostic).  Model components schedule callbacks with
:meth:`Simulator.schedule` / :meth:`Simulator.at`; periodic control planes
(power manager, test scheduler) register with :meth:`Simulator.every`.

Determinism guarantees:

* events at equal ``(time, priority)`` fire in scheduling order;
* no wall-clock or global RNG use — randomness comes exclusively from
  :mod:`repro.sim.rng` streams owned by the caller.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.events import Event, PRIORITY_CONTROL, PRIORITY_NORMAL

#: Heap entries are plain ``(time, priority, seq, event)`` tuples so the
#: C heap implementation compares numbers directly instead of calling the
#: dataclass-generated ``Event.__lt__``; the key is exactly the event's
#: ordering key, so pop order is unchanged.
_HeapEntry = Tuple[float, int, int, Event]


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event simulation kernel with a deterministic event order."""

    #: Compact the heap when cancelled events outnumber live ones and
    #: there are enough of them to matter.  Compaction preserves the pop
    #: order exactly: events are totally ordered by (time, priority, seq),
    #: so re-heapifying the survivors cannot reorder anything.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[_HeapEntry] = []
        self._n_cancelled = 0  # cancelled events still sitting in the heap
        self._running = False
        self._stopped = False
        self.events_fired: int = 0
        self.heap_compactions: int = 0
        #: Optional :class:`repro.obs.PhaseProfiler`; when set and enabled,
        #: each ``run()`` drain loop is timed into the ``sim.dispatch``
        #: phase with the number of events fired as its call count.
        self.profiler = None

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``action(*args)`` at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        event = Event(time=time, priority=priority, action=action, args=args)
        event.cancel_cb = self._on_event_cancelled
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        return event

    def _on_event_cancelled(self, _event: Event) -> None:
        self._n_cancelled += 1
        if (
            self._n_cancelled > self.COMPACT_MIN_CANCELLED
            and self._n_cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from the heap and restore the invariant."""
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._n_cancelled = 0
        self.heap_compactions += 1

    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``action(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Inlined ``at`` (minus its past-time check, vacuous for delay >= 0):
        # this is the busiest entry point into the kernel.
        time = self.now + delay
        event = Event(time=time, priority=priority, action=action, args=args)
        event.cancel_cb = self._on_event_cancelled
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        return event

    def every(
        self,
        period: float,
        action: Callable[[], Any],
        *,
        phase: float = 0.0,
        priority: int = PRIORITY_CONTROL,
    ) -> None:
        """Run ``action()`` periodically, first at ``now + phase + period``.

        Control-plane ticks default to :data:`PRIORITY_CONTROL` so they see
        the settled model state of their timestamp.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")

        def tick() -> None:
            action()
            if not self._stopped:
                self.schedule(period, tick, priority=priority)

        self.schedule(phase + period, tick, priority=priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the event heap drains or the clock passes ``until``.

        Returns the final simulation time (``until`` when a horizon was
        given, so time integrals cover the full window).
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._stopped = False
        heappop = heapq.heappop
        profiler = self.profiler if (
            self.profiler is not None and self.profiler.enabled
        ) else None
        # Dispatch timing is loop-granular, not per-event: wrapping every
        # action in its own perf_counter pair costs more than many actions
        # take.  ``sim.dispatch`` therefore reports the whole drain loop's
        # wall time (heap ops and nested phases included) with an exact
        # fired-event count.
        fired_before = self.events_fired
        t_loop = _time.perf_counter() if profiler is not None else 0.0
        try:
            heap = self._heap
            while heap:
                time, _, _, event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    self._n_cancelled -= 1
                    # _compact() replaces the heap list object.
                    heap = self._heap
                    continue
                if until is not None and time > until:
                    break
                heappop(heap)
                event.cancel_cb = None  # popped: no longer tracked
                self.now = time
                # Inlined Event.fire(): a popped event is not cancelled
                # (checked above) and cancellation from inside an action
                # only affects *other* heap entries.
                if event.action is not None:
                    event.action(*event.args)
                self.events_fired += 1
                if self._stopped:
                    break
                heap = self._heap
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False
            if profiler is not None:
                profiler.add(
                    "sim.dispatch",
                    _time.perf_counter() - t_loop,
                    calls=self.events_fired - fired_before,
                )
        return self.now

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
            self._n_cancelled -= 1
        if not self._heap:
            return None
        return self._heap[0][0]

    def pending(self) -> int:
        """Number of pending (non-cancelled) events (O(1))."""
        return len(self._heap) - self._n_cancelled

"""Deterministic random-number streams.

Every stochastic element of the simulator (workload arrivals, task-graph
shapes, fault injection) draws from its own named stream derived from the
experiment's master seed.  Two simulations with the same seed are therefore
bit-identical, and changing e.g. the fault stream does not perturb the
workload stream — essential for paired comparisons between schedulers.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, stream: str) -> int:
    """Derive a stable 64-bit child seed for ``stream`` from ``master_seed``."""
    digest = hashlib.sha256(f"{master_seed}:{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(master_seed: int, stream: str) -> random.Random:
    """Create an independent :class:`random.Random` for a named stream."""
    return random.Random(derive_seed(master_seed, stream))


class StreamRegistry:
    """Hands out named RNG streams derived from one master seed.

    Asking twice for the same stream returns the *same* generator object so
    that components sharing a stream also share its state.
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict = {}

    def stream(self, name: str) -> random.Random:
        if name not in self._streams:
            self._streams[name] = make_rng(self.master_seed, name)
        return self._streams[name]

"""Event primitives for the discrete-event simulation kernel.

The kernel is deliberately small: an event is a callback scheduled at an
absolute simulation time, ordered by ``(time, priority, sequence)``.  The
sequence number makes ordering fully deterministic for events that share a
timestamp and priority, which in turn makes every simulation in this
repository reproducible from its seed alone.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

#: Default priority for ordinary model events.
PRIORITY_NORMAL = 50
#: Priority for control-plane activities (power manager, test scheduler)
#: which must observe a settled model state, i.e. run *after* model events
#: that share their timestamp.
PRIORITY_CONTROL = 80
#: Priority for bookkeeping that must run before anything else at a time.
PRIORITY_EARLY = 10

_seq = itertools.count()


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` so that a heap of events pops
    them in deterministic chronological order.
    """

    time: float
    priority: int
    seq: int = field(default_factory=_seq.__next__)
    action: Callable[..., Any] = field(compare=False, default=None)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    #: Set by the owning simulator while the event sits in its heap, and
    #: cleared when the event is popped; lets the engine keep an exact
    #: live-event count without scanning the heap.
    cancel_cb: Optional[Callable[["Event"], None]] = field(
        compare=False, default=None, repr=False
    )

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.cancel_cb is not None:
            self.cancel_cb(self)

    def fire(self) -> None:
        """Invoke the event's action (no-op when cancelled)."""
        if not self.cancelled and self.action is not None:
            self.action(*self.args)

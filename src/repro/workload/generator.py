"""TGFF-style random task-graph generation.

The original evaluation drives the platform with synthetic task graphs (the
group's papers use TGFF-generated mixes).  We reproduce the statistical
shape with a layered-DAG generator: tasks are arranged in layers, each
non-root task draws 1..max_fanin predecessors from the previous layers, and
operation counts / communication volumes / activity factors are drawn from
profile-specified ranges.  Everything is driven by an injected RNG stream,
so a workload is a pure function of (seed, profile).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.workload.application import ApplicationGraph
from repro.workload.task import Edge, Task

#: Priority order of real-time classes, most urgent first.
RT_CLASSES = {"hard-rt": 0, "soft-rt": 1, "best-effort": 2}


@dataclass(frozen=True)
class ApplicationProfile:
    """Statistical shape of one class of applications."""

    name: str
    n_tasks: Tuple[int, int] = (4, 12)
    ops: Tuple[float, float] = (2e5, 2e6)
    max_fanin: int = 3
    comm_volume: Tuple[float, float] = (100.0, 2000.0)
    activity: Tuple[float, float] = (0.6, 1.0)
    layer_width: Tuple[int, int] = (1, 4)
    #: Real-time criticality class (the ICCD'14 mixed-criticality model):
    #: "hard-rt" | "soft-rt" | "best-effort". Drives queue priority and
    #: the power manager's DVFS favouritism.
    rt_class: str = "best-effort"

    def __post_init__(self) -> None:
        if self.rt_class not in RT_CLASSES:
            raise ValueError(
                f"{self.name}: unknown rt_class {self.rt_class!r}; "
                f"known: {sorted(RT_CLASSES)}"
            )
        if self.n_tasks[0] < 1 or self.n_tasks[0] > self.n_tasks[1]:
            raise ValueError(f"{self.name}: bad n_tasks range {self.n_tasks}")
        if self.ops[0] <= 0 or self.ops[0] > self.ops[1]:
            raise ValueError(f"{self.name}: bad ops range {self.ops}")
        if self.max_fanin < 1:
            raise ValueError(f"{self.name}: max_fanin must be >= 1")
        if self.layer_width[0] < 1 or self.layer_width[0] > self.layer_width[1]:
            raise ValueError(f"{self.name}: bad layer_width {self.layer_width}")


#: Profile presets covering the workload mix of a dynamic manycore system:
#: small latency-sensitive jobs, medium pipelines and large compute kernels.
PROFILE_PRESETS = {
    "small": ApplicationProfile(
        name="small", n_tasks=(3, 6), ops=(1e5, 6e5),
        comm_volume=(50.0, 500.0), layer_width=(1, 2),
    ),
    "medium": ApplicationProfile(
        name="medium", n_tasks=(6, 14), ops=(3e5, 2e6),
        comm_volume=(100.0, 2000.0), layer_width=(1, 4),
    ),
    "large": ApplicationProfile(
        name="large", n_tasks=(12, 24), ops=(1e6, 6e6),
        comm_volume=(500.0, 5000.0), layer_width=(2, 6), max_fanin=4,
    ),
    # Mixed-criticality variants (the ICCD'14 workload model): the same
    # structural shapes, tagged with real-time classes.
    "hard-rt-small": ApplicationProfile(
        name="hard-rt-small", n_tasks=(3, 6), ops=(1e5, 6e5),
        comm_volume=(50.0, 500.0), layer_width=(1, 2), rt_class="hard-rt",
    ),
    "soft-rt-medium": ApplicationProfile(
        name="soft-rt-medium", n_tasks=(6, 14), ops=(3e5, 2e6),
        comm_volume=(100.0, 2000.0), layer_width=(1, 4), rt_class="soft-rt",
    ),
}


class TaskGraphGenerator:
    """Generates random :class:`ApplicationGraph` objects from a profile."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self._counter = 0

    def generate(self, profile: ApplicationProfile, name: Optional[str] = None) -> ApplicationGraph:
        rng = self.rng
        self._counter += 1
        graph_name = name or f"{profile.name}-{self._counter}"
        n_tasks = rng.randint(*profile.n_tasks)

        # Partition tasks into layers.
        layers: List[List[int]] = []
        next_id = 0
        while next_id < n_tasks:
            width = min(rng.randint(*profile.layer_width), n_tasks - next_id)
            layers.append(list(range(next_id, next_id + width)))
            next_id += width

        tasks = [
            Task(
                task_id=i,
                ops=rng.uniform(*profile.ops),
                activity=rng.uniform(*profile.activity),
                name=f"{graph_name}.t{i}",
            )
            for i in range(n_tasks)
        ]

        edges: List[Edge] = []
        for layer_idx in range(1, len(layers)):
            earlier = [t for layer in layers[:layer_idx] for t in layer]
            previous_layer = layers[layer_idx - 1]
            for dst in layers[layer_idx]:
                fanin = rng.randint(1, min(profile.max_fanin, len(earlier)))
                # Always keep one edge from the immediately preceding layer so
                # depth translates into pipeline structure, then sample the rest.
                srcs = {rng.choice(previous_layer)}
                while len(srcs) < fanin:
                    srcs.add(rng.choice(earlier))
                for src in sorted(srcs):
                    edges.append(
                        Edge(
                            src=src,
                            dst=dst,
                            volume_flits=rng.uniform(*profile.comm_volume),
                        )
                    )
        return ApplicationGraph(
            graph_name, tasks, edges, rt_class=profile.rt_class
        )

    def generate_mix(
        self,
        profiles: Sequence[ApplicationProfile],
        weights: Sequence[float],
        count: int,
    ) -> List[ApplicationGraph]:
        """Generate ``count`` graphs drawn from weighted profiles."""
        if len(profiles) != len(weights) or not profiles:
            raise ValueError("profiles and weights must be equal-length, non-empty")
        chosen = self.rng.choices(list(profiles), weights=list(weights), k=count)
        return [self.generate(profile) for profile in chosen]

"""Workload substrate: task graphs, generators, arrival processes."""

from repro.workload.application import ApplicationGraph, ApplicationInstance
from repro.workload.arrivals import (
    Arrival,
    BurstyArrivalProcess,
    PoissonArrivalProcess,
)
from repro.workload.generator import (
    PROFILE_PRESETS,
    RT_CLASSES,
    ApplicationProfile,
    TaskGraphGenerator,
)
from repro.workload.task import Edge, Task

__all__ = [
    "ApplicationGraph",
    "ApplicationInstance",
    "ApplicationProfile",
    "Arrival",
    "BurstyArrivalProcess",
    "Edge",
    "PROFILE_PRESETS",
    "PoissonArrivalProcess",
    "RT_CLASSES",
    "Task",
    "TaskGraphGenerator",
]

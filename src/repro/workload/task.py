"""Task and edge primitives of the application model.

A *task* is a unit of sequential computation measured in **operations**;
a core at DVFS level with speed ``s`` ops/µs finishes ``ops`` operations in
``ops / s`` µs.  The task's ``activity`` is the switching-activity factor
its instruction mix induces, scaling the core's dynamic power while the
task runs.  An *edge* carries ``volume`` flits of data from its producer to
its consumer over the NoC before the consumer may start.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Task:
    """One node of an application task graph."""

    task_id: int
    ops: float
    activity: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.ops <= 0:
            raise ValueError(f"task {self.task_id}: ops must be positive")
        if self.activity <= 0:
            raise ValueError(f"task {self.task_id}: activity must be positive")

    def duration_at(self, speed_ops_per_us: float) -> float:
        """Execution time (µs) at the given core speed."""
        if speed_ops_per_us <= 0:
            raise ValueError("speed must be positive")
        return self.ops / speed_ops_per_us


@dataclass(frozen=True)
class Edge:
    """A producer → consumer data dependency."""

    src: int
    dst: int
    volume_flits: float = 0.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self edge on task {self.src}")
        if self.volume_flits < 0:
            raise ValueError("edge volume must be non-negative")

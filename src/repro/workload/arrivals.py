"""Dynamic workload arrival processes.

Applications arrive by a Poisson process (exponential inter-arrival gaps)
drawn from a weighted mix of profiles.  The whole arrival trace is
materialised up front from its RNG stream: paired experiments (e.g. the
same workload under different test schedulers) then see *bit-identical*
offered load, which is what makes the <1%-penalty claim measurable at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.workload.application import ApplicationGraph, ApplicationInstance
from repro.workload.generator import ApplicationProfile, TaskGraphGenerator


@dataclass(frozen=True)
class Arrival:
    """One scheduled application arrival."""

    time: float
    graph: ApplicationGraph

    def instantiate(self, app_id: int) -> ApplicationInstance:
        return ApplicationInstance(app_id, self.graph, self.time)


class PoissonArrivalProcess:
    """Poisson arrivals of applications drawn from a profile mix."""

    def __init__(
        self,
        rate_per_ms: float,
        profiles: Sequence[ApplicationProfile],
        weights: Optional[Sequence[float]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if rate_per_ms <= 0:
            raise ValueError("arrival rate must be positive")
        if not profiles:
            raise ValueError("need at least one profile")
        self.rate_per_ms = rate_per_ms
        self.profiles = list(profiles)
        self.weights = list(weights) if weights is not None else [1.0] * len(profiles)
        if len(self.weights) != len(self.profiles):
            raise ValueError("weights must match profiles")
        self.rng = rng if rng is not None else random.Random(0)
        self._generator = TaskGraphGenerator(self.rng)

    def generate(self, horizon_us: float) -> List[Arrival]:
        """Arrival trace on ``[0, horizon_us]`` (µs timestamps)."""
        if horizon_us <= 0:
            raise ValueError("horizon must be positive")
        mean_gap_us = 1000.0 / self.rate_per_ms
        arrivals: List[Arrival] = []
        t = 0.0
        while True:
            t += self.rng.expovariate(1.0 / mean_gap_us)
            if t > horizon_us:
                break
            profile = self.rng.choices(self.profiles, weights=self.weights, k=1)[0]
            arrivals.append(Arrival(time=t, graph=self._generator.generate(profile)))
        return arrivals


class BurstyArrivalProcess(PoissonArrivalProcess):
    """Poisson arrivals modulated by on/off bursts.

    During a burst the rate is multiplied by ``burst_factor``; between
    bursts it drops to the base rate.  This reproduces the "highly dynamic
    workloads" of the ICCD'14 evaluation, which is what separates the PID
    budget controller from the naive policy (experiment E9).
    """

    def __init__(
        self,
        rate_per_ms: float,
        profiles: Sequence[ApplicationProfile],
        weights: Optional[Sequence[float]] = None,
        rng: Optional[random.Random] = None,
        burst_factor: float = 4.0,
        burst_length_us: float = 3000.0,
        quiet_length_us: float = 6000.0,
    ) -> None:
        super().__init__(rate_per_ms, profiles, weights, rng)
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if burst_length_us <= 0 or quiet_length_us <= 0:
            raise ValueError("burst/quiet lengths must be positive")
        self.burst_factor = burst_factor
        self.burst_length_us = burst_length_us
        self.quiet_length_us = quiet_length_us

    def generate(self, horizon_us: float) -> List[Arrival]:
        if horizon_us <= 0:
            raise ValueError("horizon must be positive")
        arrivals: List[Arrival] = []
        t = 0.0
        in_burst = False
        phase_end = self.quiet_length_us
        while t <= horizon_us:
            rate = self.rate_per_ms * (self.burst_factor if in_burst else 1.0)
            mean_gap_us = 1000.0 / rate
            t += self.rng.expovariate(1.0 / mean_gap_us)
            while t > phase_end:
                in_burst = not in_burst
                phase_end += (
                    self.burst_length_us if in_burst else self.quiet_length_us
                )
            if t > horizon_us:
                break
            profile = self.rng.choices(self.profiles, weights=self.weights, k=1)[0]
            arrivals.append(Arrival(time=t, graph=self._generator.generate(profile)))
        return arrivals

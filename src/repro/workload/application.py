"""Application model: a DAG of tasks plus instance-level runtime state."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.workload.task import Edge, Task


class ApplicationGraph:
    """An immutable task graph (template an application instance runs)."""

    def __init__(
        self,
        name: str,
        tasks: Sequence[Task],
        edges: Sequence[Edge],
        rt_class: str = "best-effort",
    ) -> None:
        self.name = name
        self.rt_class = rt_class
        self.tasks: Dict[int, Task] = {}
        for task in tasks:
            if task.task_id in self.tasks:
                raise ValueError(f"duplicate task id {task.task_id} in {name}")
            self.tasks[task.task_id] = task
        self.edges: List[Edge] = list(edges)
        self.successors: Dict[int, List[Edge]] = {t: [] for t in self.tasks}
        self.predecessors: Dict[int, List[Edge]] = {t: [] for t in self.tasks}
        for edge in self.edges:
            if edge.src not in self.tasks or edge.dst not in self.tasks:
                raise ValueError(f"edge {edge} references unknown task in {name}")
            self.successors[edge.src].append(edge)
            self.predecessors[edge.dst].append(edge)
        self._topo = self._topological_order()
        #: Task count as a plain attribute: mappers test it on every
        #: placement attempt and ``len(graph)`` costs a Python frame.
        self.n_tasks = len(self.tasks)
        self.n_edges = len(self.edges)
        # The graph is immutable, so the root/sink orderings are too;
        # computing them here keeps admission off the sort path.
        self._roots = sorted(t for t in self.tasks if not self.predecessors[t])
        self._sinks = sorted(t for t in self.tasks if not self.successors[t])

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_tasks

    def _topological_order(self) -> List[int]:
        indegree = {t: len(self.predecessors[t]) for t in self.tasks}
        ready = sorted(t for t, d in indegree.items() if d == 0)
        order: List[int] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            appended = []
            for edge in self.successors[current]:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    appended.append(edge.dst)
            # Keep determinism: new ready tasks enter in sorted order.
            for t in sorted(appended):
                ready.append(t)
        if len(order) != len(self.tasks):
            raise ValueError(f"application {self.name!r} contains a cycle")
        return order

    @property
    def topo_order(self) -> List[int]:
        """Topological task order.  Treat as read-only (not a copy)."""
        return self._topo

    def roots(self) -> List[int]:
        """Tasks with no predecessors.  Treat as read-only (not a copy)."""
        return self._roots

    def sinks(self) -> List[int]:
        """Tasks with no successors.  Treat as read-only (not a copy)."""
        return self._sinks

    def total_ops(self) -> float:
        return sum(task.ops for task in self.tasks.values())

    def total_comm_volume(self) -> float:
        return sum(edge.volume_flits for edge in self.edges)

    def critical_path_ops(self) -> float:
        """Longest chain of operations through the DAG (ignores comm)."""
        longest: Dict[int, float] = {}
        for task_id in self._topo:
            incoming = [
                longest[e.src] for e in self.predecessors[task_id]
            ]
            longest[task_id] = self.tasks[task_id].ops + (max(incoming) if incoming else 0.0)
        return max(longest.values()) if longest else 0.0


class ApplicationInstance:
    """A runtime instance of an :class:`ApplicationGraph`.

    Tracks arrival/start/finish timestamps and per-task completion so the
    execution engine can release dependent tasks and free cores.
    """

    def __init__(self, app_id: int, graph: ApplicationGraph, arrival_time: float) -> None:
        self.app_id = app_id
        self.graph = graph
        self.arrival_time = arrival_time
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        # task_id -> core_id assignment chosen by the mapper at start.
        self.placement: Dict[int, int] = {}
        self.completed_tasks: set = set()
        self.transferred_edges: set = set()

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.graph.name

    def is_finished(self) -> bool:
        return len(self.completed_tasks) == self.graph.n_tasks

    def is_started(self) -> bool:
        return self.start_time is not None

    def mark_task_done(self, task_id: int) -> None:
        if task_id not in self.graph.tasks:
            raise KeyError(f"unknown task {task_id}")
        if task_id in self.completed_tasks:
            raise ValueError(f"task {task_id} completed twice")
        self.completed_tasks.add(task_id)

    def task_ready(self, task_id: int) -> bool:
        """All predecessor tasks done and their edges transferred?"""
        for edge in self.graph.predecessors[task_id]:
            if edge.src not in self.completed_tasks:
                return False
            if (edge.src, edge.dst) not in self.transferred_edges:
                return False
        return True

    def ready_tasks(self, running: Iterable[int]) -> List[int]:
        """Tasks whose dependencies are satisfied and are not done/running."""
        running_set = set(running)
        return [
            t
            for t in self.graph.topo_order
            if t not in self.completed_tasks
            and t not in running_set
            and self.task_ready(t)
        ]

    def waiting_time(self) -> Optional[float]:
        """Queueing delay from arrival to mapping (None before start)."""
        if self.start_time is None:
            return None
        return self.start_time - self.arrival_time

    def turnaround(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ApplicationInstance(id={self.app_id}, graph={self.graph.name!r}, "
            f"arrived={self.arrival_time})"
        )

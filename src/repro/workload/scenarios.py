"""Named workload scenarios.

The evaluation exercises the system under qualitatively different offered
loads; a scenario bundles the arrival process, profile mix and rate under
a stable name so experiments and users say *what* they offer the chip,
not *how* to construct it.

* ``light``     — 2 apps/ms, mostly small apps: abundant idle budget.
* ``moderate``  — 3 apps/ms mixed: the mapper has placement freedom.
* ``saturating``— 8 apps/ms mixed: the headline-throughput regime.
* ``bursty``    — on/off modulated arrivals: the ICCD'14 dynamic regime.
* ``hotspot``   — saturating stream of small apps: many short tasks churn
  the same region, creating strongly skewed per-core utilization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workload.arrivals import (
    Arrival,
    BurstyArrivalProcess,
    PoissonArrivalProcess,
)
from repro.workload.generator import PROFILE_PRESETS, ApplicationProfile


@dataclass(frozen=True)
class WorkloadScenario:
    """A named offered-load recipe."""

    name: str
    rate_per_ms: float
    profile_names: Tuple[str, ...]
    profile_weights: Tuple[float, ...]
    bursty: bool = False
    burst_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.rate_per_ms <= 0:
            raise ValueError(f"{self.name}: rate must be positive")
        if len(self.profile_names) != len(self.profile_weights):
            raise ValueError(f"{self.name}: profiles/weights mismatch")
        for profile in self.profile_names:
            if profile not in PROFILE_PRESETS:
                raise ValueError(f"{self.name}: unknown profile {profile!r}")

    def profiles(self) -> List[ApplicationProfile]:
        return [PROFILE_PRESETS[n] for n in self.profile_names]

    def build_process(self, rng: random.Random):
        if self.bursty:
            return BurstyArrivalProcess(
                self.rate_per_ms,
                self.profiles(),
                list(self.profile_weights),
                rng=rng,
                burst_factor=self.burst_factor,
            )
        return PoissonArrivalProcess(
            self.rate_per_ms,
            self.profiles(),
            list(self.profile_weights),
            rng=rng,
        )

    def generate(self, horizon_us: float, rng: random.Random) -> List[Arrival]:
        return self.build_process(rng).generate(horizon_us)


SCENARIOS: Dict[str, WorkloadScenario] = {
    "light": WorkloadScenario(
        name="light", rate_per_ms=2.0,
        profile_names=("small", "medium"), profile_weights=(0.7, 0.3),
    ),
    "moderate": WorkloadScenario(
        name="moderate", rate_per_ms=3.0,
        profile_names=("small", "medium", "large"),
        profile_weights=(0.4, 0.45, 0.15),
    ),
    "saturating": WorkloadScenario(
        name="saturating", rate_per_ms=8.0,
        profile_names=("small", "medium", "large"),
        profile_weights=(0.4, 0.45, 0.15),
    ),
    "bursty": WorkloadScenario(
        name="bursty", rate_per_ms=6.0,
        profile_names=("small", "medium"), profile_weights=(0.5, 0.5),
        bursty=True,
    ),
    "hotspot": WorkloadScenario(
        name="hotspot", rate_per_ms=10.0,
        profile_names=("small",), profile_weights=(1.0,),
    ),
    "mixed-criticality": WorkloadScenario(
        name="mixed-criticality", rate_per_ms=8.0,
        profile_names=("hard-rt-small", "soft-rt-medium", "large"),
        profile_weights=(0.3, 0.4, 0.3),
    ),
}


def get_scenario(name: str) -> WorkloadScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def scenario_config_kwargs(name: str) -> Dict[str, object]:
    """The SystemConfig fields a scenario pins (for dataclasses.replace)."""
    scenario = get_scenario(name)
    return {
        "arrival_rate_per_ms": scenario.rate_per_ms,
        "profile_names": scenario.profile_names,
        "profile_weights": scenario.profile_weights,
        "bursty": scenario.bursty,
    }

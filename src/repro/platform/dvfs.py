"""Discrete DVFS operating points, including near-threshold levels.

The ICCD'14 power-management substrate (and hence the DATE'15 scheduler)
relies on *fine-grained* DVFS: a ladder of voltage/frequency pairs reaching
down to near-threshold operation.  :func:`build_vf_table` generates such a
ladder for a technology node by sweeping voltage from ``vdd_min`` (the
near-threshold point) to ``vdd_nominal`` and deriving each level's maximum
frequency from the node's alpha-power law.

Level 0 is always the *slowest* (near-threshold) point; the last level is
nominal.  Index arithmetic (``level + 1`` is faster) is used by the PID
actuator when it raises or lowers core speeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.platform.technology import TechnologyNode


@dataclass(frozen=True)
class VFLevel:
    """One DVFS operating point."""

    index: int
    vdd: float
    f_mhz: float

    @property
    def speed(self) -> float:
        """Execution speed in operations per microsecond.

        We lump IPC into the workload's operation counts, so speed is just
        the clock in cycles/µs (1 MHz == 1 cycle/µs).
        """
        return self.f_mhz


class VFTable:
    """An ordered ladder of :class:`VFLevel` (slow → fast)."""

    def __init__(self, levels: Sequence[VFLevel]) -> None:
        if not levels:
            raise ValueError("VF table needs at least one level")
        for i, level in enumerate(levels):
            if level.index != i:
                raise ValueError(f"level {i} has index {level.index}")
        for slow, fast in zip(levels, levels[1:]):
            if not (fast.vdd > slow.vdd and fast.f_mhz > slow.f_mhz):
                raise ValueError("levels must be strictly increasing in V and f")
        self._levels: List[VFLevel] = list(levels)

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self):
        return iter(self._levels)

    def __getitem__(self, index: int) -> VFLevel:
        return self._levels[index]

    @property
    def min_level(self) -> VFLevel:
        return self._levels[0]

    @property
    def max_level(self) -> VFLevel:
        return self._levels[-1]

    def clamp(self, index: int) -> VFLevel:
        """Level at ``index`` clamped into the valid range."""
        return self._levels[max(0, min(index, len(self._levels) - 1))]

    def step(self, level: VFLevel, delta: int) -> VFLevel:
        """Level ``delta`` steps away from ``level`` (clamped)."""
        return self.clamp(level.index + delta)

    def fastest_not_exceeding(self, f_mhz: float) -> VFLevel:
        """Fastest level whose frequency does not exceed ``f_mhz``.

        Falls back to the near-threshold level when even it is too fast —
        the physical floor of fine-grained DVFS.
        """
        candidate = self._levels[0]
        for level in self._levels:
            if level.f_mhz <= f_mhz:
                candidate = level
        return candidate


def level_dynamic_power(
    node: TechnologyNode, level: VFLevel, activity: float = 1.0
) -> float:
    """Memoized dynamic power of one core at ``level`` (bit-identical)."""
    from repro.platform.technology import cached_dynamic_power

    return cached_dynamic_power(node, level.vdd, level.f_mhz, activity)


def level_leakage_power(node: TechnologyNode, level: VFLevel) -> float:
    """Memoized nominal-leakage power of one core at ``level``."""
    from repro.platform.technology import cached_leakage_power

    return cached_leakage_power(node, level.vdd)


def build_vf_table(node: TechnologyNode, n_levels: int = 8) -> VFTable:
    """Build a DVFS ladder for ``node`` with ``n_levels`` points.

    Voltages are spaced uniformly in ``[vdd_min, vdd_nominal]``; frequencies
    follow the node's alpha-power law, so the ladder automatically includes
    a genuine near-threshold point at index 0.
    """
    if n_levels < 2:
        raise ValueError("need at least two DVFS levels")
    levels = []
    span = node.vdd_nominal - node.vdd_min
    for i in range(n_levels):
        vdd = node.vdd_min + span * i / (n_levels - 1)
        levels.append(VFLevel(index=i, vdd=vdd, f_mhz=node.frequency_at(vdd)))
    return VFTable(levels)

"""Process-variation model (per-core speed and leakage spread).

At 16 nm no two cores of a die are equal: within-die variation gives each
core its own maximum frequency and leakage.  Variation matters to this
paper twice over: it is one of the reasons cores must be *tested
individually* (a slow corner core fails at settings its neighbours
tolerate), and it skews the power/performance accounting that the budget
manager works with.

We use the standard decomposition into a smooth **systematic** component
(a random-orientation spatial gradient across the die, from lens/focus
effects) plus an i.i.d. **random** component per core:

``factor = 1 + systematic(x, y) + N(0, sigma_random)``

Speed factors multiply a core's effective frequency at every DVFS level;
leakage factors multiply its static power.  Fast cores leak more (the
classic inverse correlation), controlled by ``leak_speed_coupling``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.platform.chip import Chip


@dataclass(frozen=True)
class VariationParameters:
    """Magnitudes of the variation components."""

    sigma_systematic: float = 0.04   # peak amplitude of the spatial gradient
    sigma_random: float = 0.03       # stddev of the per-core random part
    leak_speed_coupling: float = 2.0  # leakage factor per unit speed delta
    min_factor: float = 0.75         # clip floor (a core can't be arbitrarily slow)
    max_factor: float = 1.25

    def __post_init__(self) -> None:
        if self.sigma_systematic < 0 or self.sigma_random < 0:
            raise ValueError("variation magnitudes must be non-negative")
        if not 0.0 < self.min_factor <= 1.0 <= self.max_factor:
            raise ValueError("clip range must bracket 1.0")


class VariationModel:
    """Draws and applies per-core speed/leakage factors."""

    def __init__(
        self,
        params: VariationParameters = VariationParameters(),
        rng: random.Random = None,
    ) -> None:
        self.params = params
        self.rng = rng if rng is not None else random.Random(0)

    def apply(self, chip: Chip) -> None:
        """Assign ``speed_factor`` and ``leak_factor`` to every core."""
        p = self.params
        angle = self.rng.uniform(0.0, 2.0 * math.pi)
        gx, gy = math.cos(angle), math.sin(angle)
        half_w = max(1.0, (chip.width - 1) / 2.0)
        half_h = max(1.0, (chip.height - 1) / 2.0)
        for core in chip:
            # Gradient position in [-1, 1] along the drawn orientation.
            u = ((core.x - half_w) / half_w) * gx + ((core.y - half_h) / half_h) * gy
            systematic = p.sigma_systematic * u
            rand = self.rng.gauss(0.0, p.sigma_random)
            speed = 1.0 + systematic + rand
            speed = max(p.min_factor, min(p.max_factor, speed))
            core.speed_factor = speed
            # Fast cores leak more: couple leakage to the speed delta.
            leak = 1.0 + p.leak_speed_coupling * (speed - 1.0)
            core.leak_factor = max(0.5, leak)

    @staticmethod
    def spread(chip: Chip) -> float:
        """Max/min ratio of applied speed factors (1.0 when uniform)."""
        factors = [core.speed_factor for core in chip]
        low = min(factors)
        if low <= 0:
            raise ValueError("non-positive speed factor on chip")
        return max(factors) / low

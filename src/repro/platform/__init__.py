"""Manycore platform substrate: technology nodes, DVFS, cores, chip."""

from repro.platform.chip import Chip
from repro.platform.core import BusyWindow, Core, CoreState
from repro.platform.dvfs import VFLevel, VFTable, build_vf_table
from repro.platform.thermal import ThermalModel, ThermalParameters, thermal_safe_power
from repro.platform.variation import VariationModel, VariationParameters
from repro.platform.technology import (
    DEFAULT_TDP_W,
    TECHNOLOGY_NODES,
    TechnologyNode,
    get_node,
    node_names,
)

__all__ = [
    "BusyWindow",
    "Chip",
    "Core",
    "CoreState",
    "DEFAULT_TDP_W",
    "TECHNOLOGY_NODES",
    "TechnologyNode",
    "ThermalModel",
    "ThermalParameters",
    "VariationModel",
    "VariationParameters",
    "VFLevel",
    "VFTable",
    "build_vf_table",
    "get_node",
    "node_names",
    "thermal_safe_power",
]

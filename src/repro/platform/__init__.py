"""Manycore platform substrate: technology nodes, DVFS, cores, chip."""

from repro.platform.chip import Chip
from repro.platform.core import BusyWindow, Core, CoreState
from repro.platform.coretypes import (
    CORE_TYPES,
    DEFAULT_CORE_TYPE,
    CoreType,
    core_type_names,
    get_core_type,
    register_core_type,
)
from repro.platform.dvfs import VFLevel, VFTable, build_vf_table
from repro.platform.techmodel import (
    DEFAULT_TECH_MODEL,
    TECHNOLOGY_MODELS,
    CMOSModel,
    NearThresholdModel,
    TechnologyModel,
    get_tech_model,
    register_tech_model,
    tech_model_names,
)
from repro.platform.thermal import ThermalModel, ThermalParameters, thermal_safe_power
from repro.platform.variation import VariationModel, VariationParameters
from repro.platform.technology import (
    DEFAULT_TDP_W,
    TECHNOLOGY_NODES,
    TechnologyNode,
    get_node,
    node_names,
)

__all__ = [
    "BusyWindow",
    "CMOSModel",
    "CORE_TYPES",
    "Chip",
    "Core",
    "CoreState",
    "CoreType",
    "DEFAULT_CORE_TYPE",
    "DEFAULT_TDP_W",
    "DEFAULT_TECH_MODEL",
    "NearThresholdModel",
    "TECHNOLOGY_MODELS",
    "TECHNOLOGY_NODES",
    "TechnologyModel",
    "TechnologyNode",
    "ThermalModel",
    "ThermalParameters",
    "VariationModel",
    "VariationParameters",
    "VFLevel",
    "VFTable",
    "build_vf_table",
    "core_type_names",
    "get_core_type",
    "get_node",
    "get_tech_model",
    "node_names",
    "register_core_type",
    "register_tech_model",
    "tech_model_names",
    "thermal_safe_power",
]

"""Per-core state model.

A :class:`Core` is a mostly-passive record of one tile's processor state:
its position in the mesh, what it is doing (idle / busy / under test /
retired-faulty), its current DVFS level, and its activity accounting.  The
behavioural logic lives in the execution engine, power manager and test
scheduler; keeping the core itself simple makes every state transition
auditable in one place per subsystem.

Activity accounting matters because both the proposed criticality metric
and the proposed mapper are driven by *utilization*: the fraction of recent
time a core spent executing workload.  :class:`BusyWindow` keeps a pruned
list of busy intervals and answers window queries exactly.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from typing import Callable, List, Optional, Tuple

from repro.platform.coretypes import CORE_TYPES, DEFAULT_CORE_TYPE, CoreType
from repro.platform.dvfs import VFLevel


class CoreState(enum.Enum):
    """Lifecycle states of a core."""

    IDLE = "idle"          # powered down (clock/power gated), no leakage
    BUSY = "busy"          # executing a workload task
    TESTING = "testing"    # executing an SBST routine
    FAULTY = "faulty"      # fault detected -> retired (permanently dark)

    # Members are singletons compared by identity, so the id-based C slot
    # hash is equivalent to Enum's name-based Python __hash__ — and the
    # chip's per-state indexes hash states on every transition and query.
    __hash__ = object.__hash__


class BusyWindow:
    """Exact busy-time accounting over a sliding window.

    Intervals are ``[start, end)`` in simulation time.  ``utilization``
    integrates the overlap of recorded intervals with the query window;
    intervals that can no longer affect queries are pruned.
    """

    def __init__(self) -> None:
        self._intervals: List[Tuple[float, float]] = []
        #: Interval end times, kept in lockstep for binary search: intervals
        #: are non-overlapping and appended in time order, so ends ascend.
        self._ends: List[float] = []
        self.total_busy: float = 0.0

    def add(self, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        if end == start:
            return
        if self._intervals and start < self._intervals[-1][1]:
            raise ValueError(
                "overlapping busy interval: "
                f"{start} < previous end {self._intervals[-1][1]}"
            )
        self._intervals.append((start, end))
        self._ends.append(end)
        self.total_busy += end - start

    def busy_in(self, t0: float, t1: float) -> float:
        """Busy time inside ``[t0, t1]``."""
        if t1 <= t0:
            return 0.0
        total = 0.0
        # Skip straight to the first interval that can overlap the window;
        # everything before it ends at or before t0.
        first = bisect_right(self._ends, t0)
        for start, end in self._intervals[first:]:
            if start >= t1:
                break
            lo = max(start, t0)
            hi = min(end, t1)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(self, now: float, window: float) -> float:
        """Fraction of ``[now - window, now]`` spent busy."""
        if window <= 0:
            raise ValueError("window must be positive")
        t0 = max(0.0, now - window)
        if now <= t0:
            return 0.0
        return self.busy_in(t0, now) / (now - t0)

    def prune(self, horizon: float) -> None:
        """Drop intervals that end before ``horizon``."""
        self._intervals = [iv for iv in self._intervals if iv[1] > horizon]
        self._ends = [end for _, end in self._intervals]


class Core:
    """State record of one processing tile.

    ``state``, ``level`` and ``leak_factor`` are observable: the owning
    :class:`~repro.platform.chip.Chip` installs a transition callback so
    its per-state indexes and the incremental power meter stay in sync
    with *every* mutation, including direct assignments in tests.
    """

    def __init__(
        self,
        core_id: int,
        x: int,
        y: int,
        level: VFLevel,
        core_type: Optional[CoreType] = None,
    ) -> None:
        self.core_id = core_id
        self.x = x
        self.y = y
        #: Mesh coordinates as a tuple; a plain attribute (not a property)
        #: because mapping and NoC code read it in tight loops.
        self.position: Tuple[int, int] = (x, y)
        #: This tile's flavour (power / SBST / aging scales).  Immutable
        #: for the core's lifetime, so it is a plain attribute.
        self.core_type: CoreType = (
            core_type if core_type is not None else CORE_TYPES[DEFAULT_CORE_TYPE]
        )
        #: Index into the owning chip's first-occurrence type catalog;
        #: the chip assigns it, and the power meter / batch SoA arrays
        #: use it to pick per-type cache rows without hashing names.
        self.type_index: int = 0
        self._state = CoreState.IDLE
        self._level = level
        #: Installed by Chip; called as ``cb(core, old_state, new_state)``
        #: on state changes and ``cb(core, s, s)`` on level/leakage changes.
        self.transition_cb: Optional[Callable[["Core", CoreState, CoreState], None]] = None
        # Process-variation factors (see repro.platform.variation): this
        # core's frequency multiplier at any DVFS level, and its leakage
        # multiplier. 1.0 means a nominal (variation-free) core.
        self.speed_factor: float = 1.0
        self._leak_factor: float = 1.0
        # Workload bookkeeping
        self.current_task: Optional[object] = None
        self._owner_app: Optional[int] = None
        #: Installed by Chip; called as ``cb(core, old_owner, new_owner)``
        #: whenever ownership changes, so the chip can maintain its
        #: free-core list/count even on direct ``core.owner_app = ...``
        #: assignments in tests.
        self.owner_cb: Optional[
            Callable[["Core", Optional[int], Optional[int]], None]
        ] = None
        self.busy_window = BusyWindow()
        self.busy_until: float = 0.0
        # Test bookkeeping
        self.last_test_end: float = 0.0
        self.tests_completed: int = 0
        self.test_time_total: float = 0.0
        self.testing_until: float = 0.0
        self.tested_levels: set = set()
        # DVFS-level index -> time the level was last covered by a test.
        self.level_last_test: dict = {}
        # Health bookkeeping (managed by repro.aging)
        self.age_stress: float = 0.0
        self.stress_since_test: float = 0.0
        self.fault_present: bool = False
        self.fault_injected_at: Optional[float] = None
        self.fault_detected_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Observable fields
    # ------------------------------------------------------------------
    @property
    def state(self) -> CoreState:
        return self._state

    @state.setter
    def state(self, new_state: CoreState) -> None:
        old = self._state
        if new_state is old:
            return
        self._state = new_state
        if self.transition_cb is not None:
            self.transition_cb(self, old, new_state)

    @property
    def level(self) -> VFLevel:
        return self._level

    @level.setter
    def level(self, new_level: VFLevel) -> None:
        if new_level is self._level:
            return
        self._level = new_level
        if self.transition_cb is not None:
            self.transition_cb(self, self._state, self._state)

    @property
    def owner_app(self) -> Optional[int]:
        return self._owner_app

    @owner_app.setter
    def owner_app(self, app_id: Optional[int]) -> None:
        old = self._owner_app
        if app_id == old:
            return
        self._owner_app = app_id
        if self.owner_cb is not None:
            self.owner_cb(self, old, app_id)

    @property
    def leak_factor(self) -> float:
        return self._leak_factor

    @leak_factor.setter
    def leak_factor(self, factor: float) -> None:
        if factor == self._leak_factor:
            return
        self._leak_factor = factor
        if self.transition_cb is not None:
            self.transition_cb(self, self._state, self._state)

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    def speed_at(self, level: Optional[VFLevel] = None) -> float:
        """Effective execution speed (ops/µs) including process variation."""
        lvl = level if level is not None else self.level
        return lvl.speed * self.speed_factor

    def is_idle(self) -> bool:
        return self.state is CoreState.IDLE

    def is_busy(self) -> bool:
        return self.state is CoreState.BUSY

    def is_testing(self) -> bool:
        return self.state is CoreState.TESTING

    def is_faulty(self) -> bool:
        return self.state is CoreState.FAULTY

    def is_allocatable(self) -> bool:
        """May the mapper hand this core to a new application?

        Cores under test are allocatable or not depending on the system's
        test-preemption policy; that policy is applied by the mapper, so
        here we only exclude retired cores and cores already owned.
        """
        return self.state is not CoreState.FAULTY and self.owner_app is None

    def utilization(self, now: float, window: float) -> float:
        """Recent utilization including any in-flight busy interval."""
        base = self.busy_window.busy_in(max(0.0, now - window), now)
        if self.state is CoreState.BUSY and self.busy_until > now:
            # The open interval [start, busy_until) was not recorded yet;
            # count its elapsed part. Its start is at or before `now`, and
            # recorded intervals never overlap it.
            start = max(max(0.0, now - window), self._open_interval_start(now))
            if now > start:
                base += now - start
        span = min(now, window)
        if span <= 0:
            return 0.0
        return min(1.0, base / span)

    def _open_interval_start(self, now: float) -> float:
        # The current task began when the core last became busy; we derive
        # it from busy_until minus the task duration tracked by the engine.
        # The execution engine stores it explicitly:
        return getattr(self, "busy_since", now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Core(id={self.core_id}, pos=({self.x},{self.y}), "
            f"state={self.state.value}, level={self.level.index})"
        )

"""Technology-node models and the dark-silicon budget arithmetic.

The DATE'15 paper frames online testing as a consumer of the *power slack*
left under a fixed chip-level power budget (TDP).  With every technology
generation the aggregate peak power of all cores grows faster than the
budget, so the fraction of the chip that may be simultaneously active — the
*lit* fraction — shrinks: dark silicon.

We model a node with a handful of physical-ish parameters:

* ``vdd_nominal`` / ``vdd_min`` — nominal and near-threshold supply voltage;
* ``vth`` — threshold voltage (for the alpha-power frequency law);
* ``f_nominal_mhz`` — core clock at nominal voltage;
* ``ceff_nf`` — effective switched capacitance per core (nF), lumping
  activity factor and capacitance;
* ``leak_w_nominal`` — per-core leakage power at nominal voltage;
* ``leak_beta`` — exponential voltage sensitivity of leakage.

Dynamic power of a core running at voltage ``V`` and frequency ``f`` is
``ceff · V² · f`` and leakage is ``leak_w_nominal · (V/Vnom) ·
exp(leak_beta · (V − Vnom))``.  Absolute Watts are calibrated, not measured
(see DESIGN.md, substitutions table): what matters is that the budget-to-
demand ratio reproduces the published dark-silicon fractions per node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class TechnologyNode:
    """Parameters of one CMOS technology node."""

    name: str
    feature_nm: int
    vdd_nominal: float
    vdd_min: float
    vth: float
    f_nominal_mhz: float
    ceff_nf: float
    leak_w_nominal: float
    leak_beta: float = 3.0
    alpha: float = 1.5  # alpha-power-law exponent for f(V)

    def __post_init__(self) -> None:
        if not (0.0 < self.vth < self.vdd_min < self.vdd_nominal):
            raise ValueError(
                f"{self.name}: require 0 < vth < vdd_min < vdd_nominal, got "
                f"vth={self.vth}, vdd_min={self.vdd_min}, "
                f"vdd_nom={self.vdd_nominal}"
            )
        if self.f_nominal_mhz <= 0 or self.ceff_nf <= 0:
            raise ValueError(f"{self.name}: frequency and ceff must be positive")

    # ------------------------------------------------------------------
    # Electrical models
    # ------------------------------------------------------------------
    def frequency_at(self, vdd: float) -> float:
        """Maximum clock (MHz) sustainable at ``vdd`` (alpha-power law)."""
        if vdd < self.vth:
            return 0.0
        scale = ((vdd - self.vth) / (self.vdd_nominal - self.vth)) ** self.alpha
        return self.f_nominal_mhz * scale

    def dynamic_power(self, vdd: float, f_mhz: float, activity: float = 1.0) -> float:
        """Dynamic power (W) of one core at ``vdd`` (V) and ``f_mhz`` (MHz)."""
        if activity < 0:
            raise ValueError(f"activity must be >= 0, got {activity}")
        # ceff[nF]·1e-9 F · V² · f[MHz]·1e6 Hz == ceff·V²·f · 1e-3 W
        return self.ceff_nf * vdd * vdd * f_mhz * 1e-3 * activity

    def leakage_power(self, vdd: float) -> float:
        """Leakage power (W) of one powered core at ``vdd``."""
        if vdd <= 0:
            return 0.0
        ratio = vdd / self.vdd_nominal
        return self.leak_w_nominal * ratio * math.exp(
            self.leak_beta * (vdd - self.vdd_nominal)
        )

    def peak_core_power(self) -> float:
        """Power (W) of one core at nominal voltage and frequency, active."""
        return (
            self.dynamic_power(self.vdd_nominal, self.f_nominal_mhz)
            + self.leakage_power(self.vdd_nominal)
        )

    # ------------------------------------------------------------------
    # Dark-silicon arithmetic
    # ------------------------------------------------------------------
    def lit_fraction(self, n_cores: int, tdp_w: float) -> float:
        """Fraction of cores that can run at peak within ``tdp_w`` (clipped)."""
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        demand = n_cores * self.peak_core_power()
        return min(1.0, tdp_w / demand)

    def dark_fraction(self, n_cores: int, tdp_w: float) -> float:
        """Complement of :meth:`lit_fraction`."""
        return 1.0 - self.lit_fraction(n_cores, tdp_w)


# ----------------------------------------------------------------------
# Memoized power evaluation (the simulation fast path)
# ----------------------------------------------------------------------
# A run evaluates the analytic power model millions of times but only ever
# at a handful of distinct (node, V/F level, activity) points: the DVFS
# ladder has ~8 levels and activities come from a small set of workload /
# SBST profiles.  Caching the *exact* method results keeps every consumer
# bit-identical to the analytic model while skipping the transcendental
# math.  The memo dict hangs off each node instance (``object.__setattr__``
# sidesteps the frozen dataclass) and is keyed by the remaining float
# arguments, so lookups hash small tuples in C instead of running the
# dataclass-generated ``TechnologyNode.__hash__`` per call the way an
# ``lru_cache`` over all arguments would.


def cached_dynamic_power(
    node: TechnologyNode, vdd: float, f_mhz: float, activity: float = 1.0
) -> float:
    """Memoized :meth:`TechnologyNode.dynamic_power` (bit-identical)."""
    try:
        cache = node._dyn_cache
    except AttributeError:
        cache = {}
        object.__setattr__(node, "_dyn_cache", cache)
    key = (vdd, f_mhz, activity)
    try:
        return cache[key]
    except KeyError:
        value = node.dynamic_power(vdd, f_mhz, activity)
        cache[key] = value
        return value


def cached_leakage_power(node: TechnologyNode, vdd: float) -> float:
    """Memoized :meth:`TechnologyNode.leakage_power` (bit-identical)."""
    try:
        cache = node._leak_cache
    except AttributeError:
        cache = {}
        object.__setattr__(node, "_leak_cache", cache)
    try:
        return cache[vdd]
    except KeyError:
        value = node.leakage_power(vdd)
        cache[vdd] = value
        return value


#: Calibrated node table.  With the default 80 W TDP on an 8x8 chip the lit
#: fractions are ~0.93 / 0.76 / 0.56 / 0.40 for 45/32/22/16 nm, matching the
#: utilization-wall trend the dark-silicon literature reports.
TECHNOLOGY_NODES: Dict[str, TechnologyNode] = {
    "45nm": TechnologyNode(
        name="45nm", feature_nm=45, vdd_nominal=1.10, vdd_min=0.55,
        vth=0.40, f_nominal_mhz=2000.0, ceff_nf=0.50, leak_w_nominal=0.14,
    ),
    "32nm": TechnologyNode(
        name="32nm", feature_nm=32, vdd_nominal=1.00, vdd_min=0.50,
        vth=0.38, f_nominal_mhz=2500.0, ceff_nf=0.58, leak_w_nominal=0.20,
    ),
    "22nm": TechnologyNode(
        name="22nm", feature_nm=22, vdd_nominal=0.95, vdd_min=0.48,
        vth=0.36, f_nominal_mhz=3000.0, ceff_nf=0.70, leak_w_nominal=0.35,
    ),
    "16nm": TechnologyNode(
        name="16nm", feature_nm=16, vdd_nominal=0.90, vdd_min=0.45,
        vth=0.34, f_nominal_mhz=3500.0, ceff_nf=0.95, leak_w_nominal=0.41,
    ),
}

#: Default chip-level thermal design power (W) shared by all nodes, so that
#: scaling the node while keeping TDP fixed exposes the dark-silicon squeeze.
DEFAULT_TDP_W = 80.0


def get_node(name: str) -> TechnologyNode:
    """Look up a technology node by name (e.g. ``"16nm"``)."""
    try:
        return TECHNOLOGY_NODES[name]
    except KeyError:
        known = ", ".join(sorted(TECHNOLOGY_NODES))
        raise KeyError(f"unknown technology node {name!r}; known: {known}") from None


def node_names() -> List[str]:
    """Node names ordered from oldest (largest feature) to newest."""
    return sorted(TECHNOLOGY_NODES, key=lambda n: -TECHNOLOGY_NODES[n].feature_nm)

"""Core-type descriptors for heterogeneous tiles.

The DATE'15 experiments run on a homogeneous grid, but the dark-silicon
argument sharpens when tiles are unequal: an accelerator-rich floorplan
(dark memory / accelerator literature, see PAPERS.md) mixes small
in-order tiles, wide out-of-order tiles and accelerator blocks whose
peak power, SBST session length and wear-out rates all differ.  A
:class:`CoreType` captures those differences as *dimensionless scales*
applied on top of the technology node's per-core analytic model:

* ``dyn_scale`` / ``leak_scale`` — multipliers on dynamic and leakage
  power (an O3 tile switches more capacitance; an accelerator is mostly
  dark logic with little leaking SRAM);
* ``sbst_cycles_scale`` — multiplier on SBST routine length (a wider
  pipeline needs longer march/functional patterns);
* ``detection_scale`` — multiplier on per-routine fault coverage
  (structured datapaths test better than control-heavy cores);
* ``aging_scale`` — multiplier on the stress accrual rate (duty-cycled
  accelerators age slower per busy microsecond);
* ``fault_hazard_scale`` — multiplier on the base fault hazard.

The load-bearing contract is *degeneracy*: the default ``std`` type
carries 1.0 for every scale, and IEEE-754 guarantees ``x * 1.0 == x``
bit-for-bit, so a chip where every tile is ``std`` produces floats —
and therefore result digests — identical to the pre-heterogeneity
engine.  The differential harness (``tests/test_hetero_differential.py``)
pins that contract against frozen goldens.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List


@dataclass(frozen=True)
class CoreType:
    """One tile flavour: power / test / aging scales over the node model."""

    name: str
    description: str
    dyn_scale: float = 1.0
    leak_scale: float = 1.0
    sbst_cycles_scale: float = 1.0
    detection_scale: float = 1.0
    aging_scale: float = 1.0
    fault_hazard_scale: float = 1.0

    def __post_init__(self) -> None:
        for field in fields(self):
            if field.type != "float":
                continue
            value = getattr(self, field.name)
            if value < 0.0:
                raise ValueError(
                    f"{self.name}: {field.name} must be >= 0, got {value}"
                )
        if not (0.0 < self.detection_scale <= 1.0):
            raise ValueError(
                f"{self.name}: detection_scale must be in (0, 1], got "
                f"{self.detection_scale}"
            )
        if self.sbst_cycles_scale <= 0.0:
            raise ValueError(
                f"{self.name}: sbst_cycles_scale must be > 0, got "
                f"{self.sbst_cycles_scale}"
            )

    def is_degenerate(self) -> bool:
        """True when every scale is exactly 1.0 (the ``std`` contract)."""
        return (
            self.dyn_scale == 1.0
            and self.leak_scale == 1.0
            and self.sbst_cycles_scale == 1.0
            and self.detection_scale == 1.0
            and self.aging_scale == 1.0
            and self.fault_hazard_scale == 1.0
        )


#: The type catalog.  ``std`` is the degenerate identity type every
#: pre-heterogeneity config implicitly used; the other three follow the
#: accelerator-rich floorplan archetypes (small IO tile, wide O3 tile,
#: fixed-function accelerator block).
CORE_TYPES: Dict[str, CoreType] = {
    "std": CoreType(
        name="std",
        description="baseline tile, identical to the homogeneous engine",
    ),
    "io": CoreType(
        name="io",
        description="small in-order tile: low power, short SBST, slow wear",
        dyn_scale=0.6,
        leak_scale=0.7,
        sbst_cycles_scale=0.7,
        detection_scale=1.0,
        aging_scale=0.8,
        fault_hazard_scale=0.9,
    ),
    "o3": CoreType(
        name="o3",
        description="wide out-of-order tile: hot, long SBST, fast wear",
        dyn_scale=1.6,
        leak_scale=1.3,
        sbst_cycles_scale=1.4,
        detection_scale=0.95,
        aging_scale=1.25,
        fault_hazard_scale=1.2,
    ),
    "accel": CoreType(
        name="accel",
        description="accelerator block: high peak, duty-cycled, mostly dark",
        dyn_scale=2.5,
        leak_scale=0.5,
        sbst_cycles_scale=0.6,
        detection_scale=0.9,
        aging_scale=1.1,
        fault_hazard_scale=0.8,
    ),
}

#: Name of the degenerate identity type.
DEFAULT_CORE_TYPE = "std"


def get_core_type(name: str) -> CoreType:
    """Look up a core type by name (e.g. ``"o3"``)."""
    try:
        return CORE_TYPES[name]
    except KeyError:
        known = ", ".join(sorted(CORE_TYPES))
        raise KeyError(
            f"unknown core type {name!r}; known: {known}"
        ) from None


def register_core_type(ctype: CoreType, overwrite: bool = False) -> CoreType:
    """Add a custom :class:`CoreType` to the catalog (pluggable layer).

    Used by experiments and the metamorphic relation suite to introduce
    special-purpose tiles (e.g. a zero-hazard control type) without
    editing the built-in catalog.  Registering an existing name requires
    ``overwrite=True``.
    """
    if ctype.name in CORE_TYPES and not overwrite:
        raise ValueError(f"core type {ctype.name!r} already registered")
    CORE_TYPES[ctype.name] = ctype
    return ctype


def core_type_names() -> List[str]:
    """Catalog names, degenerate ``std`` first, then alphabetical."""
    rest = sorted(n for n in CORE_TYPES if n != DEFAULT_CORE_TYPE)
    return [DEFAULT_CORE_TYPE] + rest

"""Lumped RC thermal model of the chip.

TDP is a proxy for a thermal limit; the dark-silicon literature that this
paper sits in (and the authors' follow-up work on Thermal Safe Power)
makes the temperature dynamics explicit.  We model each core as a thermal
RC node:

``C · dT/dt = P − (T − T_amb)/R_self − Σ_neighbours (T − T_n)/R_lateral``

integrated with forward Euler once per control epoch (the epoch, 100 µs,
is far below the silicon thermal time constant, so Euler is stable with
the default constants).  The model provides:

* per-core temperatures updated from per-core power;
* a hottest-core query the thermal-aware budget policy uses;
* steady-state helpers for calibration and testing.

It is intentionally lumped (no heat-spreader layer stack): the scheduling
experiments need the *spatial and temporal shape* of heating — hot cores
age faster, dense regions run hotter than spread ones — not
package-accurate absolute temperatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.platform.chip import Chip


@dataclass(frozen=True)
class ThermalParameters:
    """RC constants of the lumped per-core thermal node."""

    ambient_c: float = 45.0          # heatsink/ambient reference (°C)
    r_self_c_per_w: float = 12.0     # core -> ambient thermal resistance
    r_lateral_c_per_w: float = 8.0   # core <-> neighbour resistance
    #: Thermal capacitance. Small manycore tiles have millisecond-scale
    #: time constants (tau = R·C = 6 ms at the defaults), so temperatures
    #: genuinely evolve within the 10-100 ms simulation horizons.
    c_j_per_c: float = 0.0005
    limit_c: float = 95.0            # junction limit used by TSP policies

    def __post_init__(self) -> None:
        if self.r_self_c_per_w <= 0 or self.r_lateral_c_per_w <= 0:
            raise ValueError("thermal resistances must be positive")
        if self.c_j_per_c <= 0:
            raise ValueError("thermal capacitance must be positive")
        if self.limit_c <= self.ambient_c:
            raise ValueError("junction limit must exceed ambient")

    @property
    def tau_us(self) -> float:
        """Self time constant R·C in microseconds."""
        return self.r_self_c_per_w * self.c_j_per_c * 1e6


class ThermalModel:
    """Per-core RC temperature state driven by per-core power."""

    def __init__(
        self, chip: Chip, params: ThermalParameters = ThermalParameters()
    ) -> None:
        self.chip = chip
        self.params = params
        self._temps: List[float] = [params.ambient_c] * len(chip)
        self._neighbors: List[List[int]] = [
            [n.core_id for n in chip.neighbors(core)] for core in chip
        ]
        self.peak_seen_c: float = params.ambient_c

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def temperature(self, core_id: int) -> float:
        return self._temps[core_id]

    def temperatures(self) -> List[float]:
        return list(self._temps)

    def hottest(self) -> float:
        return max(self._temps)

    def hottest_core_id(self) -> int:
        return max(range(len(self._temps)), key=lambda i: self._temps[i])

    def headroom_c(self) -> float:
        """Degrees left before the hottest core hits the junction limit."""
        return self.params.limit_c - self.hottest()

    def over_limit(self) -> bool:
        return self.hottest() > self.params.limit_c

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self, core_powers: Dict[int, float], dt_us: float) -> None:
        """Advance all temperatures by ``dt_us`` given per-core power (W).

        Missing entries in ``core_powers`` mean zero power (dark cores).
        ``dt_us`` is clipped internally to a fraction of the thermal time
        constant for Euler stability when callers use long epochs.
        """
        if dt_us <= 0:
            raise ValueError("dt must be positive")
        p = self.params
        remaining = dt_us
        # Euler stability: the fastest node time constant includes the
        # lateral paths, C / (1/R_self + degree/R_lateral).
        max_degree = max(len(n) for n in self._neighbors) if self._neighbors else 0
        conductance = 1.0 / p.r_self_c_per_w + max_degree / p.r_lateral_c_per_w
        max_step = 0.1 * (p.c_j_per_c / conductance) * 1e6
        while remaining > 0:
            dt = min(remaining, max_step)
            remaining -= dt
            dt_s = dt * 1e-6
            current = self._temps
            nxt = list(current)
            for i, temp in enumerate(current):
                power = core_powers.get(i, 0.0)
                flow = power - (temp - p.ambient_c) / p.r_self_c_per_w
                for j in self._neighbors[i]:
                    flow -= (temp - current[j]) / p.r_lateral_c_per_w
                nxt[i] = temp + flow * dt_s / p.c_j_per_c
            self._temps = nxt
        self.peak_seen_c = max(self.peak_seen_c, self.hottest())

    def steady_state_uniform(self, power_per_core_w: float) -> float:
        """Steady temperature if every core dissipated the same power.

        With uniform power no lateral heat flows, so each node settles at
        ``T_amb + P · R_self`` — a closed form used for calibration tests.
        """
        return self.params.ambient_c + power_per_core_w * self.params.r_self_c_per_w

    def reset(self, temperature_c: Optional[float] = None) -> None:
        t = temperature_c if temperature_c is not None else self.params.ambient_c
        self._temps = [t] * len(self.chip)
        self.peak_seen_c = t


def thermal_safe_power(
    chip: Chip, params: ThermalParameters, active_cores: int
) -> float:
    """Thermal Safe Power: per-core power keeping ``active_cores`` at limit.

    The TSP idea (Pagani et al.) refines TDP: the safe per-core power
    depends on *how many* cores are active — few active cores may each
    run hotter.  For the lumped model with the worst case of an isolated
    dense cluster we approximate the steady state with the self path
    only, which is conservative:

    ``P_safe = (T_limit − T_amb) / R_self``

    scaled by a packing factor that grows the allowance when few cores
    are lit (their lateral neighbours are cool and help spread heat).
    """
    if active_cores < 1:
        raise ValueError("need at least one active core")
    n = len(chip)
    base = (params.limit_c - params.ambient_c) / params.r_self_c_per_w
    # Lateral help: a fully-packed chip gets none; a single lit core gets
    # its full neighbour count worth of extra spreading.
    packing = active_cores / n
    lateral_gain = (params.r_self_c_per_w / params.r_lateral_c_per_w) * (
        1.0 - packing
    )
    return base * (1.0 + lateral_gain / 4.0)

"""Chip model: a mesh of cores on one technology node with a DVFS table."""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.platform.core import Core, CoreState
from repro.platform.coretypes import DEFAULT_CORE_TYPE, CoreType, get_core_type
from repro.platform.dvfs import VFTable, build_vf_table
from repro.platform.techmodel import (
    DEFAULT_TECH_MODEL,
    TechnologyModel,
    get_tech_model,
)
from repro.platform.technology import DEFAULT_TDP_W, TechnologyNode, get_node

#: Chip-level transition listener: ``cb(core, old_state, new_state)``.
#: Level/leakage changes are reported with ``old_state is new_state``.
TransitionListener = Callable[[Core, CoreState, CoreState], None]


class Chip:
    """An ``width x height`` mesh manycore chip.

    The chip owns the cores and the node/DVFS parameters; power computation
    lives in :mod:`repro.power` and communication in :mod:`repro.noc`.

    Core state is *indexed*: the chip maintains one id set per
    :class:`CoreState`, updated through the cores' transition callbacks,
    so ``idle_cores()``/``busy_cores()``/``testing_cores()`` cost time
    proportional to their result instead of a full mesh rescan.  Query
    results are always in ascending core-id order (the same deterministic
    order the original full scans produced).
    """

    def __init__(
        self,
        width: int,
        height: int,
        node: TechnologyNode,
        vf_table: Optional[VFTable] = None,
        tdp_w: float = DEFAULT_TDP_W,
        type_grid: Optional[Sequence[str]] = None,
        tech_model: Union[str, TechnologyModel, None] = None,
    ) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"invalid mesh {width}x{height}")
        if tdp_w <= 0:
            raise ValueError("TDP must be positive")
        self.width = width
        self.height = height
        self.node = node
        self.vf_table = vf_table if vf_table is not None else build_vf_table(node)
        self.tdp_w = tdp_w
        if tech_model is None:
            tech_model = DEFAULT_TECH_MODEL
        self.tech_model: TechnologyModel = (
            get_tech_model(tech_model)
            if isinstance(tech_model, str)
            else tech_model
        )
        n_cores = width * height
        if type_grid is None or len(type_grid) == 0:
            type_names: List[str] = [DEFAULT_CORE_TYPE] * n_cores
        else:
            if len(type_grid) == 1:
                type_names = [type_grid[0]] * n_cores
            elif len(type_grid) == n_cores:
                type_names = list(type_grid)
            else:
                raise ValueError(
                    f"type_grid must have 1 or {n_cores} entries for a "
                    f"{width}x{height} mesh, got {len(type_grid)}"
                )
        #: First-occurrence type catalog; ``Core.type_index`` indexes it.
        self.core_types: List[CoreType] = []
        type_index_of: Dict[str, int] = {}
        grid_types: List[CoreType] = []
        for name in type_names:
            if name not in type_index_of:
                type_index_of[name] = len(self.core_types)
                self.core_types.append(get_core_type(name))
            grid_types.append(self.core_types[type_index_of[name]])
        #: True iff this chip leaves the degenerate contract: any non-std
        #: tile or a non-baseline model.  Gates the hetero-only journal
        #: fields so degenerate runs stay byte-identical on disk.
        self.is_heterogeneous: bool = (
            self.tech_model.name != DEFAULT_TECH_MODEL
            or any(t.name != DEFAULT_CORE_TYPE for t in self.core_types)
        )
        self.cores: List[Core] = []
        self._by_pos: Dict[Tuple[int, int], Core] = {}
        self._state_ids: Dict[CoreState, Set[int]] = {s: set() for s in CoreState}
        #: Memoized ``cores_in_state`` lists, invalidated per-state on
        #: transitions; control planes query the same states many times
        #: between transitions, so the sort is amortized away.
        self._state_lists: Dict[CoreState, Optional[List[Core]]] = {
            s: None for s in CoreState
        }
        #: Memoized ascending-id lists per state (the meter's sum order).
        self._sorted_ids: Dict[CoreState, Optional[List[int]]] = {
            s: None for s in CoreState
        }
        #: Memoized ``free_cores`` result, invalidated on any state change
        #: and (via the cores' owner callbacks) on any ownership change.
        self._free_list: Optional[List[Core]] = None
        #: Exact count of idle-and-unowned cores, maintained O(1) through
        #: the state/ownership callbacks so admission checks need not build
        #: the free list at all.
        self._free_count: int = width * height
        #: Monotonic change counter covering every state/level/leakage/
        #: ownership mutation; control code can compare two reads to know
        #: whether anything on the chip moved in between.
        self.mutations: int = 0
        self._listeners: List[TransitionListener] = []
        initial = self.vf_table.max_level
        for y in range(height):
            for x in range(width):
                core_id = y * width + x
                ctype = grid_types[core_id]
                core = Core(
                    core_id=core_id, x=x, y=y, level=initial, core_type=ctype
                )
                core.type_index = type_index_of[ctype.name]
                core.transition_cb = self._on_core_transition
                core.owner_cb = self._on_owner_change
                self.cores.append(core)
                self._by_pos[(x, y)] = core
                self._state_ids[core.state].add(core.core_id)

    @classmethod
    def build(
        cls,
        width: int = 8,
        height: int = 8,
        node_name: str = "16nm",
        tdp_w: float = DEFAULT_TDP_W,
        n_vf_levels: int = 8,
        type_grid: Optional[Sequence[str]] = None,
        tech_model: Union[str, TechnologyModel, None] = None,
    ) -> "Chip":
        """Convenience constructor from a node name."""
        node = get_node(node_name)
        return cls(
            width,
            height,
            node,
            build_vf_table(node, n_vf_levels),
            tdp_w,
            type_grid=type_grid,
            tech_model=tech_model,
        )

    # ------------------------------------------------------------------
    # Transition tracking
    # ------------------------------------------------------------------
    def _on_core_transition(
        self, core: Core, old: CoreState, new: CoreState
    ) -> None:
        self.mutations += 1
        if new is not old:
            self._state_ids[old].discard(core.core_id)
            self._state_ids[new].add(core.core_id)
            self._state_lists[old] = None
            self._state_lists[new] = None
            self._sorted_ids[old] = None
            self._sorted_ids[new] = None
            self._free_list = None
            if core._owner_app is None:
                if old is CoreState.IDLE:
                    self._free_count -= 1
                elif new is CoreState.IDLE:
                    self._free_count += 1
        for listener in self._listeners:
            listener(core, old, new)

    def _on_owner_change(
        self, core: Core, old: Optional[int], new: Optional[int]
    ) -> None:
        self.mutations += 1
        self._free_list = None
        if core._state is CoreState.IDLE:
            # Exactly one of old/new is None (the setter filters no-ops,
            # and app ids never change hands without a release in between).
            if new is None:
                self._free_count += 1
            elif old is None:
                self._free_count -= 1

    def add_transition_listener(self, listener: TransitionListener) -> None:
        """Subscribe to core state/level/leakage changes (e.g. the meter)."""
        self._listeners.append(listener)

    def state_ids(self, state: CoreState) -> Set[int]:
        """Ids of cores currently in ``state`` (live view; do not mutate)."""
        return self._state_ids[state]

    def sorted_state_ids(self, state: CoreState) -> List[int]:
        """Ascending ids of cores in ``state``.  Treat as read-only."""
        cached = self._sorted_ids[state]
        if cached is None:
            cached = sorted(self._state_ids[state])
            self._sorted_ids[state] = cached
        return cached

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self) -> Iterator[Core]:
        return iter(self.cores)

    def core_at(self, x: int, y: int) -> Core:
        try:
            return self._by_pos[(x, y)]
        except KeyError:
            raise IndexError(
                f"({x},{y}) outside {self.width}x{self.height} mesh"
            ) from None

    def core(self, core_id: int) -> Core:
        if not 0 <= core_id < len(self.cores):
            raise IndexError(f"core id {core_id} out of range")
        return self.cores[core_id]

    def neighbors(self, core: Core) -> List[Core]:
        """4-neighbourhood of ``core`` in the mesh."""
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            pos = (core.x + dx, core.y + dy)
            if pos in self._by_pos:
                out.append(self._by_pos[pos])
        return out

    # ------------------------------------------------------------------
    # State summaries
    # ------------------------------------------------------------------
    def cores_in_state(self, state: CoreState) -> List[Core]:
        """Cores in ``state``, ascending core id.  Treat as read-only."""
        cached = self._state_lists[state]
        if cached is None:
            cores = self.cores
            # Shares the sorted-id cache so a state queried both ways
            # between transitions sorts once.
            cached = [cores[i] for i in self.sorted_state_ids(state)]
            self._state_lists[state] = cached
        return cached

    def idle_cores(self) -> List[Core]:
        return self.cores_in_state(CoreState.IDLE)

    def busy_cores(self) -> List[Core]:
        return self.cores_in_state(CoreState.BUSY)

    def testing_cores(self) -> List[Core]:
        return self.cores_in_state(CoreState.TESTING)

    def healthy_cores(self) -> List[Core]:
        faulty = self._state_ids[CoreState.FAULTY]
        if not faulty:
            return list(self.cores)
        return [c for c in self.cores if c.core_id not in faulty]

    def free_cores(self) -> List[Core]:
        """Cores the mapper may allocate right now (idle and unowned).

        Treat the result as read-only: it is memoized until the next state
        or ownership change.
        """
        cached = self._free_list
        if cached is None:
            cached = [
                c
                for c in self.cores_in_state(CoreState.IDLE)
                if c._owner_app is None
            ]
            self._free_list = cached
        return cached

    def n_free_cores(self) -> int:
        """``len(free_cores())`` without building the list (O(1))."""
        return self._free_count

    def type_counts(self) -> Dict[CoreType, int]:
        """Tile count per :class:`CoreType`, in first-occurrence order."""
        counts: Dict[CoreType, int] = {t: 0 for t in self.core_types}
        for core in self.cores:
            counts[core.core_type] += 1
        return counts

    def lit_fraction(self) -> float:
        """Dark-silicon lit fraction of this chip under its own TDP.

        Derived from the technology model over the chip's type mix; on a
        homogeneous-``std`` chip under the baseline model this equals
        :meth:`TechnologyNode.lit_fraction` bit for bit.
        """
        return self.tech_model.lit_fraction(
            self.node, self.type_counts(), self.tdp_w
        )

    def dark_fraction(self) -> float:
        """Complement of :meth:`lit_fraction`."""
        return 1.0 - self.lit_fraction()

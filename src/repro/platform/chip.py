"""Chip model: a mesh of cores on one technology node with a DVFS table."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.platform.core import Core, CoreState
from repro.platform.dvfs import VFTable, build_vf_table
from repro.platform.technology import DEFAULT_TDP_W, TechnologyNode, get_node


class Chip:
    """An ``width x height`` mesh manycore chip.

    The chip owns the cores and the node/DVFS parameters; power computation
    lives in :mod:`repro.power` and communication in :mod:`repro.noc`.
    """

    def __init__(
        self,
        width: int,
        height: int,
        node: TechnologyNode,
        vf_table: Optional[VFTable] = None,
        tdp_w: float = DEFAULT_TDP_W,
    ) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"invalid mesh {width}x{height}")
        if tdp_w <= 0:
            raise ValueError("TDP must be positive")
        self.width = width
        self.height = height
        self.node = node
        self.vf_table = vf_table if vf_table is not None else build_vf_table(node)
        self.tdp_w = tdp_w
        self.cores: List[Core] = []
        self._by_pos: Dict[Tuple[int, int], Core] = {}
        initial = self.vf_table.max_level
        for y in range(height):
            for x in range(width):
                core = Core(core_id=y * width + x, x=x, y=y, level=initial)
                self.cores.append(core)
                self._by_pos[(x, y)] = core

    @classmethod
    def build(
        cls,
        width: int = 8,
        height: int = 8,
        node_name: str = "16nm",
        tdp_w: float = DEFAULT_TDP_W,
        n_vf_levels: int = 8,
    ) -> "Chip":
        """Convenience constructor from a node name."""
        node = get_node(node_name)
        return cls(width, height, node, build_vf_table(node, n_vf_levels), tdp_w)

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self) -> Iterator[Core]:
        return iter(self.cores)

    def core_at(self, x: int, y: int) -> Core:
        try:
            return self._by_pos[(x, y)]
        except KeyError:
            raise IndexError(
                f"({x},{y}) outside {self.width}x{self.height} mesh"
            ) from None

    def core(self, core_id: int) -> Core:
        if not 0 <= core_id < len(self.cores):
            raise IndexError(f"core id {core_id} out of range")
        return self.cores[core_id]

    def neighbors(self, core: Core) -> List[Core]:
        """4-neighbourhood of ``core`` in the mesh."""
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            pos = (core.x + dx, core.y + dy)
            if pos in self._by_pos:
                out.append(self._by_pos[pos])
        return out

    # ------------------------------------------------------------------
    # State summaries
    # ------------------------------------------------------------------
    def cores_in_state(self, state: CoreState) -> List[Core]:
        return [c for c in self.cores if c.state is state]

    def idle_cores(self) -> List[Core]:
        return self.cores_in_state(CoreState.IDLE)

    def busy_cores(self) -> List[Core]:
        return self.cores_in_state(CoreState.BUSY)

    def testing_cores(self) -> List[Core]:
        return self.cores_in_state(CoreState.TESTING)

    def healthy_cores(self) -> List[Core]:
        return [c for c in self.cores if c.state is not CoreState.FAULTY]

    def free_cores(self) -> List[Core]:
        """Cores the mapper may allocate right now (idle and unowned)."""
        return [c for c in self.cores if c.is_idle() and c.owner_app is None]

    def lit_fraction(self) -> float:
        """Dark-silicon lit fraction of this chip under its own TDP."""
        return self.node.lit_fraction(len(self.cores), self.tdp_w)

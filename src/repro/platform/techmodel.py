"""Pluggable technology models: (node, core type, V/F) -> power.

:mod:`repro.platform.technology` gives each :class:`TechnologyNode` one
analytic per-core power model.  A :class:`TechnologyModel` generalizes
that mapping along two axes the dark-silicon literature cares about:

* **heterogeneity** — every evaluation takes a
  :class:`~repro.platform.coretypes.CoreType`, so IO / O3 / accelerator
  tiles on the same die draw different power at the same V/F point and
  the chip's dark-silicon ratio becomes a *derived* quantity of the
  type mix (see :meth:`TechnologyModel.lit_fraction`);
* **model family** — the baseline :class:`CMOSModel` reproduces the
  node's formulas exactly; :class:`NearThresholdModel` layers the
  standard NTV trade-off on top (guard-banded timing costs extra
  dynamic power, aggressive back-bias tames sub-nominal leakage).

Degeneracy contract: ``CMOSModel`` with the ``std`` type multiplies the
node's result by exactly 1.0, which IEEE-754 guarantees is the identity
— so every consumer routed through a model still produces bit-identical
floats (and result digests) on homogeneous-``std`` configs.  The memo
caches below mirror :func:`~repro.platform.technology.cached_dynamic_power`:
one flat dict per (node, model, type) triple, hung off the node instance,
keyed by the remaining float arguments.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping

from repro.platform.coretypes import CoreType
from repro.platform.technology import TechnologyNode


class TechnologyModel:
    """Interface mapping (node, core type, V/F) to per-core power."""

    #: Registry key; subclasses must override.
    name = "base"

    def dynamic_power(
        self,
        node: TechnologyNode,
        ctype: CoreType,
        vdd: float,
        f_mhz: float,
        activity: float = 1.0,
    ) -> float:
        """Dynamic power (W) of one ``ctype`` core at ``vdd``/``f_mhz``."""
        raise NotImplementedError

    def leakage_power(
        self, node: TechnologyNode, ctype: CoreType, vdd: float
    ) -> float:
        """Leakage power (W) of one powered ``ctype`` core at ``vdd``."""
        raise NotImplementedError

    def peak_core_power(self, node: TechnologyNode, ctype: CoreType) -> float:
        """Power (W) of one ``ctype`` core at nominal V/F, fully active."""
        return self.dynamic_power(
            node, ctype, node.vdd_nominal, node.f_nominal_mhz
        ) + self.leakage_power(node, ctype, node.vdd_nominal)

    # ------------------------------------------------------------------
    # Dark-silicon arithmetic over a type mix
    # ------------------------------------------------------------------
    def lit_fraction(
        self,
        node: TechnologyNode,
        type_counts: Mapping[CoreType, int],
        tdp_w: float,
    ) -> float:
        """Fraction of the chip runnable at peak within ``tdp_w`` (clipped).

        ``type_counts`` maps each :class:`CoreType` present to its tile
        count, in a stable iteration order (the chip uses first-occurrence
        order).  With a single entry this reduces bit-exactly to
        :meth:`TechnologyNode.lit_fraction` under the baseline model.
        """
        demand = 0.0
        n_cores = 0
        for ctype, count in type_counts.items():
            if count <= 0:
                raise ValueError(
                    f"type count for {ctype.name!r} must be positive"
                )
            demand += count * self.peak_core_power(node, ctype)
            n_cores += count
        if n_cores <= 0:
            raise ValueError("type_counts must cover at least one core")
        return min(1.0, tdp_w / demand)

    def dark_fraction(
        self,
        node: TechnologyNode,
        type_counts: Mapping[CoreType, int],
        tdp_w: float,
    ) -> float:
        """Complement of :meth:`lit_fraction`."""
        return 1.0 - self.lit_fraction(node, type_counts, tdp_w)


class CMOSModel(TechnologyModel):
    """Baseline model: the node's analytic formulas times the type scales.

    With the degenerate ``std`` type this *is* the node model, bit for
    bit (``x * 1.0 == x``).
    """

    name = "cmos"

    def dynamic_power(
        self,
        node: TechnologyNode,
        ctype: CoreType,
        vdd: float,
        f_mhz: float,
        activity: float = 1.0,
    ) -> float:
        return node.dynamic_power(vdd, f_mhz, activity) * ctype.dyn_scale

    def leakage_power(
        self, node: TechnologyNode, ctype: CoreType, vdd: float
    ) -> float:
        return node.leakage_power(vdd) * ctype.leak_scale


class NearThresholdModel(CMOSModel):
    """Near-threshold variant: timing guard-bands and back-biased leakage.

    NTV operation needs wider timing margins (modelled as a constant
    relative dynamic overhead, ``timing_guard``) but allows aggressive
    body biasing that steepens the leakage roll-off below nominal supply
    (an extra ``exp(leak_gain * (vdd - vdd_nominal))`` factor, == 1 at
    nominal).  Both factors are positive and the leakage factor is
    monotone increasing in ``vdd``, so the property-test monotonicities
    of the baseline model are preserved.
    """

    name = "ntv"
    timing_guard = 0.08
    leak_gain = 1.5

    def dynamic_power(
        self,
        node: TechnologyNode,
        ctype: CoreType,
        vdd: float,
        f_mhz: float,
        activity: float = 1.0,
    ) -> float:
        base = super().dynamic_power(node, ctype, vdd, f_mhz, activity)
        return base * (1.0 + self.timing_guard)

    def leakage_power(
        self, node: TechnologyNode, ctype: CoreType, vdd: float
    ) -> float:
        base = super().leakage_power(node, ctype, vdd)
        if base == 0.0:
            return 0.0
        return base * math.exp(self.leak_gain * (vdd - node.vdd_nominal))


# ----------------------------------------------------------------------
# Memoized evaluation (the simulation fast path)
# ----------------------------------------------------------------------
def dyn_cache_for(
    node: TechnologyNode, model: TechnologyModel, ctype: CoreType
) -> Dict:
    """The per-(node, model, type) dynamic-power memo dict.

    Hung off the node instance (like ``node._dyn_cache``) and keyed by
    ``(vdd, f_mhz, activity)`` tuples; consumers may index it directly
    after priming, exactly as the power meter does with the homogeneous
    caches.
    """
    try:
        caches = node._model_dyn_caches
    except AttributeError:
        caches = {}
        object.__setattr__(node, "_model_dyn_caches", caches)
    key = (model.name, ctype.name)
    try:
        return caches[key]
    except KeyError:
        cache: Dict = {}
        caches[key] = cache
        return cache


def leak_cache_for(
    node: TechnologyNode, model: TechnologyModel, ctype: CoreType
) -> Dict:
    """The per-(node, model, type) leakage-power memo dict (keyed by vdd)."""
    try:
        caches = node._model_leak_caches
    except AttributeError:
        caches = {}
        object.__setattr__(node, "_model_leak_caches", caches)
    key = (model.name, ctype.name)
    try:
        return caches[key]
    except KeyError:
        cache: Dict = {}
        caches[key] = cache
        return cache


def cached_model_dynamic(
    model: TechnologyModel,
    node: TechnologyNode,
    ctype: CoreType,
    vdd: float,
    f_mhz: float,
    activity: float = 1.0,
) -> float:
    """Memoized :meth:`TechnologyModel.dynamic_power` (bit-identical)."""
    cache = dyn_cache_for(node, model, ctype)
    key = (vdd, f_mhz, activity)
    try:
        return cache[key]
    except KeyError:
        value = model.dynamic_power(node, ctype, vdd, f_mhz, activity)
        cache[key] = value
        return value


def cached_model_leakage(
    model: TechnologyModel,
    node: TechnologyNode,
    ctype: CoreType,
    vdd: float,
) -> float:
    """Memoized :meth:`TechnologyModel.leakage_power` (bit-identical)."""
    cache = leak_cache_for(node, model, ctype)
    try:
        return cache[vdd]
    except KeyError:
        value = model.leakage_power(node, ctype, vdd)
        cache[vdd] = value
        return value


#: Model registry.  ``cmos`` is the degenerate baseline every pre-existing
#: config implicitly used.
TECHNOLOGY_MODELS: Dict[str, TechnologyModel] = {
    "cmos": CMOSModel(),
    "ntv": NearThresholdModel(),
}

#: Name of the baseline model.
DEFAULT_TECH_MODEL = "cmos"


def get_tech_model(name: str) -> TechnologyModel:
    """Look up a technology model by name (e.g. ``"cmos"``)."""
    try:
        return TECHNOLOGY_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(TECHNOLOGY_MODELS))
        raise KeyError(
            f"unknown technology model {name!r}; known: {known}"
        ) from None


def register_tech_model(
    model: TechnologyModel, overwrite: bool = False
) -> TechnologyModel:
    """Add a custom :class:`TechnologyModel` to the registry.

    Registering an existing name requires ``overwrite=True``.
    """
    if model.name in TECHNOLOGY_MODELS and not overwrite:
        raise ValueError(f"technology model {model.name!r} already registered")
    TECHNOLOGY_MODELS[model.name] = model
    return model


def tech_model_names() -> List[str]:
    """Registry names, baseline first, then alphabetical."""
    rest = sorted(n for n in TECHNOLOGY_MODELS if n != DEFAULT_TECH_MODEL)
    return [DEFAULT_TECH_MODEL] + rest

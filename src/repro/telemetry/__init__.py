"""Runtime telemetry: live metrics, trace spans, and status exports.

Naming note — this package vs ``repro.metrics``: **`repro.metrics` is
simulation-domain metrics** (per-app latency/throughput records,
detection statistics, report tables — *results* of a run, part of what
experiments assert on), while **`repro.telemetry` is runtime
telemetry** (counters/gauges/histograms about the machinery while it
executes — events/s, launches and deferrals, cache hits, worker
health).  Nothing is re-exported across the two; telemetry never feeds
back into simulation results.

Like the journal and profiler (``repro.obs``), telemetry obeys the
no-op-sink invariant: every instrumentation site defaults to the
disabled :data:`NULL_TELEMETRY` registry and enabling telemetry never
changes what a run computes — registries are written to, never read
from, by instrumented code.  Unlike the journal and profiler, telemetry
does **not** force the batch engine onto the scalar oracle and does not
bypass the run cache: its counters describe *executed* work, so cached
hits contribute ``cache.*`` counters but no ``sim.*`` ones.

Cross-process model: the supervisor owns one registry per sweep or
campaign and opens a root trace span; each worker run executes under
:func:`worker_telemetry`, which installs a fresh registry as the
process-wide active one, opens a child span, and packages a *telemetry
blob* (metric snapshot + finished spans + wall time + pid) to travel
back with the result.  The supervisor merges blobs deterministically —
see ``repro.telemetry.registry`` for why merged snapshots are
order-independent.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.telemetry.export import (
    atomic_write_text,
    prometheus_text,
    snapshot_json,
)
from repro.telemetry.registry import (
    INVARIANT_PREFIXES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_TELEMETRY,
    invariant_view,
)
from repro.telemetry.spans import Span, SpanContext, Tracer, new_trace_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "INVARIANT_PREFIXES",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "Span",
    "SpanContext",
    "TelemetrySession",
    "Tracer",
    "active_telemetry",
    "atomic_write_text",
    "configure_telemetry",
    "invariant_view",
    "new_trace_id",
    "prometheus_text",
    "snapshot_json",
    "worker_telemetry",
]

_active_telemetry: MetricsRegistry = NULL_TELEMETRY


def configure_telemetry(registry: Optional[MetricsRegistry] = None) -> None:
    """Install the process-wide default registry (``None`` resets to off)."""
    global _active_telemetry
    _active_telemetry = registry if registry is not None else NULL_TELEMETRY


def active_telemetry() -> MetricsRegistry:
    """The process-wide default registry (NULL_TELEMETRY unless configured)."""
    return _active_telemetry


class WorkerScope:
    """What :func:`worker_telemetry` yields: the worker-side collect bucket."""

    def __init__(self, registry: MetricsRegistry, tracer: Tracer, span: Span) -> None:
        self.registry = registry
        self.tracer = tracer
        self.span = span
        self._start = time.perf_counter()

    def blob(self) -> Dict[str, object]:
        """The delta package the worker ships back with its result."""
        return {
            "metrics": self.registry.snapshot(),
            "spans": [span.to_data() for span in self.tracer.finished],
            "wall_s": time.perf_counter() - self._start,
            "pid": os.getpid(),
        }


@contextmanager
def worker_telemetry(
    ctx: Optional[SpanContext],
    slot: str,
    name: str = "worker.run",
    attrs: Optional[Dict[str, object]] = None,
) -> Iterator[Optional[WorkerScope]]:
    """Run a unit of work under a fresh registry and a child span.

    Installs a new enabled registry as the process-wide active one for
    the duration (restoring the previous registry even on exception),
    opens a child span of ``ctx`` with the slot-derived deterministic
    id, and closes it on exit.  Yields ``None`` when ``ctx`` is None —
    telemetry off, zero work — so call sites need no branching.
    """
    if ctx is None:
        yield None
        return
    previous = active_telemetry()
    registry = MetricsRegistry(enabled=True)
    tracer = Tracer(trace_id=ctx.trace_id)
    span = tracer.start_child(name, ctx, slot, attrs=attrs)
    configure_telemetry(registry)
    try:
        yield WorkerScope(registry, tracer, span)
    finally:
        configure_telemetry(previous)
        tracer.finish(span)


class TelemetrySession:
    """Supervisor-side aggregation scope for one sweep or campaign.

    Owns the merge registry and the root span, hands out the
    :class:`SpanContext` to propagate into work items, folds worker
    blobs back in, and on :meth:`finish` emits every finished span as a
    ``trace.span`` journal event at ``t=0.0`` (the ``cache.*`` events
    convention) so the journal file remains replayable as-is.
    """

    def __init__(
        self,
        name: str,
        registry: Optional[MetricsRegistry] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer()
        self.root = self.tracer.start(name, attrs=attrs)
        self.worker_wall_s = 0.0
        self.worker_pids: Dict[int, int] = {}

    @property
    def ctx(self) -> SpanContext:
        """The propagation handle for work items under this session."""
        return self.root.context()

    def merge_blob(self, blob: Optional[Dict[str, object]]) -> None:
        """Fold one worker's telemetry blob into the session."""
        if not blob:
            return
        metrics = blob.get("metrics")
        if metrics:
            self.registry.merge(metrics)  # type: ignore[arg-type]
        spans = blob.get("spans")
        if spans:
            self.tracer.adopt(spans)  # type: ignore[arg-type]
        self.worker_wall_s += float(blob.get("wall_s", 0.0))  # type: ignore[arg-type]
        pid = blob.get("pid")
        if pid is not None:
            pid = int(pid)  # type: ignore[arg-type]
            self.worker_pids[pid] = self.worker_pids.get(pid, 0) + 1

    def finish(self, **attrs: object) -> Span:
        """Close the root span and mirror all spans into the journal."""
        self.tracer.finish(self.root, **attrs)
        from repro.obs import active_journal

        journal = active_journal()
        if journal.enabled:
            for span in self.tracer.finished:
                journal.emit("trace.span", 0.0, **span.to_data())
        return self.root

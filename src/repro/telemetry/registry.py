"""The metrics registry: counters, gauges and bounded histograms.

Design constraints, in order of importance:

1. **No-op null sink.**  Instrumentation sites hold a reference to a
   registry that is usually :data:`NULL_TELEMETRY`; a disabled registry
   hands out shared null metric objects whose mutators do nothing, so an
   uninstrumented run pays one attribute read per site and — like the
   journal and the profiler — *enabling* telemetry must never change
   what a run computes (telemetry is read-only by contract).
2. **Deterministic, order-independent merge.**  Worker processes return
   metric deltas with their results and the supervisor merges them in
   whatever order work completes.  Every merged field is therefore an
   exact commutative/associative reduction: counters and histogram
   buckets are integer sums, gauges and histograms track only
   ``min``/``max``/``count`` (no float accumulators, whose addition
   order would leak the execution schedule into the snapshot), and a
   gauge's ``last`` field — inherently completion-order-dependent — is
   dropped by :meth:`MetricsRegistry.merge`.  Serial, pooled and
   batched execution of the same work merge to identical snapshots
   (over the invariant namespaces, see :func:`invariant_view`).
3. **Fixed memory.**  Histograms are bounded: a fixed bucket ladder is
   chosen at creation and observations only bump integer bucket counts,
   so a billion observations cost the same bytes as ten.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "INVARIANT_PREFIXES",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "invariant_view",
]


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the running total."""
        self.value += n


class Gauge:
    """Point-in-time measurement with order-independent min/max/count.

    ``last`` is the most recent value — meaningful within one process,
    dropped on cross-process merge (completion order is not data).
    """

    __slots__ = ("last", "min", "max", "count")

    def __init__(self) -> None:
        self.last: Optional[float] = None
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.count = 0

    def set(self, value: float) -> None:
        """Record ``value``, updating last/min/max and the sample count."""
        self.last = value
        if self.count == 0:
            self.min = self.max = value
        else:
            if value < self.min:  # type: ignore[operator]
                self.min = value
            if value > self.max:  # type: ignore[operator]
                self.max = value
        self.count += 1


#: Default histogram ladder: geometric decades with a 1-2-5 pattern,
#: wide enough for µs durations and batch widths alike.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1.0, 2.0, 5.0,
    10.0, 20.0, 50.0,
    100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0,
    10_000.0, 20_000.0, 50_000.0,
    100_000.0, 200_000.0, 500_000.0,
    1_000_000.0,
)


class Histogram:
    """Fixed-bound bucket histogram: O(len(bounds)) memory forever.

    ``bounds`` are upper bucket edges (inclusive, ascending); one
    implicit overflow bucket catches everything above the last edge.
    Only integer bucket counts and float min/max are kept — both merge
    exactly regardless of order.
    """

    __slots__ = ("bounds", "counts", "count", "min", "max")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BOUNDS) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError("histogram bounds must be strictly ascending")
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)  # +1 overflow bucket
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Drop ``value`` into its bucket and update min/max/count."""
        self.counts[bisect_left(self.bounds, value)] += 1
        if self.count == 0:
            self.min = self.max = value
        else:
            if value < self.min:  # type: ignore[operator]
                self.min = value
            if value > self.max:  # type: ignore[operator]
                self.max = value
        self.count += 1


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:  # noqa: D102 - no-op by design
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - no-op by design
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram((1.0,))


#: Namespaces whose values are a pure function of the simulated work —
#: identical whether the work ran serially, pooled or batched.  The
#: complement (``exec.*``, ``batch.*``, ``campaign.*`` and any future
#: machinery namespace) describes *how* the work was executed and
#: legitimately differs between paths.
INVARIANT_PREFIXES: Tuple[str, ...] = ("sim.", "power.", "test.", "cache.")


def invariant_view(snapshot: Mapping[str, object]) -> Dict[str, object]:
    """Project a snapshot onto the execution-path-invariant namespaces.

    The serial == pooled == batched identity contract is asserted on
    this view: machinery metrics (retries, queue depths, lane widths)
    are execution-schedule facts, not simulation facts.
    """

    def keep(section: Mapping[str, object]) -> Dict[str, object]:
        return {
            name: value
            for name, value in section.items()
            if name.startswith(INVARIANT_PREFIXES)
        }

    return {
        "counters": keep(snapshot.get("counters", {})),  # type: ignore[arg-type]
        "gauges": keep(snapshot.get("gauges", {})),  # type: ignore[arg-type]
        "histograms": keep(snapshot.get("histograms", {})),  # type: ignore[arg-type]
    }


class MetricsRegistry:
    """Named metrics with snapshot/merge semantics.

    One registry per *scope*: the supervisor holds one for an entire
    sweep or campaign, each worker run gets a fresh one (installed by
    ``repro.telemetry.worker_telemetry``) whose snapshot travels back as
    a delta.  A disabled registry (``enabled=False``) is a pure null
    sink; :data:`NULL_TELEMETRY` is the shared process-wide instance.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Metric accessors (create-on-first-use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (a shared no-op when disabled)."""
        if not self.enabled:
            return _NULL_COUNTER
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (a shared no-op when disabled)."""
        if not self.enabled:
            return _NULL_GAUGE
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        """The histogram called ``name`` (a shared no-op when disabled)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(bounds)
        return metric

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of every *touched* metric, keys sorted.

        Untouched metrics (zero counters, never-set gauges) are omitted
        so two registries that did the same work produce identical
        snapshots even if one pre-created metric objects the other
        never had reason to.
        """
        counters = {
            name: metric.value
            for name, metric in sorted(self._counters.items())
            if metric.value
        }
        gauges = {
            name: {
                "last": metric.last,
                "min": metric.min,
                "max": metric.max,
                "count": metric.count,
            }
            for name, metric in sorted(self._gauges.items())
            if metric.count
        }
        histograms = {
            name: {
                "bounds": list(metric.bounds),
                "counts": list(metric.counts),
                "count": metric.count,
                "min": metric.min,
                "max": metric.max,
            }
            for name, metric in sorted(self._histograms.items())
            if metric.count
        }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold a worker's snapshot into this registry, order-independently.

        Counters add; gauges combine min/max/count and *drop* ``last``
        (which worker finished most recently is scheduling noise, and
        keeping it would make merged snapshots depend on completion
        order); histograms require identical bounds and add bucket
        counts.
        """
        for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
            self.counter(name).inc(int(value))
        for name, data in snapshot.get("gauges", {}).items():  # type: ignore[union-attr]
            gauge = self.gauge(name)
            if gauge is _NULL_GAUGE:
                continue
            count = int(data["count"])
            if count <= 0:
                continue
            if gauge.count == 0:
                gauge.min, gauge.max = data["min"], data["max"]
            else:
                if data["min"] < gauge.min:  # type: ignore[operator]
                    gauge.min = data["min"]
                if data["max"] > gauge.max:  # type: ignore[operator]
                    gauge.max = data["max"]
            gauge.count += count
            gauge.last = None  # completion order is not data
        for name, data in snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
            bounds = tuple(float(b) for b in data["bounds"])
            hist = self.histogram(name, bounds)
            if hist is _NULL_HISTOGRAM:
                continue
            if hist.bounds != bounds:
                raise ValueError(
                    f"histogram {name!r}: cannot merge bounds {bounds} "
                    f"into existing {hist.bounds}"
                )
            for i, n in enumerate(data["counts"]):
                hist.counts[i] += int(n)
            count = int(data["count"])
            if count:
                if hist.count == 0:
                    hist.min, hist.max = data["min"], data["max"]
                else:
                    if data["min"] < hist.min:  # type: ignore[operator]
                        hist.min = data["min"]
                    if data["max"] > hist.max:  # type: ignore[operator]
                        hist.max = data["max"]
                hist.count += count

    def clear(self) -> None:
        """Drop every metric (the registry stays enabled/disabled as-is)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The shared disabled registry every instrumentation site defaults to.
NULL_TELEMETRY = MetricsRegistry(enabled=False)

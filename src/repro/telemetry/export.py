"""Exposition formats: Prometheus text + JSON snapshot, written atomically.

Both exporters are pure functions of a registry snapshot (the plain-dict
form from ``MetricsRegistry.snapshot()``), so they can run in-process or
over a snapshot loaded from disk.  Files are written with the same
tmp → fsync → rename dance the checkpoint store uses, so a reader never
sees a torn export.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import List, Mapping

__all__ = ["atomic_write_text", "prometheus_text", "snapshot_json"]


def _sanitize(name: str) -> str:
    """Dotted metric name → Prometheus-legal identifier."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    ident = "".join(out)
    if ident and ident[0].isdigit():
        ident = "_" + ident
    return ident


def _fmt(value: object) -> str:
    """Prometheus sample value formatting (ints without trailing .0)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def prometheus_text(snapshot: Mapping[str, object], prefix: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters become ``<prefix>_<name>_total``; gauges expose their last
    value plus ``_min``/``_max`` companions; histograms expose the
    standard cumulative ``_bucket{le="..."}`` series with ``+Inf`` and a
    ``_count``.  Output is deterministic: snapshot keys are already
    sorted and no timestamps are attached.
    """
    lines: List[str] = []

    for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
        ident = f"{prefix}_{_sanitize(name)}_total"
        lines.append(f"# TYPE {ident} counter")
        lines.append(f"{ident} {_fmt(value)}")

    for name, data in snapshot.get("gauges", {}).items():  # type: ignore[union-attr]
        ident = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {ident} gauge")
        last = data.get("last")
        if last is not None:
            lines.append(f"{ident} {_fmt(last)}")
        lines.append(f"{ident}_min {_fmt(data['min'])}")
        lines.append(f"{ident}_max {_fmt(data['max'])}")
        lines.append(f"{ident}_count {_fmt(data['count'])}")

    for name, data in snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
        ident = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {ident} histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            lines.append(f'{ident}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        lines.append(f'{ident}_bucket{{le="+Inf"}} {data["count"]}')
        lines.append(f"{ident}_count {_fmt(data['count'])}")

    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_json(snapshot: Mapping[str, object], **extra: object) -> str:
    """Render a snapshot (plus optional top-level extras) as pretty JSON."""
    doc = {"schema": "repro.telemetry/1", **extra, "metrics": snapshot}
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file → fsync → rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".export")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise

"""Trace spans: supervisor→worker causality for distributed runs.

A *trace* covers one top-level operation (a sweep, a campaign); *spans*
are the timed units of work inside it.  The supervisor opens a root
span and hands each worker a picklable :class:`SpanContext`; the worker
opens a child span whose id is **derived deterministically** from the
parent id plus its work slot (sweep index, point digest, group digest),
so concurrently spawned workers can never collide and a re-run of the
same work produces the same span ids.

Spans carry wall-clock timings, which are inherently non-deterministic
— they therefore live *outside* the metrics registry (whose snapshots
must merge order-independently) and travel in the per-worker telemetry
blob.  At the supervisor they are emitted as ``trace.span`` journal
events (at ``t=0.0``, the same convention ``cache.*`` events use), so
existing journal tooling — including the bit-exact replayer, which
ignores event kinds it does not model — keeps round-tripping.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Span", "SpanContext", "Tracer", "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random, not derived from run state)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The picklable propagation handle: just enough to parent a child.

    This is what crosses the process boundary inside executor work
    items; everything else about a span stays with its tracer.
    """

    trace_id: str
    span_id: str

    def child_id(self, slot: str) -> str:
        """Deterministic child span id for a work slot under this span."""
        return f"{self.span_id}/{slot}"


@dataclass
class Span:
    """One timed unit of work within a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start_s: float = 0.0
    end_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> Optional[float]:
        """Elapsed seconds, or ``None`` while the span is still open."""
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def context(self) -> SpanContext:
        """The picklable ``SpanContext`` for propagating this span."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_data(self) -> Dict[str, object]:
        """Flat dict form, suitable as journal-event payload."""
        data: Dict[str, object] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
        }
        for key, value in sorted(self.attrs.items()):
            data["attr_" + key] = value
        return data

    @classmethod
    def from_data(cls, data: Dict[str, object]) -> "Span":
        """Rebuild a span from its :meth:`to_data` journal payload."""
        attrs = {
            key[len("attr_"):]: value
            for key, value in data.items()
            if key.startswith("attr_")
        }
        return cls(
            name=str(data["name"]),
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=(
                None if data.get("parent_id") is None else str(data["parent_id"])
            ),
            start_s=float(data["start_s"]),  # type: ignore[arg-type]
            end_s=(
                None if data.get("end_s") is None else float(data["end_s"])  # type: ignore[arg-type]
            ),
            attrs=attrs,
        )


class Tracer:
    """Span factory for one process's view of a trace.

    The supervisor's tracer mints sequential ids (``s0``, ``s1``, ...);
    workers derive their ids from the propagated parent context instead
    (see :meth:`start_child`), so two tracers in different processes
    never hand out the same id.  Finished spans accumulate in
    :attr:`finished` (workers ship them back in the telemetry blob;
    the supervisor adopts them via :meth:`adopt`).
    """

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.finished: List[Span] = []
        self._seq = 0

    def start(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Open a span with a locally minted sequential id."""
        span_id = f"s{self._seq}"
        self._seq += 1
        return Span(
            name=name,
            trace_id=parent.trace_id if parent else self.trace_id,
            span_id=span_id if parent is None else f"{parent.span_id}.{span_id}",
            parent_id=parent.span_id if parent else None,
            start_s=time.time(),
            attrs=dict(attrs or {}),
        )

    def start_child(
        self,
        name: str,
        parent: SpanContext,
        slot: str,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Open a worker-side child span with a slot-derived id.

        ``slot`` must be unique among the siblings fanned out under
        ``parent`` (a sweep index, a point digest prefix); uniqueness of
        the derived id then needs no coordination between processes.
        """
        return Span(
            name=name,
            trace_id=parent.trace_id,
            span_id=parent.child_id(slot),
            parent_id=parent.span_id,
            start_s=time.time(),
            attrs=dict(attrs or {}),
        )

    def finish(self, span: Span, **attrs: object) -> Span:
        """Close a span, stamp extra attrs, and record it."""
        span.end_s = time.time()
        if attrs:
            span.attrs.update(attrs)
        self.finished.append(span)
        return span

    def adopt(self, spans: List[Dict[str, object]]) -> None:
        """Take ownership of already-finished spans shipped from a worker."""
        for data in spans:
            self.finished.append(Span.from_data(data))

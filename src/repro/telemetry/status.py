"""The live campaign status surface.

A running campaign periodically flushes three files into its campaign
directory, each written atomically so readers in other processes never
see a torn document:

* ``status.json``     — progress, ETA, worker health, cache hit rate;
* ``telemetry.prom``  — the merged registry in Prometheus text format;
* ``telemetry.json``  — the merged registry as a JSON snapshot.

``repro campaign status <dir>`` and ``repro top`` read these files
read-only.  For a campaign directory created before the telemetry
pipeline existed (or a run with ``--no-telemetry``), there is no status
file: :func:`load_status` degrades gracefully to row-count progress
derived from the ``results.jsonl`` checkpoint store, so old checkpoint
dirs stay inspectable forever.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from repro.telemetry.export import (
    atomic_write_text,
    prometheus_text,
    snapshot_json,
)
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "PROM_FILE",
    "SNAPSHOT_FILE",
    "STATUS_FILE",
    "CampaignStatusWriter",
    "degraded_status",
    "load_status",
    "read_status",
    "render_status",
    "render_top",
]

STATUS_FILE = "status.json"
PROM_FILE = "telemetry.prom"
SNAPSHOT_FILE = "telemetry.json"

#: Minimum seconds between throttled status flushes.
DEFAULT_FLUSH_INTERVAL_S = 0.25


class CampaignStatusWriter:
    """Accumulates campaign progress and flushes the status files.

    One writer per ``run_campaign`` invocation.  ``note_*`` calls are
    cheap; :meth:`write` throttles itself to at most one flush per
    ``min_interval_s`` unless forced (the final flush in the runner's
    ``finally`` block is always forced, with state ``complete`` or
    ``interrupted``).
    """

    def __init__(
        self,
        campaign_dir: str,
        name: str,
        registry: MetricsRegistry,
        planned: Optional[int] = None,
        already_done: int = 0,
        cache=None,
        min_interval_s: float = DEFAULT_FLUSH_INTERVAL_S,
    ) -> None:
        self.campaign_dir = campaign_dir
        self.name = name
        self.registry = registry
        self.planned = planned
        self.already_done = already_done
        self.cache = cache
        self.min_interval_s = min_interval_s
        self.started_at = time.time()
        self.done_this_run = 0
        self.quarantined = 0
        self.workers: Dict[int, Dict[str, object]] = {}
        self._last_flush = 0.0

    # ------------------------------------------------------------------
    # Progress notes
    # ------------------------------------------------------------------
    def note_points(self, n: int = 1) -> None:
        """Count ``n`` points as completed in this invocation."""
        self.done_this_run += n

    def note_quarantine(self, n: int = 1) -> None:
        """Count ``n`` points as quarantined in this invocation."""
        self.quarantined += n

    def note_worker(self, blob: Optional[Dict[str, object]]) -> None:
        """Record a heartbeat from the worker that produced ``blob``."""
        if not blob:
            return
        pid = blob.get("pid")
        if pid is None:
            return
        pid = int(pid)  # type: ignore[arg-type]
        entry = self.workers.setdefault(pid, {"completed": 0, "wall_s": 0.0})
        entry["completed"] = int(entry["completed"]) + 1
        entry["wall_s"] = float(entry["wall_s"]) + float(blob.get("wall_s", 0.0))  # type: ignore[arg-type]
        entry["last_seen"] = time.time()

    # ------------------------------------------------------------------
    # Status document
    # ------------------------------------------------------------------
    def status(self, state: str) -> Dict[str, object]:
        """Build the status document for ``state`` (not written to disk)."""
        now = time.time()
        elapsed = max(now - self.started_at, 1e-9)
        done = self.already_done + self.done_this_run
        rate = self.done_this_run / elapsed
        eta_s: Optional[float] = None
        if self.planned is not None and rate > 0:
            eta_s = max(self.planned - done, 0) / rate
        snapshot = self.registry.snapshot()
        events = snapshot.get("counters", {}).get("sim.events", 0)  # type: ignore[union-attr]
        cache_info: Optional[Dict[str, object]] = None
        if self.cache is not None:
            cache_info = self.cache.stats_dict()
        return {
            "schema": "repro.campaign.status/1",
            "name": self.name,
            "state": state,
            "pid": os.getpid(),
            "started_at": self.started_at,
            "updated_at": now,
            "points_done": done,
            "points_planned": self.planned,
            "points_done_this_run": self.done_this_run,
            "quarantined": self.quarantined,
            "rate_per_s": rate,
            "eta_s": eta_s,
            "events_per_s": int(events) / elapsed,
            "cache": cache_info,
            "workers": {
                str(pid): dict(entry) for pid, entry in sorted(self.workers.items())
            },
            "metrics": snapshot,
        }

    def write(self, state: str = "running", force: bool = False) -> bool:
        """Flush status + exports; returns whether a flush happened."""
        now = time.time()
        if not force and now - self._last_flush < self.min_interval_s:
            return False
        self._last_flush = now
        status = self.status(state)
        snapshot = status["metrics"]
        atomic_write_text(
            os.path.join(self.campaign_dir, STATUS_FILE),
            json.dumps(status, indent=2, sort_keys=True) + "\n",
        )
        atomic_write_text(
            os.path.join(self.campaign_dir, PROM_FILE),
            prometheus_text(snapshot),  # type: ignore[arg-type]
        )
        atomic_write_text(
            os.path.join(self.campaign_dir, SNAPSHOT_FILE),
            snapshot_json(snapshot, state=state, name=self.name),  # type: ignore[arg-type]
        )
        return True


# ----------------------------------------------------------------------
# Read side
# ----------------------------------------------------------------------
def read_status(campaign_dir: str) -> Optional[Dict[str, object]]:
    """The parsed status file, or ``None`` if absent or unreadable."""
    path = os.path.join(campaign_dir, STATUS_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    return data


def degraded_status(campaign_dir: str) -> Dict[str, object]:
    """Row-count progress for a campaign dir without a status file.

    Works on checkpoint directories from before the telemetry pipeline
    existed: reads ``spec.json`` and counts ``results.jsonl`` rows.
    Raises ``OSError`` if the directory is not a campaign dir at all.
    """
    from repro.campaign.runner import load_spec
    from repro.campaign.store import RESULTS_FILE, ResultStore

    spec = load_spec(campaign_dir)
    store = ResultStore(os.path.join(campaign_dir, RESULTS_FILE))
    records = store.load()
    return {
        "schema": "repro.campaign.status/1",
        "name": spec.name,
        "state": "unknown",
        "degraded": True,
        "points_done": len(records),
        "points_planned": spec.n_planned_points(),
        "quarantined": None,
        "rate_per_s": None,
        "eta_s": None,
        "events_per_s": None,
        "cache": None,
        "workers": {},
        "metrics": None,
    }


def load_status(campaign_dir: str) -> Dict[str, object]:
    """Status file if present, else the degraded row-count view."""
    status = read_status(campaign_dir)
    if status is not None:
        return status
    return degraded_status(campaign_dir)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def _progress(status: Dict[str, object]) -> str:
    done = status.get("points_done")
    planned = status.get("points_planned")
    if planned:
        pct = 100.0 * int(done) / int(planned)  # type: ignore[arg-type]
        return f"{done}/{planned} ({pct:.0f}%)"
    return f"{done}/?"


def render_status(status: Dict[str, object]) -> str:
    """Human-readable multi-line view of one campaign's status."""
    lines: List[str] = []
    state = status.get("state", "unknown")
    lines.append(f"campaign   {status.get('name', '?')}  [{state}]")
    if status.get("degraded"):
        lines.append(
            "           (no status file - progress derived from results.jsonl)"
        )
    lines.append(f"progress   {_progress(status)}")
    quarantined = status.get("quarantined")
    if quarantined:
        lines.append(f"quarantine {quarantined}")
    rate = status.get("rate_per_s")
    if rate is not None:
        lines.append(f"rate       {float(rate):.2f} points/s")  # type: ignore[arg-type]
    if status.get("eta_s") is not None:
        lines.append(f"eta        {_fmt_duration(float(status['eta_s']))}")  # type: ignore[arg-type]
    events = status.get("events_per_s")
    if events is not None:
        lines.append(f"sim        {float(events):,.0f} events/s")  # type: ignore[arg-type]
    cache = status.get("cache")
    if isinstance(cache, dict):
        # RunCache.stats_dict() nests the session counters.
        session = cache.get("session")
        if isinstance(session, dict):
            cache = session
        hits = int(cache.get("hits", 0))
        misses = int(cache.get("misses", 0))
        total = hits + misses
        if total:
            lines.append(
                f"cache      {hits}/{total} hits ({100.0 * hits / total:.0f}%)"
            )
    workers = status.get("workers")
    if isinstance(workers, dict) and workers:
        now = time.time()
        parts = []
        for pid, entry in sorted(workers.items()):
            age = now - float(entry.get("last_seen", now))
            parts.append(f"{pid} ({int(entry.get('completed', 0))} done, "
                         f"{_fmt_duration(age)} ago)")
        lines.append(f"workers    {len(workers)}: " + ", ".join(parts))
    return "\n".join(lines)


def render_top(statuses: List[Dict[str, object]]) -> str:
    """Compact one-line-per-campaign table for ``repro top``."""
    header = (
        f"{'CAMPAIGN':<24} {'STATE':<12} {'PROGRESS':<16} "
        f"{'RATE':>9} {'ETA':>8} {'EVENTS/S':>10} {'WORKERS':>8}"
    )
    lines = [header]
    for status in statuses:
        rate = status.get("rate_per_s")
        events = status.get("events_per_s")
        workers = status.get("workers") or {}
        lines.append(
            f"{str(status.get('name', '?'))[:24]:<24} "
            f"{str(status.get('state', '?'))[:12]:<12} "
            f"{_progress(status):<16} "
            f"{(f'{float(rate):.2f}/s' if rate is not None else '-'):>9} "
            f"{_fmt_duration(status.get('eta_s')):>8} "  # type: ignore[arg-type]
            f"{(f'{float(events):,.0f}' if events is not None else '-'):>10} "
            f"{len(workers):>8}"
        )
    return "\n".join(lines)

"""Content-addressed blob store with a durable JSONL index.

Layout of one store directory::

    <root>/index.jsonl      append-only op log (the index)
    <root>/blobs/ab/abcd…   blob files, named by the sha256 of their bytes
    <root>/tmp/             write-then-rename staging area (same filesystem)
    <root>/quarantine/      blobs that failed their integrity recheck

**Durability.**  Blob insertion is write → flush → fsync → atomic
``os.replace`` into ``blobs/``, so a crash never leaves a partial blob
under its final name.  Index mutations (``put``/``del``) are one
flushed+fsynced JSON line each; LRU ``touch`` lines are flushed but not
fsynced (losing recency hints in a crash is harmless).  The loader
tolerates a torn final line — the signature of a crash mid-append — and
self-heals from corruption anywhere else by replaying every parseable
line and compacting the log (a cache, unlike a checkpoint store, may
always drop entries safely).

**Integrity.**  ``get`` re-hashes the blob bytes and compares them with
the content address; a mismatch (bit rot, truncation, manual tampering)
moves the blob to ``quarantine/``, deletes the index entry, and reports
a miss so the caller transparently recomputes.

**Eviction.**  With ``max_bytes`` set, every insertion evicts
least-recently-used entries (by op sequence number: a ``get`` refreshes
recency) until the store fits.  Blob files are reference-counted across
entries, so deduplicated blobs survive until their last key is evicted.

The store is single-writer by design: in pooled sweeps and campaigns
the *supervisor* owns the index while workers at most deposit blob
files (which is safe — identical content renames onto the same name).
Concurrent read-only opens of one directory are fine.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

INDEX_FILE = "index.jsonl"
BLOBS_DIR = "blobs"
TMP_DIR = "tmp"
QUARANTINE_DIR = "quarantine"

#: ``del`` op reasons kept in the index (and counted by ``stats``).
DEL_REASONS = ("evict", "corrupt", "gc", "clear", "explicit")


def blob_digest(data: bytes) -> str:
    """Content address of a blob: sha256 hex of its bytes."""
    return hashlib.sha256(data).hexdigest()


def blob_path(root: str, digest: str) -> str:
    """Path of a blob inside a store rooted at ``root``."""
    return os.path.join(root, BLOBS_DIR, digest[:2], digest)


def write_blob(root: str, data: bytes) -> Tuple[str, int]:
    """Atomically deposit ``data`` under its content address.

    Returns ``(digest, size)``.  Safe to call from worker processes
    concurrently with a supervisor: the write goes to a unique temp file
    first and ``os.replace`` onto the content-addressed name is atomic,
    so two writers of identical content converge on one file and
    writers of different content never collide.  This touches only the
    blob area — never the index.
    """
    digest = blob_digest(data)
    final = blob_path(root, digest)
    if os.path.exists(final):
        return digest, len(data)
    tmp_dir = os.path.join(root, TMP_DIR)
    os.makedirs(tmp_dir, exist_ok=True)
    os.makedirs(os.path.dirname(final), exist_ok=True)
    tmp = os.path.join(tmp_dir, f"{digest}.{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    return digest, len(data)


@dataclass
class Entry:
    """One live index entry: a key bound to a content-addressed blob."""

    key: str
    blob: str
    size: int
    seq: int  # last-use sequence number (monotonic; drives LRU order)


class ContentStore:
    """The content-addressed store behind :class:`repro.cache.RunCache`."""

    def __init__(self, root: str, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self.root = root
        self.max_bytes = max_bytes
        os.makedirs(os.path.join(root, BLOBS_DIR), exist_ok=True)
        os.makedirs(os.path.join(root, QUARANTINE_DIR), exist_ok=True)
        os.makedirs(os.path.join(root, TMP_DIR), exist_ok=True)
        self._entries: Dict[str, Entry] = {}
        self._seq = 0
        #: lifetime op counters replayed from the index (survive restarts)
        self.counters: Dict[str, int] = {
            "puts": 0,
            "touches": 0,
            "evictions": 0,
            "corrupt": 0,
            "deleted": 0,
        }
        self._index_handle = None
        self._load_index()

    # ------------------------------------------------------------------
    # Index log
    # ------------------------------------------------------------------
    @property
    def index_path(self) -> str:
        """Path of the store's ``index.jsonl`` op log."""
        return os.path.join(self.root, INDEX_FILE)

    def _replay(self, op: Dict[str, object]) -> None:
        kind = op.get("op")
        key = op.get("key")
        seq = int(op.get("seq", 0))
        self._seq = max(self._seq, seq)
        if kind == "put" and isinstance(key, str):
            self._entries[key] = Entry(
                key=key,
                blob=str(op.get("blob", "")),
                size=int(op.get("size", 0)),
                seq=seq,
            )
            self.counters["puts"] += 1
        elif kind == "touch" and isinstance(key, str):
            entry = self._entries.get(key)
            if entry is not None:
                entry.seq = seq
            self.counters["touches"] += 1
        elif kind == "del" and isinstance(key, str):
            self._entries.pop(key, None)
            reason = op.get("reason")
            if reason == "evict":
                self.counters["evictions"] += 1
            elif reason == "corrupt":
                self.counters["corrupt"] += 1
            self.counters["deleted"] += 1

    def _load_index(self) -> None:
        """Replay the op log; self-heal a corrupt one by compaction.

        A torn final line is the normal crash artefact and is silently
        dropped.  Corruption elsewhere still only costs the unparseable
        lines: every valid op is replayed and the log is immediately
        rewritten in compacted form.
        """
        path = self.index_path
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        bad_mid_file = False
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                op = json.loads(line)
            except ValueError:
                if lineno != len(lines):
                    bad_mid_file = True
                continue
            if not isinstance(op, dict):
                bad_mid_file = bad_mid_file or lineno != len(lines)
                continue
            self._replay(op)
        if bad_mid_file:
            self.compact()

    def _append(self, op: Dict[str, object], sync: bool) -> None:
        if self._index_handle is None or self._index_handle.closed:
            self._index_handle = open(
                self.index_path, "a", encoding="utf-8"
            )
        handle = self._index_handle
        handle.write(json.dumps(op, sort_keys=True))
        handle.write("\n")
        handle.flush()
        if sync:
            os.fsync(handle.fileno())

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def compact(self) -> None:
        """Atomically rewrite the op log to just the live entries.

        Preserves relative LRU order (entries are re-emitted oldest
        first with fresh consecutive sequence numbers).  Lifetime
        counters live in memory only across a compaction; the log is a
        cache artefact, not an audit trail.
        """
        if self._index_handle is not None and not self._index_handle.closed:
            self._index_handle.close()
        self._index_handle = None
        tmp = os.path.join(self.root, TMP_DIR, f"index.{os.getpid()}")
        ordered = sorted(self._entries.values(), key=lambda e: e.seq)
        self._seq = 0
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in ordered:
                entry.seq = self._next_seq()
                handle.write(
                    json.dumps(
                        {
                            "op": "put",
                            "key": entry.key,
                            "blob": entry.blob,
                            "size": entry.size,
                            "seq": entry.seq,
                        },
                        sort_keys=True,
                    )
                )
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.index_path)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> Tuple[str, Optional[bytes]]:
        """Look a key up; returns ``(status, data)``.

        ``status`` is ``"hit"`` (data returned, recency refreshed),
        ``"miss"`` (unknown key) or ``"corrupt"`` (the blob failed its
        digest recheck or vanished; it has been quarantined and the
        entry deleted — callers treat this as a miss and recompute).
        """
        entry = self._entries.get(key)
        if entry is None:
            return "miss", None
        path = blob_path(self.root, entry.blob)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self._quarantine(entry)
            return "corrupt", None
        if blob_digest(data) != entry.blob:
            self._quarantine(entry)
            return "corrupt", None
        entry.seq = self._next_seq()
        self._append(
            {"op": "touch", "key": key, "seq": entry.seq}, sync=False
        )
        self.counters["touches"] += 1
        return "hit", data

    def put(self, key: str, data: bytes) -> Tuple[str, List[str]]:
        """Insert (or overwrite) a key; returns ``(blob_digest, evicted)``.

        The blob lands atomically under its content address before the
        index line is fsynced, so a crash between the two leaves only an
        orphan blob (reclaimed by :meth:`gc`), never a dangling entry.
        """
        digest, size = write_blob(self.root, data)
        return digest, self._adopt(key, digest, size)

    def adopt(self, key: str, digest: str, size: int) -> List[str]:
        """Index a blob some *worker* already deposited with
        :func:`write_blob`; returns the keys evicted to make room.

        Raises ``FileNotFoundError`` if no such blob exists — adopting a
        phantom entry would poison every later lookup of the key.
        """
        if not os.path.exists(blob_path(self.root, digest)):
            raise FileNotFoundError(
                f"cannot adopt {key[:12]}…: blob {digest[:12]}… not in store"
            )
        return self._adopt(key, digest, size)

    def _adopt(self, key: str, digest: str, size: int) -> List[str]:
        seq = self._next_seq()
        self._append(
            {"op": "put", "key": key, "blob": digest, "size": size,
             "seq": seq},
            sync=True,
        )
        self._entries[key] = Entry(key=key, blob=digest, size=size, seq=seq)
        self.counters["puts"] += 1
        return self._evict_over_cap()

    def delete(self, key: str, reason: str = "explicit") -> bool:
        """Remove one entry (and its blob, if unshared)."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        self._delete_entry(entry, reason)
        return True

    # ------------------------------------------------------------------
    # Eviction / integrity / maintenance
    # ------------------------------------------------------------------
    def _refcount(self, digest: str) -> int:
        return sum(1 for e in self._entries.values() if e.blob == digest)

    def _delete_entry(self, entry: Entry, reason: str) -> None:
        self._append(
            {"op": "del", "key": entry.key, "reason": reason,
             "seq": self._next_seq()},
            sync=True,
        )
        self._entries.pop(entry.key, None)
        self.counters["deleted"] += 1
        if reason == "evict":
            self.counters["evictions"] += 1
        elif reason == "corrupt":
            self.counters["corrupt"] += 1
        if self._refcount(entry.blob) == 0:
            try:
                os.remove(blob_path(self.root, entry.blob))
            except OSError:
                pass

    def _quarantine(self, entry: Entry) -> None:
        """Move a failed blob aside and drop its entry (a "corrupt" del)."""
        src = blob_path(self.root, entry.blob)
        dst = os.path.join(self.root, QUARANTINE_DIR, entry.blob)
        try:
            os.replace(src, dst)
        except OSError:
            pass  # blob already gone; the del below still heals the index
        self._append(
            {"op": "del", "key": entry.key, "reason": "corrupt",
             "seq": self._next_seq()},
            sync=True,
        )
        self._entries.pop(entry.key, None)
        self.counters["corrupt"] += 1
        self.counters["deleted"] += 1

    def _evict_over_cap(
        self, max_bytes: Optional[int] = None
    ) -> List[str]:
        """Evict LRU entries until the store fits; returns evicted keys.

        The newest entry is never evicted on behalf of itself: a single
        blob larger than the cap stays (evicting it would make the
        cache permanently useless for that workload).
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            return []
        evicted: List[str] = []
        while self.total_bytes() > cap and len(self._entries) > 1:
            victim = min(self._entries.values(), key=lambda e: e.seq)
            evicted.append(victim.key)
            self._delete_entry(victim, "evict")
        return evicted

    def verify(self) -> Dict[str, object]:
        """Re-hash every blob; quarantine failures.

        Returns ``{"checked": n, "ok": n, "corrupt": [keys...]}``.
        """
        corrupt: List[str] = []
        for entry in list(self._entries.values()):
            path = blob_path(self.root, entry.blob)
            try:
                with open(path, "rb") as handle:
                    ok = blob_digest(handle.read()) == entry.blob
            except OSError:
                ok = False
            if not ok:
                corrupt.append(entry.key)
                self._quarantine(entry)
        checked = len(corrupt) + len(self._entries)
        return {
            "checked": checked,
            "ok": checked - len(corrupt),
            "corrupt": corrupt,
        }

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, object]:
        """Evict to a size cap, drop orphan blobs/temp files, compact.

        ``max_bytes`` overrides the configured cap for this collection
        only (``None`` keeps the configured cap, which may also be
        ``None`` — then only orphans and the log are collected).
        """
        evicted = self._evict_over_cap(
            self.max_bytes if max_bytes is None else max_bytes
        )
        live = {entry.blob for entry in self._entries.values()}
        orphans = 0
        blobs_root = os.path.join(self.root, BLOBS_DIR)
        for dirpath, _dirnames, filenames in os.walk(blobs_root):
            for name in filenames:
                if name not in live:
                    try:
                        os.remove(os.path.join(dirpath, name))
                        orphans += 1
                    except OSError:
                        pass
        tmp_root = os.path.join(self.root, TMP_DIR)
        for name in os.listdir(tmp_root):
            try:
                os.remove(os.path.join(tmp_root, name))
            except OSError:
                pass
        self.compact()
        return {
            "evicted": evicted,
            "orphan_blobs_removed": orphans,
            "entries": len(self._entries),
            "bytes": self.total_bytes(),
        }

    def clear(self) -> int:
        """Delete every entry and blob; returns how many entries died."""
        n = len(self._entries)
        for entry in list(self._entries.values()):
            self._delete_entry(entry, "clear")
        self.gc()
        return n

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> List[str]:
        """Live keys, least recently used first."""
        return [
            e.key
            for e in sorted(self._entries.values(), key=lambda e: e.seq)
        ]

    def total_bytes(self) -> int:
        """Sum of live entry sizes (shared blobs counted once per key)."""
        return sum(entry.size for entry in self._entries.values())

    def stats(self) -> Dict[str, object]:
        """Store-level stats: live state plus lifetime op counters."""
        return {
            "entries": len(self._entries),
            "bytes": self.total_bytes(),
            "max_bytes": self.max_bytes,
            **self.counters,
        }

    def close(self) -> None:
        """Close the index handle (the store stays usable; it reopens)."""
        if self._index_handle is not None and not self._index_handle.closed:
            self._index_handle.close()
        self._index_handle = None

"""Cache-key derivation: what makes two runs "the same run".

A simulation is a pure function of its
:class:`~repro.core.system.SystemConfig` (every random draw flows from
``config.seed``), so the cache key of a run is a digest over

* the config's content digest
  (:func:`repro.obs.provenance.config_digest` — every field, nested
  parameter blocks included), and
* a **code-version salt**: the package version plus a cache schema
  number, so upgrading the simulator (which may legitimately change
  what a config computes) or the blob format silently invalidates every
  old entry instead of serving stale numbers.

Keys are plain sha256 hex strings; the blob they point at is stored
content-addressed (named by the digest of its own bytes), so key
integrity and blob integrity are verified independently.
"""

from __future__ import annotations

import hashlib
import os

from repro.obs.provenance import config_digest

#: Bump when the blob format (pickled ``SimulationResult``) or the key
#: derivation changes incompatibly: old entries become unreachable
#: instead of mis-deserialised.
CACHE_SCHEMA = 1

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def code_version() -> str:
    """The running package version (imported lazily to avoid cycles)."""
    import repro

    return getattr(repro, "__version__", "0")


def default_salt(extra: str = "") -> str:
    """The default code-version salt: ``<version>/s<schema>[/<extra>]``.

    ``extra`` lets callers partition the cache further (for example per
    experiment family) without touching the key derivation.
    """
    salt = f"{code_version()}/s{CACHE_SCHEMA}"
    return f"{salt}/{extra}" if extra else salt


def run_key(config: object, salt: str) -> str:
    """Cache key of one run: sha256 over the salted config digest."""
    h = hashlib.sha256()
    h.update(b"repro.cache.run\x00")
    h.update(salt.encode("utf-8"))
    h.update(b"\x00")
    h.update(config_digest(config).encode("ascii"))
    return h.hexdigest()


def default_cache_dir() -> str:
    """The default cache directory.

    ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro`` (honouring
    ``$XDG_CACHE_HOME``).
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")

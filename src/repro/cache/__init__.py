"""Content-addressed run cache: memoized simulation results.

Every run is a pure function of its
:class:`~repro.core.system.SystemConfig`, and PR 2/3 gave every run a
stable content digest — so re-simulating an identical (config, seed)
point is pure waste.  :class:`RunCache` turns that repeated cost into a
lookup: results are pickled into a content-addressed blob store
(:class:`~repro.cache.store.ContentStore`) keyed by the salted config
digest (:mod:`repro.cache.keys`), with durable index appends, integrity
rechecks on read (corrupt blobs are quarantined and transparently
recomputed) and LRU eviction under an optional size cap.

Integration points:

* :func:`repro.experiments.run_many` accepts ``cache=`` (and falls back
  to the process default installed by :func:`set_default_cache`) — in
  pooled sweeps the workers return results and the *supervisor* owns
  the index, so there are no concurrent index writers;
* :func:`repro.campaign.run_campaign` accepts ``cache=`` — planned
  points found in the cache are checkpointed without running, and
  completed runs deposit blobs for the next overlapping grid;
* the CLI exposes ``--cache/--no-cache/--cache-dir`` on
  ``run``/``sweep``/``experiment``/``campaign`` plus a ``repro cache
  stats|verify|gc|clear`` maintenance command.

Correctness contract: a cache hit is byte-identical to a recompute
(pickle round-trips preserve float bit patterns), so cold-vs-warm
aggregate digests match exactly — pinned by ``tests/test_cache.py``
and the ``benchmarks/bench_cache.py`` CI gate.  Runs under an enabled
journal/profiler are *bypassed* (counted, never served or stored):
a cached result cannot carry the events of the run it skipped.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.cache.keys import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA,
    code_version,
    default_cache_dir,
    default_salt,
    run_key,
)
from repro.cache.store import ContentStore, blob_digest, write_blob
from repro.obs.journal import NULL_JOURNAL, Journal
from repro.telemetry.registry import NULL_TELEMETRY, MetricsRegistry

#: Pickle protocol pinned for blob stability within one schema version.
_PICKLE_PROTOCOL = 4


@dataclass
class CacheStats:
    """Process-local counters of one :class:`RunCache` instance.

    ``hits``/``misses``/``bypasses`` describe lookups; ``puts`` counts
    stored results, ``evictions`` LRU victims and ``corrupt`` blobs
    that failed their integrity recheck (each of which also counts as a
    miss, because the caller recomputes).
    """

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0

    def lookups(self) -> int:
        """Served lookups (hits + misses, bypasses excluded)."""
        return self.hits + self.misses

    def hit_rate(self) -> Optional[float]:
        """Fraction of served lookups that hit (None before any lookup)."""
        total = self.lookups()
        return self.hits / total if total else None

    def as_dict(self) -> Dict[str, object]:
        """Flat dict form (for JSON artifacts and the CLI)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate(),
        }


@dataclass(frozen=True)
class CachePlan:
    """Picklable recipe for depositing blobs from worker processes.

    Workers must not touch the index (single-writer invariant), but
    they *can* safely deposit content-addressed blob files.  A plan is
    just (directory, salt); the supervisor adopts the resulting entries
    into the index via :meth:`RunCache.adopt`.
    """

    cache_dir: str
    salt: str


def store_result_blob(
    plan: CachePlan, config: object, result: object
) -> Dict[str, object]:
    """Deposit one run result as a blob per ``plan`` (worker-side).

    Returns the pending index entry ``{"key", "blob", "size"}`` for the
    supervisor to adopt.  Touches only the blob area — never the index.
    """
    data = pickle.dumps(result, protocol=_PICKLE_PROTOCOL)
    digest, size = write_blob(plan.cache_dir, data)
    return {
        "key": run_key(config, plan.salt),
        "blob": digest,
        "size": size,
    }


class RunCache:
    """Memoized ``run_system``: config in, cached ``SimulationResult`` out.

    ``cache_dir`` defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``;
    ``max_bytes`` bounds the store with LRU eviction (``None`` =
    unbounded, collect with :meth:`gc`); ``salt`` defaults to the
    code-version salt (:func:`repro.cache.keys.default_salt`);
    ``journal`` receives ``cache.*`` events (hit/miss/bypass/put/evict/
    corrupt, at ``t=0`` — cache traffic has no simulation time).
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_bytes: Optional[int] = None,
        salt: Optional[str] = None,
        journal: Optional[Journal] = None,
    ) -> None:
        self.cache_dir = cache_dir or default_cache_dir()
        self.salt = salt if salt is not None else default_salt()
        self.store = ContentStore(self.cache_dir, max_bytes=max_bytes)
        self.stats = CacheStats()
        self.journal = journal if journal is not None else NULL_JOURNAL
        self.telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------
    def bind_telemetry(self, registry: MetricsRegistry) -> None:
        """Mirror cache traffic into ``cache.*`` counters of ``registry``.

        Campaign/sweep supervisors bind their local registry here; the
        default stays the null sink so plain cache use costs nothing.
        """
        self.telemetry = registry

    def _emit(self, kind: str, **data: object) -> None:
        if self.journal.enabled:
            self.journal.emit(f"cache.{kind}", 0.0, **data)

    def _count(self, kind: str, n: int = 1) -> None:
        self.telemetry.counter(f"cache.{kind}").inc(n)

    def key_for(self, config: object) -> str:
        """The cache key of one config under this cache's salt."""
        return run_key(config, self.salt)

    def get_result(self, config: object):
        """Cached :class:`SimulationResult` for ``config``, or ``None``.

        Integrity failures (blob digest mismatch, unreadable blob,
        unpicklable payload) quarantine the entry and report a miss so
        the caller transparently recomputes.
        """
        key = self.key_for(config)
        status, data = self.store.get(key)
        if status == "corrupt":
            self.stats.corrupt += 1
            self._emit("corrupt", key=key)
            self._count("corrupt")
        if data is None:
            self.stats.misses += 1
            self._emit("miss", key=key)
            self._count("misses")
            return None
        try:
            result = pickle.loads(data)
        except Exception:
            # Digest-valid bytes that do not unpickle: written by an
            # incompatible writer.  Quarantine exactly like bit rot.
            self.store.delete(key, reason="corrupt")
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._emit("corrupt", key=key)
            self._count("corrupt")
            self._count("misses")
            return None
        self.stats.hits += 1
        self._emit("hit", key=key)
        self._count("hits")
        return result

    def put_result(self, config: object, result: object) -> str:
        """Store one result; returns its cache key."""
        key = self.key_for(config)
        data = pickle.dumps(result, protocol=_PICKLE_PROTOCOL)
        _digest, evicted = self.store.put(key, data)
        self.stats.puts += 1
        self._note_evicted(evicted)
        self._emit("put", key=key, size=len(data))
        self._count("puts")
        return key

    def adopt(self, key: str, blob: str, size: int) -> None:
        """Index a worker-deposited blob (see :class:`CachePlan`)."""
        evicted = self.store.adopt(key, blob, size)
        self.stats.puts += 1
        self._note_evicted(evicted)
        self._emit("put", key=key, size=size)
        self._count("puts")

    def _note_evicted(self, evicted) -> None:
        for key in evicted:
            self.stats.evictions += 1
            self._emit("evict", key=key)
            self._count("evictions")

    def note_bypass(self, n: int = 1, reason: str = "") -> None:
        """Count ``n`` lookups that were deliberately not served."""
        self.stats.bypasses += n
        self._emit("bypass", n=n, reason=reason)
        self._count("bypasses", n)

    def get_or_run(
        self, config: object, runner: Optional[Callable] = None
    ) -> Tuple[object, bool]:
        """Serve ``config`` from cache or run it; returns (result, hit)."""
        cached = self.get_result(config)
        if cached is not None:
            return cached, True
        if runner is None:
            from repro.core.system import run_system as runner
        result = runner(config)
        self.put_result(config, result)
        return result, False

    # ------------------------------------------------------------------
    # Maintenance passthrough
    # ------------------------------------------------------------------
    def plan(self) -> CachePlan:
        """The picklable :class:`CachePlan` for this cache's workers."""
        return CachePlan(cache_dir=self.cache_dir, salt=self.salt)

    def verify(self) -> Dict[str, object]:
        """Re-hash every blob, quarantining failures (see store)."""
        return self.store.verify()

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, object]:
        """Evict to a cap, drop orphans, compact the index (see store)."""
        return self.store.gc(max_bytes=max_bytes)

    def clear(self) -> int:
        """Delete every cached result; returns how many entries died."""
        return self.store.clear()

    def stats_dict(self) -> Dict[str, object]:
        """Merged process-local and on-disk stats (for the CLI/bench)."""
        return {
            "cache_dir": self.cache_dir,
            "salt": self.salt,
            **self.store.stats(),
            "session": self.stats.as_dict(),
        }


# ----------------------------------------------------------------------
# Process-wide default (mirrors repro.obs.configure): lets the CLI turn
# caching on for experiment runners without threading a parameter
# through every runner signature.
# ----------------------------------------------------------------------
_active_cache: Optional[RunCache] = None


def set_default_cache(cache: Optional[RunCache]) -> None:
    """Install (or with ``None`` remove) the process-wide default cache.

    ``repro.experiments.run_many`` consults it when no explicit
    ``cache=`` is passed.  The default does **not** propagate into pool
    worker processes — workers always compute; only the supervisor
    consults and owns the cache.
    """
    global _active_cache
    _active_cache = cache


def active_cache() -> Optional[RunCache]:
    """The process-wide default cache (``None`` unless installed)."""
    return _active_cache


__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "CachePlan",
    "CacheStats",
    "ContentStore",
    "RunCache",
    "active_cache",
    "blob_digest",
    "code_version",
    "default_cache_dir",
    "default_salt",
    "run_key",
    "set_default_cache",
    "store_result_blob",
    "write_blob",
]

"""Pareto-front extraction and multi-criteria decision support.

The paper reports a *fixed* scheduler/mapper/PID parameterisation and
the resulting (throughput, test latency, escapes, power) trade-off; a
design-space exploration instead produces a *set* of parameterisations,
and the useful summary of that set is its **Pareto front** — the
candidates no other candidate beats on every objective at once.

This module is pure math over plain data (no simulation imports):

* an objective **catalog** mapping metric names to their optimisation
  sense and their extractor over a cell's checkpoint records;
* **non-dominated sorting** (the NSGA-style ranking) and front
  extraction, deterministic and order-independent — permuting the
  candidate list never changes the front *set*;
* two simple MCDM rankings for picking a single winner off the front:
  **weighted-sum** over min-max-normalised objectives and
  **lexicographic** with tolerance bands.

Missing objective values (``None`` — e.g. detection latency when no
fault was ever detected) always compare as *worst possible*, so a
candidate cannot ride an undefined metric onto the front.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Optimisation sense of one objective.
MAXIMIZE = "max"
MINIMIZE = "min"


def _mean(values: Sequence[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _summaries(records: Sequence[Dict[str, object]]) -> List[Dict[str, float]]:
    return [r.get("summary", {}) for r in records]


def _obj_throughput(records: Sequence[Dict[str, object]]) -> Optional[float]:
    return _mean(
        [float(s["throughput_ops_per_us"]) for s in _summaries(records)]
    )


def _obj_power(records: Sequence[Dict[str, object]]) -> Optional[float]:
    return _mean([float(s["avg_power_w"]) for s in _summaries(records)])


def _obj_escapes(records: Sequence[Dict[str, object]]) -> Optional[float]:
    escapes = 0
    for record in records:
        for fault in record.get("faults", []):
            if fault.get("detected_at") is None:
                escapes += 1
    return float(escapes)


def _obj_latency(records: Sequence[Dict[str, object]]) -> Optional[float]:
    latencies: List[float] = []
    for record in records:
        for fault in record.get("faults", []):
            detected = fault.get("detected_at")
            if detected is not None:
                latencies.append(
                    float(detected) - float(fault["injected_at"])
                )
    return _mean(latencies)


def _obj_violations(records: Sequence[Dict[str, object]]) -> Optional[float]:
    return _mean(
        [float(s["budget_violation_rate"]) for s in _summaries(records)]
    )


def _obj_tests(records: Sequence[Dict[str, object]]) -> Optional[float]:
    return _mean([float(s["tests_completed"]) for s in _summaries(records)])


@dataclass(frozen=True)
class ObjectiveDef:
    """One named objective: its sense and its record-level extractor."""

    name: str
    sense: str
    extract: Callable[[Sequence[Dict[str, object]]], Optional[float]]
    description: str

    def better(self, a: float, b: float) -> bool:
        """Whether value ``a`` strictly beats ``b`` under this sense."""
        return a > b if self.sense == MAXIMIZE else a < b


#: Every objective a DSE spec may select, keyed by name.  Extractors
#: consume the cell's campaign checkpoint records (all seeds).
OBJECTIVES: Dict[str, ObjectiveDef] = {
    o.name: o
    for o in (
        ObjectiveDef(
            "throughput", MAXIMIZE, _obj_throughput,
            "mean app throughput (ops/us) over the cell's seeds",
        ),
        ObjectiveDef(
            "latency", MINIMIZE, _obj_latency,
            "mean fault-detection latency (us) over detected faults",
        ),
        ObjectiveDef(
            "escapes", MINIMIZE, _obj_escapes,
            "total injected faults never detected (the escape count)",
        ),
        ObjectiveDef(
            "power", MINIMIZE, _obj_power,
            "mean average chip power (W) over the cell's seeds",
        ),
        ObjectiveDef(
            "violations", MINIMIZE, _obj_violations,
            "mean TDP budget-violation rate",
        ),
        ObjectiveDef(
            "tests", MAXIMIZE, _obj_tests,
            "mean completed SBST sessions per run",
        ),
    )
}

#: One candidate's objective values, aligned with a spec's objective
#: name tuple; ``None`` means the metric was undefined for the cell.
ObjectiveVector = Tuple[Optional[float], ...]


def objective_vector(
    names: Sequence[str], records: Sequence[Dict[str, object]]
) -> ObjectiveVector:
    """Extract the named objectives from one cell's records."""
    return tuple(OBJECTIVES[name].extract(records) for name in names)


def _oriented(value: Optional[float], sense: str) -> float:
    """Map a raw value onto a bigger-is-better axis (None -> -inf)."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return -math.inf
    return value if sense == MAXIMIZE else -value


def dominates(
    a: ObjectiveVector, b: ObjectiveVector, senses: Sequence[str]
) -> bool:
    """Whether ``a`` Pareto-dominates ``b``: >= everywhere, > somewhere."""
    strictly_better = False
    for va, vb, sense in zip(a, b, senses):
        oa, ob = _oriented(va, sense), _oriented(vb, sense)
        if oa < ob:
            return False
        if oa > ob:
            strictly_better = True
    return strictly_better


def non_dominated_sort(
    vectors: Sequence[ObjectiveVector], senses: Sequence[str]
) -> List[int]:
    """NSGA-style rank per vector (0 = the Pareto front).

    O(n^2) pairwise domination — fine at search-archive scale (hundreds
    of candidates).  The ranking is a pure function of the vector
    *multiset*: permuting the input permutes the output identically.
    """
    n = len(vectors)
    dominated_by = [0] * n            # how many vectors dominate i
    dominates_list: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(vectors[i], vectors[j], senses):
                dominates_list[i].append(j)
                dominated_by[j] += 1
            elif dominates(vectors[j], vectors[i], senses):
                dominates_list[j].append(i)
                dominated_by[i] += 1
    ranks = [0] * n
    current = [i for i in range(n) if dominated_by[i] == 0]
    rank = 0
    while current:
        next_front: List[int] = []
        for i in current:
            ranks[i] = rank
            for j in dominates_list[i]:
                dominated_by[j] -= 1
                if dominated_by[j] == 0:
                    next_front.append(j)
        current = next_front
        rank += 1
    return ranks


def pareto_front_indices(
    vectors: Sequence[ObjectiveVector], senses: Sequence[str]
) -> List[int]:
    """Indices of the non-dominated vectors, in input order."""
    ranks = non_dominated_sort(vectors, senses)
    return [i for i, rank in enumerate(ranks) if rank == 0]


# ----------------------------------------------------------------------
# MCDM rankings
# ----------------------------------------------------------------------
def normalize_columns(
    vectors: Sequence[ObjectiveVector], senses: Sequence[str]
) -> List[List[float]]:
    """Min-max normalise each objective to [0, 1] with 1 = best.

    Constant columns normalise to 1.0 (every candidate is equally best);
    ``None`` entries normalise to 0.0 (worst).  The bounds come from the
    supplied vectors only, so rankings are self-contained and
    deterministic.
    """
    n_obj = len(senses)
    columns: List[List[float]] = []
    for k in range(n_obj):
        oriented = [_oriented(v[k], senses[k]) for v in vectors]
        finite = [x for x in oriented if x != -math.inf]
        if not finite:
            columns.append([0.0] * len(vectors))
            continue
        low, high = min(finite), max(finite)
        span = high - low
        column = []
        for x in oriented:
            if x == -math.inf:
                column.append(0.0)
            elif span == 0.0:
                column.append(1.0)
            else:
                column.append((x - low) / span)
        columns.append(column)
    return [
        [columns[k][i] for k in range(n_obj)] for i in range(len(vectors))
    ]


def weighted_sum_scores(
    vectors: Sequence[ObjectiveVector],
    senses: Sequence[str],
    weights: Optional[Sequence[float]] = None,
) -> List[float]:
    """Weighted-sum MCDM score per vector (higher is better, in [0, 1]).

    Objectives are min-max normalised over the supplied vectors first,
    so weights express relative importance, not units.
    """
    if weights is None:
        weights = [1.0] * len(senses)
    if len(weights) != len(senses):
        raise ValueError(
            f"{len(weights)} weight(s) for {len(senses)} objective(s)"
        )
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    rows = normalize_columns(vectors, senses)
    return [
        sum(w * x for w, x in zip(weights, row)) / total for row in rows
    ]


def weighted_sum_ranking(
    vectors: Sequence[ObjectiveVector],
    senses: Sequence[str],
    weights: Optional[Sequence[float]] = None,
    tie_break: Optional[Sequence[str]] = None,
) -> List[int]:
    """Vector indices sorted best-first by weighted-sum score.

    ``tie_break`` (e.g. the candidates' cell digests) makes the order
    total and deterministic when scores tie exactly.
    """
    scores = weighted_sum_scores(vectors, senses, weights)
    keys = (
        list(tie_break) if tie_break is not None else list(range(len(scores)))
    )
    if len(keys) != len(scores):
        raise ValueError("tie_break must align with vectors")
    return sorted(
        range(len(scores)), key=lambda i: (-scores[i], keys[i])
    )


def lexicographic_ranking(
    vectors: Sequence[ObjectiveVector],
    senses: Sequence[str],
    order: Sequence[int],
    tolerance: float = 0.0,
    tie_break: Optional[Sequence[str]] = None,
) -> List[int]:
    """Vector indices sorted best-first by objective priority.

    ``order`` lists objective positions by decreasing priority; a later
    objective only decides among candidates whose earlier objectives lie
    strictly within ``tolerance`` (a fraction of each objective's
    normalised [0, 1] span) of the best observed value.  The last
    prioritised objective always discriminates exactly.  Tolerance 0 is
    the classic strict lexicographic order.
    """
    if sorted(order) != list(range(len(senses))):
        raise ValueError(
            f"order must be a permutation of 0..{len(senses) - 1}, "
            f"got {list(order)}"
        )
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    rows = normalize_columns(vectors, senses)
    best = [
        max(rows[i][k] for i in range(len(rows))) if rows else 0.0
        for k in range(len(senses))
    ]

    def key(i: int) -> Tuple:
        # Band each non-final prioritised objective by its distance from
        # the best value; within a band the next objective decides.
        parts: List[float] = []
        for k in order[:-1]:
            x = rows[i][k]
            parts.append(
                math.floor((best[k] - x) / tolerance)
                if tolerance > 0
                else -x
            )
        parts.append(-rows[i][order[-1]])
        tail = tie_break[i] if tie_break is not None else i
        return (*parts, tail)

    return sorted(range(len(vectors)), key=key)

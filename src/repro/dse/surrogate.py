"""Cheap regression surrogates for pruning candidates before simulating.

A full evaluation of one candidate costs ``seeds x horizon`` of
simulation; a surrogate prediction costs a dot product.  The search
loop fits one least-squares polynomial model per objective from the
candidates it has *already* evaluated (all of which sit in the campaign
checkpoint stores and the run cache anyway), predicts the objectives of
newly proposed candidates, and skips the clearly hopeless ones.

Design constraints, in order:

* **Determinism** — fitting uses ``numpy.linalg.lstsq`` over rows
  sorted by candidate digest; same archive, same coefficients, bit for
  bit.  The surrogate carries no RNG.
* **Never prune free work** — candidates whose true objectives are
  already known (archive hits) are excluded from pruning by the caller:
  re-evaluating them costs nothing, so a mispredicting surrogate cannot
  lose ground the search has already covered.
* **Conservatism is tunable** — :func:`prune_candidates` keeps every
  candidate whose predicted weighted-sum score is within ``threshold``
  of the best scored candidate of the round; ``threshold`` is in
  normalised score units ([0, 1]).  Threshold 0 keeps only
  predicted-best candidates and every known one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dse.pareto import ObjectiveVector
from repro.dse.space import Candidate, SearchSpace


def polynomial_features(x: np.ndarray, degree: int) -> np.ndarray:
    """Expand a feature vector with interaction/square terms.

    Degree 1: ``[1, x...]``; degree 2 adds every ``x_i * x_j`` with
    ``i <= j``.  Higher degrees are rejected — at search-archive sample
    sizes they only overfit.
    """
    if degree not in (1, 2):
        raise ValueError(f"degree must be 1 or 2, got {degree}")
    parts: List[float] = [1.0]
    parts.extend(float(v) for v in x)
    if degree == 2:
        n = len(x)
        for i in range(n):
            for j in range(i, n):
                parts.append(float(x[i]) * float(x[j]))
    return np.asarray(parts, dtype=np.float64)


@dataclass
class PolynomialSurrogate:
    """Per-objective least-squares polynomial regression on encoded params."""

    space: SearchSpace
    degree: int = 2

    def __post_init__(self) -> None:
        self._coefficients: Optional[np.ndarray] = None  # (n_features, k)
        self._n_fit = 0

    @property
    def is_fit(self) -> bool:
        """Whether :meth:`fit` has produced usable coefficients."""
        return self._coefficients is not None

    @property
    def n_fit_points(self) -> int:
        """How many archive points the last fit consumed."""
        return self._n_fit

    def _design_row(self, candidate: Candidate) -> np.ndarray:
        return polynomial_features(self.space.encode(candidate), self.degree)

    def fit(
        self,
        candidates: Sequence[Candidate],
        targets: Sequence[ObjectiveVector],
    ) -> None:
        """Fit one model per objective column from evaluated points.

        ``None`` target entries (undefined metrics) are excluded
        per-column via masking.  Callers must pass candidates in a
        deterministic order (the search sorts by cell digest) so the
        least-squares solution is reproducible.
        """
        if len(candidates) != len(targets):
            raise ValueError("candidates and targets must align")
        if not candidates:
            raise ValueError("cannot fit a surrogate on zero points")
        design = np.stack([self._design_row(c) for c in candidates])
        n_obj = len(targets[0])
        coefficients = np.zeros((design.shape[1], n_obj), dtype=np.float64)
        for k in range(n_obj):
            column = np.asarray(
                [
                    np.nan if t[k] is None else float(t[k])
                    for t in targets
                ],
                dtype=np.float64,
            )
            mask = ~np.isnan(column)
            if not mask.any():
                continue  # objective never defined yet; predict 0
            solution, *_ = np.linalg.lstsq(
                design[mask], column[mask], rcond=None
            )
            coefficients[:, k] = solution
        self._coefficients = coefficients
        self._n_fit = len(candidates)

    def predict(
        self, candidates: Sequence[Candidate]
    ) -> List[ObjectiveVector]:
        """Predicted objective vectors for each candidate."""
        if self._coefficients is None:
            raise RuntimeError("surrogate not fitted")
        if not candidates:
            return []
        design = np.stack([self._design_row(c) for c in candidates])
        predictions = design @ self._coefficients
        return [tuple(float(v) for v in row) for row in predictions]


@dataclass(frozen=True)
class PruneOutcome:
    """What :func:`prune_candidates` decided for one round."""

    kept: List[int]      # candidate indices to evaluate
    pruned: List[int]    # candidate indices dropped by the surrogate
    scores: List[float]  # per-candidate scalarized score used


def prune_candidates(
    scores: Sequence[float],
    known: Sequence[bool],
    threshold: float,
) -> PruneOutcome:
    """Keep candidates scoring within ``threshold`` of the round's best.

    ``scores`` are scalarized (higher-better, normalised) — true scores
    for ``known`` candidates, surrogate predictions otherwise.  Known
    candidates are *never* pruned: their evaluation is free (served from
    the archive/cache), so dropping them could only discard information.
    In particular the true best already-evaluated candidate survives any
    threshold, including 0.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    if len(scores) != len(known):
        raise ValueError("scores and known must align")
    if not scores:
        return PruneOutcome(kept=[], pruned=[], scores=[])
    best = max(scores)
    kept: List[int] = []
    pruned: List[int] = []
    for i, (score, is_known) in enumerate(zip(scores, known)):
        if is_known or score >= best - threshold:
            kept.append(i)
        else:
            pruned.append(i)
    return PruneOutcome(kept=kept, pruned=pruned, scores=list(scores))

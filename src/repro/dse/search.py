"""The surrogate-guided evolutionary search loop.

One *search* explores a :class:`~repro.dse.space.SearchSpace` for
parameterisations that beat the paper's shipped configuration on the
selected objectives.  Its structure:

* **Generation** — a population of candidates is proposed (generation 0:
  the paper-default candidate plus uniform samples; later: elites,
  tournament-selected crossover and mutation).  All randomness comes
  from a ``numpy`` Generator seeded from ``(spec digest, generation)``,
  so proposals are a pure function of the spec and the archive — no
  ``random``-module state, no wall clock.
* **Pruning** — once the archive holds ``surrogate.min_points``
  evaluated candidates, a polynomial least-squares surrogate
  (:mod:`repro.dse.surrogate`) predicts each unknown candidate's
  objectives; candidates scoring more than ``threshold`` below the
  round's best are skipped.  Already-evaluated candidates are never
  pruned (their results are free).
* **Evaluation** — the survivors become the explicit cell list of a
  :class:`~repro.campaign.spec.CampaignSpec`, one generation = one
  campaign directory under the search directory.  Evaluation therefore
  rides the checkpoint store, the crash-tolerant executor, the process
  pool, the lockstep batch engine, the run cache and the sequential
  stopping rules *unchanged* — and inherits their digest-identity
  guarantees.
* **Front** — after every generation the archive's Pareto front is
  extracted (:mod:`repro.dse.pareto`) and written to ``front.json``
  along with a deterministic ``front_digest``.

**Resume identity.**  Every decision above is a deterministic function
of (spec, completed checkpoint records).  A killed search re-derives
each generation's proposals, finds the generation campaigns either
complete (served from their stores) or resumable, and finishes with a
``front.json`` byte-identical to an uninterrupted run — the same
contract campaigns make, lifted one level up.  Pinned by
``tests/test_dse.py`` and the ``dse-smoke`` CI job.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.executor import CampaignInterrupted
from repro.campaign.runner import run_campaign
from repro.campaign.spec import (
    CampaignSpec,
    Cell,
    SeedPlan,
    StopRule,
    cell_digest,
    freeze_value,
)
from repro.campaign.store import RESULTS_FILE, ResultStore
from repro.core.config_io import config_to_dict
from repro.core.system import SystemConfig
from repro.dse.pareto import (
    OBJECTIVES,
    ObjectiveVector,
    dominates,
    non_dominated_sort,
    objective_vector,
    pareto_front_indices,
    weighted_sum_scores,
)
from repro.dse.space import Candidate, SearchSpace
from repro.dse.surrogate import PolynomialSurrogate, prune_candidates
from repro.metrics.report import format_table
from repro.obs.provenance import digest_of
from repro.telemetry import active_telemetry, atomic_write_text

SPEC_FILE = "spec.json"
FRONT_FILE = "front.json"
REPORT_FILE = "report.json"

_DEFAULT_OBJECTIVES = ("throughput", "latency", "escapes", "power")


class SearchInterrupted(Exception):
    """Raised when the deterministic ``interrupt_after`` budget runs out."""

    def __init__(self, completed: int) -> None:
        super().__init__(
            f"search interrupted after {completed} newly-checkpointed "
            f"run(s); resume with `repro dse run` on the same directory"
        )
        self.completed = completed


@dataclass(frozen=True)
class EvolutionParams:
    """Knobs of the evolutionary loop."""

    population: int = 12
    generations: int = 4
    elites: int = 2
    mutation_rate: float = 0.35
    mutation_scale: float = 0.2
    crossover_rate: float = 0.7
    tournament: int = 2

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError(f"population must be >= 2, got {self.population}")
        if self.generations < 1:
            raise ValueError(
                f"generations must be >= 1, got {self.generations}"
            )
        if not 0 <= self.elites <= self.population:
            raise ValueError(
                f"elites must be in [0, population], got {self.elites}"
            )
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if self.mutation_scale <= 0:
            raise ValueError("mutation_scale must be positive")
        if self.tournament < 1:
            raise ValueError(f"tournament must be >= 1, got {self.tournament}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class SurrogateParams:
    """Knobs of the surrogate pruning stage."""

    degree: int = 2
    min_points: int = 8
    threshold: Optional[float] = 0.25

    def __post_init__(self) -> None:
        if self.degree not in (1, 2):
            raise ValueError(f"degree must be 1 or 2, got {self.degree}")
        if self.min_points < 2:
            raise ValueError(f"min_points must be >= 2, got {self.min_points}")
        if self.threshold is not None and self.threshold < 0:
            raise ValueError(
                f"threshold must be >= 0 or null, got {self.threshold}"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class DseSpec:
    """The declarative definition of one design-space exploration."""

    name: str
    space: SearchSpace
    base: Tuple[Tuple[str, object], ...] = ()
    objectives: Tuple[str, ...] = _DEFAULT_OBJECTIVES
    weights: Optional[Tuple[float, ...]] = None
    seeds: SeedPlan = field(default_factory=SeedPlan)
    stop: Optional[StopRule] = None
    evolve: EvolutionParams = field(default_factory=EvolutionParams)
    surrogate: SurrogateParams = field(default_factory=SurrogateParams)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("search name must be non-empty")
        if not self.objectives:
            raise ValueError("a search needs at least one objective")
        unknown = [o for o in self.objectives if o not in OBJECTIVES]
        if unknown:
            raise ValueError(
                f"unknown objectives {unknown}; known: {sorted(OBJECTIVES)}"
            )
        if len(set(self.objectives)) != len(self.objectives):
            raise ValueError("duplicate objectives")
        if self.weights is not None and len(self.weights) != len(
            self.objectives
        ):
            raise ValueError(
                f"{len(self.weights)} weight(s) for "
                f"{len(self.objectives)} objective(s)"
            )
        known = {f.name for f in dataclasses.fields(SystemConfig)}
        bad = [k for k, _ in self.base if k not in known]
        if bad:
            raise ValueError(f"unknown SystemConfig fields in base: {bad}")
        if any(k == "seed" for k, _ in self.base):
            raise ValueError(
                "'seed' cannot appear in base; seeds come from the seed plan"
            )
        # Canonical field order, so digests ignore JSON key order.
        object.__setattr__(
            self, "base", tuple(sorted(self.base, key=lambda kv: kv[0]))
        )
        # The paper-default candidate must live inside the space, so the
        # search always contains the configuration it tries to beat.
        self.default_candidate()

    # ------------------------------------------------------------------
    # Construction / serialisation
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DseSpec":
        """Build a spec from a plain dict (e.g. parsed spec.json)."""
        known = {
            "schema", "name", "space", "base", "objectives", "weights",
            "seeds", "stop", "evolve", "surrogate",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown dse spec keys: {sorted(unknown)}")
        base = data.get("base") or {}
        if not isinstance(base, dict):
            raise ValueError("'base' must be a JSON object")
        objectives = data.get("objectives") or list(_DEFAULT_OBJECTIVES)
        weights = data.get("weights")
        seeds_data = data.get("seeds") or {}
        stop_data = data.get("stop")
        evolve_data = data.get("evolve") or {}
        surrogate_data = data.get("surrogate") or {}
        return cls(
            name=str(data.get("name", "")),
            space=SearchSpace.from_list(data.get("space") or []),
            base=tuple(
                (k, freeze_value(v)) for k, v in base.items()
            ),
            objectives=tuple(str(o) for o in objectives),
            weights=(
                tuple(float(w) for w in weights)
                if weights is not None
                else None
            ),
            seeds=SeedPlan(**seeds_data),
            stop=StopRule(**stop_data) if stop_data else None,
            evolve=EvolutionParams(**evolve_data),
            surrogate=SurrogateParams(**surrogate_data),
        )

    @classmethod
    def from_json(cls, text: str) -> "DseSpec":
        """Parse a spec from its JSON text."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("dse spec JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "DseSpec":
        """Read a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form, the inverse of :meth:`from_dict`."""
        return {
            "schema": 1,
            "name": self.name,
            "space": self.space.to_list(),
            "base": {k: v for k, v in self.base},
            "objectives": list(self.objectives),
            "weights": list(self.weights) if self.weights else None,
            "seeds": self.seeds.to_dict(),
            "stop": self.stop.to_dict() if self.stop else None,
            "evolve": self.evolve.to_dict(),
            "surrogate": self.surrogate.to_dict(),
        }

    def to_json(self) -> str:
        """Serialize to the canonical JSON form (sorted keys)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str) -> None:
        """Write the spec as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def spec_digest(self) -> str:
        """Content digest pinning a search directory to its spec."""
        return digest_of([json.dumps(self.to_dict(), sort_keys=True)])

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------
    @property
    def senses(self) -> List[str]:
        """Optimisation sense per objective, in spec order."""
        return [OBJECTIVES[name].sense for name in self.objectives]

    def default_candidate(self) -> Candidate:
        """The paper-default candidate: base/default values per parameter.

        This is the configuration the search must contain (and hopes to
        dominate): every searched field at the value the base — or,
        absent that, the ``SystemConfig`` default — gives it.
        """
        defaults = config_to_dict(SystemConfig())
        for key, value in self.base:
            defaults[key] = value
        return self.space.validate_candidate(
            {name: defaults[name] for name in self.space.names}
        )

    def generation_rng(self, generation: int) -> np.random.Generator:
        """The seeded Generator that drives one generation's proposals."""
        material = f"{self.spec_digest()}:gen:{generation}".encode("ascii")
        seed = int.from_bytes(
            hashlib.sha256(material).digest()[:8], "big"
        )
        return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# Archive: everything the search has evaluated so far
# ----------------------------------------------------------------------
@dataclass
class ArchiveEntry:
    """One evaluated candidate: its cell, params, and objective vector."""

    digest: str
    candidate: Candidate
    cell: Cell
    vector: ObjectiveVector
    generation: int


def _ranked_digests(
    archive: Dict[str, ArchiveEntry],
    objectives: Sequence[str],
    senses: Sequence[str],
    weights: Optional[Sequence[float]],
) -> List[str]:
    """Archive digests best-first: Pareto rank, then MCDM score, then id."""
    digests = sorted(archive)
    vectors = [archive[d].vector for d in digests]
    ranks = non_dominated_sort(vectors, senses)
    scores = weighted_sum_scores(vectors, senses, weights)
    order = sorted(
        range(len(digests)),
        key=lambda i: (ranks[i], -scores[i], digests[i]),
    )
    return [digests[i] for i in order]


def _propose(
    spec: DseSpec,
    generation: int,
    archive: Dict[str, ArchiveEntry],
    rng: np.random.Generator,
) -> List[Candidate]:
    """One generation's candidate list (deduped, deterministic)."""
    space = spec.space
    out: List[Candidate] = []
    seen: set = set()

    def push(candidate: Candidate) -> bool:
        digest = space.digest_of(candidate)
        if digest in seen:
            return False
        seen.add(digest)
        out.append(candidate)
        return True

    target = spec.evolve.population
    budget = 20 * target  # proposal attempts; tiny spaces exhaust early
    if generation == 0 or not archive:
        push(spec.default_candidate())
        while len(out) < target and budget > 0:
            budget -= 1
            push(space.sample(rng))
        return out
    ranked = _ranked_digests(
        archive, spec.objectives, spec.senses, spec.weights
    )
    for digest in ranked[: spec.evolve.elites]:
        push(archive[digest].candidate)

    def tournament_pick() -> Candidate:
        k = min(spec.evolve.tournament, len(ranked))
        picks = rng.integers(0, len(ranked), size=k)
        best = min(int(i) for i in picks)  # ranked is best-first
        return archive[ranked[best]].candidate

    while len(out) < target and budget > 0:
        budget -= 1
        parent_a = tournament_pick()
        parent_b = tournament_pick()
        if rng.random() < spec.evolve.crossover_rate:
            child = space.crossover(parent_a, parent_b, rng)
        else:
            child = dict(parent_a)
        child = space.mutate(
            child, rng, spec.evolve.mutation_rate, spec.evolve.mutation_scale
        )
        push(child)
    while len(out) < target and budget > 0:
        budget -= 1
        push(space.sample(rng))
    return out


def _known_scalar_scores(
    spec: DseSpec,
    archive: Dict[str, ArchiveEntry],
    candidates: Sequence[Candidate],
    predicted: Dict[int, ObjectiveVector],
) -> List[float]:
    """Scalarized (higher-better) scores for a candidate round.

    Normalisation bounds come from the union of the archive's true
    vectors and the round's predicted ones, so known and predicted
    scores live on one scale.
    """
    digests = [spec.space.digest_of(c) for c in candidates]
    archive_order = sorted(archive)
    pool: List[ObjectiveVector] = [archive[d].vector for d in archive_order]
    position = {digest: i for i, digest in enumerate(archive_order)}
    index_of_candidate: List[int] = []
    for i, digest in enumerate(digests):
        if digest in position:
            index_of_candidate.append(position[digest])
        else:
            pool.append(predicted[i])
            index_of_candidate.append(len(pool) - 1)
    scores = weighted_sum_scores(pool, spec.senses, spec.weights)
    return [scores[i] for i in index_of_candidate]


# ----------------------------------------------------------------------
# Evaluation through the campaign substrate
# ----------------------------------------------------------------------
def _generation_campaign_spec(
    spec: DseSpec, generation: int, cells: Sequence[Cell]
) -> CampaignSpec:
    """The campaign that evaluates one generation's surviving cells."""
    return CampaignSpec(
        name=f"{spec.name}-g{generation:03d}",
        base=spec.base,
        fixed_cells=tuple(cells),
        seeds=spec.seeds,
        stop=spec.stop,
    )


def _records_by_cell(
    records: Dict[str, Dict[str, object]]
) -> Dict[Cell, List[Dict[str, object]]]:
    out: Dict[Cell, List[Dict[str, object]]] = {}
    # Digest-sorted iteration keeps per-cell record order deterministic.
    for digest in sorted(records):
        record = records[digest]
        cell: Cell = tuple(
            (str(name), freeze_value(value))
            for name, value in record.get("cell", [])
        )
        out.setdefault(cell, []).append(record)
    return out


def _front_doc(
    spec: DseSpec, archive: Dict[str, ArchiveEntry], generations_done: int
) -> Dict[str, object]:
    """The deterministic ``front.json`` document."""
    digests = sorted(archive)
    vectors = [archive[d].vector for d in digests]
    front = pareto_front_indices(vectors, spec.senses)
    points = [
        {
            "cell_digest": digests[i],
            "params": dict(sorted(archive[digests[i]].candidate.items())),
            "objectives": dict(
                zip(spec.objectives, archive[digests[i]].vector)
            ),
        }
        for i in front
    ]
    points.sort(key=lambda p: p["cell_digest"])
    return {
        "schema": 1,
        "name": spec.name,
        "spec_digest": spec.spec_digest(),
        "objectives": list(spec.objectives),
        "senses": list(spec.senses),
        "generations_done": generations_done,
        "n_evaluated": len(archive),
        "points": points,
        "front_digest": digest_of([json.dumps(points, sort_keys=True)]),
    }


@dataclass
class SearchOutcome:
    """Everything ``run_search`` leaves behind, in memory form."""

    name: str
    spec_digest: str
    front: List[Dict[str, object]]
    front_digest: str
    counters: Dict[str, int]
    per_generation: List[Dict[str, object]]
    default: Dict[str, object]
    complete: bool
    exhaustive_size: Optional[int]

    def dominating_default(self, min_better: int = 2) -> List[Dict[str, object]]:
        """Front points at least as good as the default everywhere it is
        defined, equal on ``escapes`` when present, and strictly better
        on at least ``min_better`` objectives."""
        names = list(self.default.get("objectives", {}).keys())
        senses = [OBJECTIVES[n].sense for n in names]
        base_vec = tuple(
            self.default["objectives"][n] for n in names
        )
        out = []
        for point in self.front:
            vec = tuple(point["objectives"][n] for n in names)
            if "escapes" in names:
                k = names.index("escapes")
                if vec[k] != base_vec[k]:
                    continue
            if not dominates(vec, base_vec, senses):
                continue
            better = sum(
                1
                for n, a, b in zip(names, vec, base_vec)
                if a is not None and b is not None
                and OBJECTIVES[n].better(a, b)
            )
            if better >= min_better:
                out.append(point)
        return out

    def render(self, precision: int = 4) -> str:
        """Human-readable search report."""
        rows = [
            [
                g["generation"], g["proposed"], g["cache_hits"],
                g["pruned"], g["evaluated"], g["archive"], g["front"],
            ]
            for g in self.per_generation
        ]
        parts = [
            format_table(
                ["gen", "proposed", "cache_hits", "pruned", "evaluated",
                 "archive", "front"],
                rows,
                precision=precision,
                title=(
                    f"dse {self.name}: {self.counters['evaluated']} "
                    f"evaluated / {self.counters['proposed']} proposed"
                    + (
                        f" (exhaustive grid: {self.exhaustive_size})"
                        if self.exhaustive_size is not None
                        else ""
                    )
                ),
            )
        ]
        dominating = self.dominating_default()
        parts.append(
            f"front: {len(self.front)} non-dominated point(s); "
            f"{len(dominating)} dominate the paper-default config "
            f"on >= 2 objectives at equal escapes"
        )
        parts.append(f"front digest: {self.front_digest}")
        if not self.complete:
            parts.append(
                "search incomplete: resume with `repro dse run` on the "
                "same directory"
            )
        return "\n".join(parts)


def _report_doc(outcome: SearchOutcome) -> Dict[str, object]:
    return {
        "schema": 1,
        "name": outcome.name,
        "spec_digest": outcome.spec_digest,
        "counters": outcome.counters,
        "per_generation": outcome.per_generation,
        "default": outcome.default,
        "front_digest": outcome.front_digest,
        "complete": outcome.complete,
        "exhaustive_size": outcome.exhaustive_size,
    }


def _outcome_from_report(
    doc: Dict[str, object], front_doc: Dict[str, object]
) -> SearchOutcome:
    return SearchOutcome(
        name=str(doc["name"]),
        spec_digest=str(doc["spec_digest"]),
        front=list(front_doc.get("points", [])),
        front_digest=str(front_doc.get("front_digest", "")),
        counters=dict(doc["counters"]),
        per_generation=list(doc["per_generation"]),
        default=dict(doc["default"]),
        complete=bool(doc["complete"]),
        exhaustive_size=doc.get("exhaustive_size"),
    )


# ----------------------------------------------------------------------
# Run / resume / report
# ----------------------------------------------------------------------
def _prepare_search_dir(spec: Optional[DseSpec], search_dir: str) -> DseSpec:
    os.makedirs(search_dir, exist_ok=True)
    spec_path = os.path.join(search_dir, SPEC_FILE)
    if os.path.exists(spec_path):
        existing = DseSpec.load(spec_path)
        if spec is not None and existing.spec_digest() != spec.spec_digest():
            raise ValueError(
                f"{search_dir!r} already holds search {existing.name!r} "
                f"with a different spec; refusing to mix searches in one "
                f"directory"
            )
        return existing
    if spec is None:
        raise FileNotFoundError(
            f"{search_dir!r} is not a search directory (no {SPEC_FILE}) "
            f"and no spec was given"
        )
    spec.save(spec_path)
    return spec


def _resolve_cache(cache, search_dir: str):
    """The run cache evaluations ride (default: one inside the dir)."""
    if cache is False:
        return None
    if cache is None:
        from repro.cache import RunCache

        return RunCache(cache_dir=os.path.join(search_dir, "cache"))
    return cache


def run_search(
    search_dir: str,
    spec: Optional[DseSpec] = None,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
    cache=None,
    interrupt_after: Optional[int] = None,
    telemetry: bool = True,
) -> SearchOutcome:
    """Run (or resume) a search to completion.

    Idempotent by construction: pointing ``run_search`` at a directory
    that already holds a partial search re-derives every generation and
    only simulates what the checkpoint stores are missing.  ``spec`` may
    be omitted for an existing directory; when both are given their
    digests must match.

    ``cache`` — ``None`` uses a :class:`repro.cache.RunCache` under
    ``<search_dir>/cache`` (recommended: re-proposed candidates and
    overlapping searches are served warm), ``False`` disables caching,
    any other value is used as the cache instance.

    ``interrupt_after`` (testing/ops hook) deterministically simulates a
    crash after N newly-checkpointed simulation runs by raising
    :class:`SearchInterrupted` — the same contract campaigns make, and
    the hook the ``dse-smoke`` CI job kills searches with.

    ``jobs``/``batch`` pass straight through to
    :func:`repro.campaign.runner.run_campaign`; results are
    digest-identical whatever their values.
    """
    spec = _prepare_search_dir(spec, search_dir)
    run_cache = _resolve_cache(cache, search_dir)
    registry = active_telemetry() if telemetry else None
    counters = {
        "proposed": 0, "cache_hits": 0, "pruned": 0,
        "evaluated": 0, "generations": 0,
    }

    def count(name: str, n: int = 1) -> None:
        counters[name] += n
        if registry is not None:
            registry.counter(f"dse.{name}").inc(n)

    archive: Dict[str, ArchiveEntry] = {}
    per_generation: List[Dict[str, object]] = []
    surrogate = PolynomialSurrogate(spec.space, degree=spec.surrogate.degree)
    remaining = interrupt_after
    completed_runs = 0
    default_digest = spec.space.digest_of(spec.default_candidate())

    def flush(complete: bool) -> SearchOutcome:
        front_doc = _front_doc(spec, archive, counters["generations"])
        default_entry = archive.get(default_digest)
        outcome = SearchOutcome(
            name=spec.name,
            spec_digest=spec.spec_digest(),
            front=list(front_doc["points"]),
            front_digest=str(front_doc["front_digest"]),
            counters=dict(counters),
            per_generation=list(per_generation),
            default={
                "cell_digest": default_digest,
                "objectives": (
                    dict(zip(spec.objectives, default_entry.vector))
                    if default_entry is not None
                    else None
                ),
            },
            complete=complete,
            exhaustive_size=spec.space.exhaustive_size(),
        )
        atomic_write_text(
            os.path.join(search_dir, FRONT_FILE),
            json.dumps(front_doc, indent=2, sort_keys=True) + "\n",
        )
        atomic_write_text(
            os.path.join(search_dir, REPORT_FILE),
            json.dumps(_report_doc(outcome), indent=2, sort_keys=True) + "\n",
        )
        return outcome

    for generation in range(spec.evolve.generations):
        rng = spec.generation_rng(generation)
        candidates = _propose(spec, generation, archive, rng)
        count("proposed", len(candidates))
        digests = [spec.space.digest_of(c) for c in candidates]
        known_mask = [d in archive for d in digests]
        count("cache_hits", sum(known_mask))
        unknown = [
            (i, c)
            for i, (c, k) in enumerate(zip(candidates, known_mask))
            if not k
        ]
        pruned_digests: List[str] = []
        evaluate = [c for _, c in unknown]
        can_prune = (
            spec.surrogate.threshold is not None
            and len(archive) >= spec.surrogate.min_points
            and unknown
        )
        if can_prune:
            fit_digests = sorted(archive)
            surrogate.fit(
                [archive[d].candidate for d in fit_digests],
                [archive[d].vector for d in fit_digests],
            )
            predicted = dict(
                zip(
                    [i for i, _ in unknown],
                    surrogate.predict([c for _, c in unknown]),
                )
            )
            scores = _known_scalar_scores(
                spec, archive, candidates, predicted
            )
            outcome = prune_candidates(
                scores, known_mask, spec.surrogate.threshold
            )
            evaluate = [
                candidates[i] for i in outcome.kept if not known_mask[i]
            ]
            pruned_digests = [digests[i] for i in outcome.pruned]
            count("pruned", len(pruned_digests))
        count("evaluated", len(evaluate))

        if evaluate:
            cells = sorted(
                (spec.space.cell_of(c) for c in evaluate),
                key=cell_digest,
            )
            camp_spec = _generation_campaign_spec(spec, generation, cells)
            gen_dir = os.path.join(search_dir, f"gen-{generation:03d}")
            store = ResultStore(os.path.join(gen_dir, RESULTS_FILE))
            resume = os.path.exists(store.path)
            if resume:
                from repro.campaign.runner import load_spec

                existing = load_spec(gen_dir)
                if existing.spec_digest() != camp_spec.spec_digest():
                    raise ValueError(
                        f"{gen_dir!r} holds a campaign that does not "
                        f"match generation {generation} of this search; "
                        f"the directory has been tampered with"
                    )
            before = len(store.load())
            if remaining is not None and remaining <= 0:
                raise SearchInterrupted(completed_runs)
            try:
                run_campaign(
                    gen_dir,
                    spec=None if resume else camp_spec,
                    resume=resume,
                    jobs=jobs,
                    batch=batch,
                    cache=run_cache,
                    interrupt_after=remaining,
                    telemetry=telemetry,
                )
            except CampaignInterrupted:
                completed_runs += max(0, len(store.load()) - before)
                flush(complete=False)
                raise SearchInterrupted(completed_runs) from None
            new_runs = len(store.load()) - before
            completed_runs += new_runs
            if remaining is not None:
                remaining -= new_runs
            by_cell = _records_by_cell(store.load())
            for candidate in evaluate:
                cell = spec.space.cell_of(candidate)
                records = by_cell.get(cell, [])
                if not records:
                    continue  # quarantined out; may be re-proposed later
                digest = cell_digest(cell)
                archive[digest] = ArchiveEntry(
                    digest=digest,
                    candidate=candidate,
                    cell=cell,
                    vector=objective_vector(spec.objectives, records),
                    generation=generation,
                )
        count("generations")
        digests_set = set(archive)
        front_size = len(
            pareto_front_indices(
                [archive[d].vector for d in sorted(digests_set)],
                spec.senses,
            )
        )
        per_generation.append(
            {
                "generation": generation,
                "proposed": len(candidates),
                "cache_hits": sum(known_mask),
                "pruned": len(pruned_digests),
                "evaluated": len(evaluate),
                "archive": len(archive),
                "front": front_size,
            }
        )
        outcome = flush(complete=(generation == spec.evolve.generations - 1))
    return outcome


def report_search(search_dir: str) -> SearchOutcome:
    """Rebuild the outcome of an existing search directory (no runs)."""
    report_path = os.path.join(search_dir, REPORT_FILE)
    front_path = os.path.join(search_dir, FRONT_FILE)
    if not os.path.exists(report_path) or not os.path.exists(front_path):
        raise FileNotFoundError(
            f"{search_dir!r} has no search report yet; run "
            f"`repro dse run` first"
        )
    with open(report_path, "r", encoding="utf-8") as handle:
        report_doc = json.load(handle)
    with open(front_path, "r", encoding="utf-8") as handle:
        front_doc = json.load(handle)
    return _outcome_from_report(report_doc, front_doc)


def load_front(search_dir: str) -> Dict[str, object]:
    """Read the ``front.json`` artifact of a search directory."""
    path = os.path.join(search_dir, FRONT_FILE)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"{search_dir!r} has no {FRONT_FILE} yet; run "
            f"`repro dse run` first"
        )
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)

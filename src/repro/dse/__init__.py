"""Surrogate-guided design-space exploration with Pareto decision support.

The paper ships *one* scheduler/mapper/PID parameterisation and
evaluates it; this package searches the space around that point.  A
:class:`~repro.dse.search.DseSpec` declares the searchable knobs
(:mod:`repro.dse.space`), the objectives (:mod:`repro.dse.pareto`) and
the evolutionary/surrogate settings; :func:`~repro.dse.search.run_search`
then runs a seeded, fully deterministic evolutionary loop whose
evaluation step is literally a campaign — so it inherits checkpointing,
the process pool, the lockstep batch engine, the run cache and the
sequential stopping rules unchanged, and a killed search resumes to a
byte-identical ``front.json``.

>>> from repro.dse import DseSpec
>>> spec = DseSpec.from_dict({
...     "name": "doc-demo",
...     "base": {"width": 4, "height": 4, "horizon_us": 2000.0},
...     "space": [
...         {"field": "max_concurrent_tests", "type": "int",
...          "low": 2, "high": 8},
...         {"field": "guard_fraction", "type": "float",
...          "low": 0.0, "high": 0.1},
...     ],
...     "objectives": ["throughput", "escapes", "power"],
... })
>>> spec.space.names
['max_concurrent_tests', 'guard_fraction']

See ``docs/dse.md`` for the search-space schema, the surrogate model,
the Pareto/MCDM semantics and a worked end-to-end example; the shell
interface is ``repro dse run | report | front``.
"""

from repro.dse.pareto import (
    OBJECTIVES,
    ObjectiveDef,
    ObjectiveVector,
    dominates,
    lexicographic_ranking,
    non_dominated_sort,
    normalize_columns,
    objective_vector,
    pareto_front_indices,
    weighted_sum_ranking,
    weighted_sum_scores,
)
from repro.dse.search import (
    ArchiveEntry,
    DseSpec,
    EvolutionParams,
    SearchInterrupted,
    SearchOutcome,
    SurrogateParams,
    load_front,
    report_search,
    run_search,
)
from repro.dse.space import (
    Candidate,
    ChoiceParam,
    FloatParam,
    IntParam,
    SearchSpace,
    param_from_dict,
)
from repro.dse.surrogate import (
    PolynomialSurrogate,
    PruneOutcome,
    polynomial_features,
    prune_candidates,
)

__all__ = [
    "OBJECTIVES",
    "ArchiveEntry",
    "Candidate",
    "ChoiceParam",
    "DseSpec",
    "EvolutionParams",
    "FloatParam",
    "IntParam",
    "ObjectiveDef",
    "ObjectiveVector",
    "PolynomialSurrogate",
    "PruneOutcome",
    "SearchInterrupted",
    "SearchOutcome",
    "SearchSpace",
    "SurrogateParams",
    "dominates",
    "lexicographic_ranking",
    "load_front",
    "non_dominated_sort",
    "normalize_columns",
    "objective_vector",
    "param_from_dict",
    "pareto_front_indices",
    "polynomial_features",
    "prune_candidates",
    "report_search",
    "run_search",
    "weighted_sum_ranking",
    "weighted_sum_scores",
]

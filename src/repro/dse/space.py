"""Declarative search spaces over :class:`SystemConfig` parameters.

A :class:`SearchSpace` names the scheduler/mapper/PID/budget knobs a
design-space exploration may vary and the domain of each:

* :class:`FloatParam` — a continuous range ``[low, high]``;
* :class:`IntParam`   — an integer range ``[low, high]`` (inclusive);
* :class:`ChoiceParam` — a finite set of categorical values.

A *candidate* is a plain ``{field: value}`` dict assigning every
parameter.  The space resolves candidates into fully-formed
:class:`~repro.core.system.SystemConfig` overrides — a campaign *cell*
in the sense of :mod:`repro.campaign.spec` — so candidate identity is
the existing :func:`~repro.campaign.spec.cell_digest` and evaluation
rides the whole campaign substrate (checkpoint store, run cache,
process pool, batch engine, stopping rules) unchanged.

All randomness flows through a caller-supplied ``numpy`` Generator —
nothing here touches the :mod:`random` module or any global state, which
is what makes searches replayable from their spec digest alone.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.spec import Cell, cell_digest, freeze_cell
from repro.core.system import SystemConfig

#: One candidate: a full assignment of every space parameter.
Candidate = Dict[str, object]


def _as_python(value: object) -> object:
    """numpy scalar -> plain Python value (JSON- and repr-stable)."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


@dataclass(frozen=True)
class FloatParam:
    """A continuous parameter in ``[low, high]``."""

    name: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.high > self.low:
            raise ValueError(
                f"{self.name}: need high > low, got [{self.low}, {self.high}]"
            )

    #: Number of discrete values (None: the domain is continuous).
    n_values: Optional[int] = dataclasses.field(
        default=None, init=False, repr=False
    )

    def sample(self, rng: np.random.Generator) -> float:
        """One uniform draw from the range."""
        return float(rng.uniform(self.low, self.high))

    def mutate(
        self, value: object, rng: np.random.Generator, scale: float
    ) -> float:
        """Gaussian perturbation of ``scale`` range-fractions, clipped."""
        span = self.high - self.low
        perturbed = float(value) + float(rng.normal(0.0, scale * span))
        return float(min(self.high, max(self.low, perturbed)))

    def validate(self, value: object) -> float:
        """Coerce and range-check one value."""
        v = float(value)
        if not self.low <= v <= self.high:
            raise ValueError(
                f"{self.name}: {v} outside [{self.low}, {self.high}]"
            )
        return v

    def encode(self, value: object) -> List[float]:
        """Feature encoding: the value min-max scaled to [0, 1]."""
        return [(float(value) - self.low) / (self.high - self.low)]

    @property
    def width(self) -> int:
        """Length of :meth:`encode`'s output."""
        return 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of the parameter."""
        return {
            "field": self.name, "type": "float",
            "low": self.low, "high": self.high,
        }


@dataclass(frozen=True)
class IntParam:
    """An integer parameter in ``[low, high]`` (both inclusive)."""

    name: str
    low: int
    high: int

    def __post_init__(self) -> None:
        if not self.high > self.low:
            raise ValueError(
                f"{self.name}: need high > low, got [{self.low}, {self.high}]"
            )

    @property
    def n_values(self) -> int:
        """Number of discrete values in the range."""
        return self.high - self.low + 1

    def sample(self, rng: np.random.Generator) -> int:
        """One uniform draw from the inclusive range."""
        return int(rng.integers(self.low, self.high + 1))

    def mutate(
        self, value: object, rng: np.random.Generator, scale: float
    ) -> int:
        """Rounded Gaussian step; always moves at least one unit."""
        span = self.high - self.low
        step = int(round(float(rng.normal(0.0, max(1.0, scale * span)))))
        if step == 0:
            step = 1 if rng.random() < 0.5 else -1
        return int(min(self.high, max(self.low, int(value) + step)))

    def validate(self, value: object) -> int:
        """Coerce and range-check one value."""
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise ValueError(f"{self.name}: {value!r} is not an integer")
        v = int(value)
        if not self.low <= v <= self.high:
            raise ValueError(
                f"{self.name}: {v} outside [{self.low}, {self.high}]"
            )
        return v

    def encode(self, value: object) -> List[float]:
        """Feature encoding: the value min-max scaled to [0, 1]."""
        return [(int(value) - self.low) / (self.high - self.low)]

    @property
    def width(self) -> int:
        """Length of :meth:`encode`'s output."""
        return 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of the parameter."""
        return {
            "field": self.name, "type": "int",
            "low": self.low, "high": self.high,
        }


@dataclass(frozen=True)
class ChoiceParam:
    """A categorical parameter over a finite value set."""

    name: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if len(self.values) < 2:
            raise ValueError(f"{self.name}: need >= 2 choices")
        if len(set(map(repr, self.values))) != len(self.values):
            raise ValueError(f"{self.name}: duplicate choices")

    @property
    def n_values(self) -> int:
        """Number of choices."""
        return len(self.values)

    def sample(self, rng: np.random.Generator) -> object:
        """One uniform draw over the choices."""
        return self.values[int(rng.integers(0, len(self.values)))]

    def mutate(
        self, value: object, rng: np.random.Generator, scale: float
    ) -> object:
        """Re-draw among the *other* choices (scale is ignored)."""
        others = [v for v in self.values if repr(v) != repr(value)]
        return others[int(rng.integers(0, len(others)))]

    def validate(self, value: object) -> object:
        """Membership-check one value."""
        for v in self.values:
            if repr(v) == repr(value):
                return v
        raise ValueError(
            f"{self.name}: {value!r} not one of {list(self.values)}"
        )

    def encode(self, value: object) -> List[float]:
        """Feature encoding: one-hot over the choices."""
        return [
            1.0 if repr(v) == repr(value) else 0.0 for v in self.values
        ]

    @property
    def width(self) -> int:
        """Length of :meth:`encode`'s output."""
        return len(self.values)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of the parameter."""
        return {
            "field": self.name, "type": "choice",
            "values": list(self.values),
        }


_PARAM_TYPES = ("float", "int", "choice")


def param_from_dict(data: Dict[str, object]):
    """Build one parameter from its JSON form (see each ``to_dict``)."""
    if not isinstance(data, dict):
        raise ValueError(f"space parameter must be an object, got {data!r}")
    kind = data.get("type")
    name = data.get("field")
    if not isinstance(name, str) or not name:
        raise ValueError(f"space parameter needs a 'field' name: {data!r}")
    if kind == "float":
        return FloatParam(name, float(data["low"]), float(data["high"]))
    if kind == "int":
        return IntParam(name, int(data["low"]), int(data["high"]))
    if kind == "choice":
        values = data.get("values")
        if not isinstance(values, list):
            raise ValueError(f"{name}: choice 'values' must be an array")
        return ChoiceParam(name, tuple(values))
    raise ValueError(
        f"{name}: unknown parameter type {kind!r}; known: {_PARAM_TYPES}"
    )


@dataclass(frozen=True)
class SearchSpace:
    """An ordered set of parameters over :class:`SystemConfig` fields."""

    params: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.params:
            raise ValueError("search space has no parameters")
        known = {f.name for f in dataclasses.fields(SystemConfig)}
        seen = set()
        for param in self.params:
            if param.name not in known:
                raise ValueError(
                    f"unknown SystemConfig field in space: {param.name!r}"
                )
            if param.name == "seed":
                raise ValueError(
                    "'seed' cannot be searched; seeds come from the "
                    "seed plan"
                )
            if param.name in seen:
                raise ValueError(f"duplicate space parameter {param.name!r}")
            seen.add(param.name)

    # ------------------------------------------------------------------
    # Construction / serialisation
    # ------------------------------------------------------------------
    @classmethod
    def from_list(cls, data: Sequence[Dict[str, object]]) -> "SearchSpace":
        """Build a space from a JSON array of parameter objects."""
        if not isinstance(data, (list, tuple)):
            raise ValueError("search space must be a JSON array")
        return cls(params=tuple(param_from_dict(d) for d in data))

    def to_list(self) -> List[Dict[str, object]]:
        """JSON-ready form, the inverse of :meth:`from_list`."""
        return [param.to_dict() for param in self.params]

    # ------------------------------------------------------------------
    # Candidate algebra
    # ------------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        """Parameter names, in declaration order."""
        return [param.name for param in self.params]

    def sample(self, rng: np.random.Generator) -> Candidate:
        """Draw one uniform candidate."""
        return {
            param.name: _as_python(param.sample(rng))
            for param in self.params
        }

    def mutate(
        self,
        candidate: Candidate,
        rng: np.random.Generator,
        rate: float,
        scale: float,
    ) -> Candidate:
        """Per-parameter mutation with probability ``rate`` each.

        At least one parameter always mutates, so a mutation call never
        returns its input unchanged.
        """
        flags = [rng.random() < rate for _ in self.params]
        if not any(flags):
            flags[int(rng.integers(0, len(self.params)))] = True
        out: Candidate = {}
        for param, flip in zip(self.params, flags):
            value = candidate[param.name]
            out[param.name] = _as_python(
                param.mutate(value, rng, scale) if flip else value
            )
        return out

    def crossover(
        self, a: Candidate, b: Candidate, rng: np.random.Generator
    ) -> Candidate:
        """Uniform crossover: each parameter from one parent at random."""
        return {
            param.name: _as_python(
                (a if rng.random() < 0.5 else b)[param.name]
            )
            for param in self.params
        }

    def validate_candidate(self, candidate: Candidate) -> Candidate:
        """Full-assignment check; returns the coerced candidate."""
        unknown = set(candidate) - set(self.names)
        if unknown:
            raise ValueError(f"unknown candidate fields: {sorted(unknown)}")
        missing = [n for n in self.names if n not in candidate]
        if missing:
            raise ValueError(f"candidate missing fields: {missing}")
        return {
            param.name: _as_python(param.validate(candidate[param.name]))
            for param in self.params
        }

    def cell_of(self, candidate: Candidate) -> Cell:
        """The campaign cell a candidate resolves to (canonical order)."""
        return freeze_cell(self.validate_candidate(candidate))

    def digest_of(self, candidate: Candidate) -> str:
        """Candidate identity: the digest of its campaign cell."""
        return cell_digest(self.cell_of(candidate))

    def encode(self, candidate: Candidate) -> np.ndarray:
        """Feature vector of a candidate (floats in [0, 1], one-hots)."""
        features: List[float] = []
        for param in self.params:
            features.extend(param.encode(candidate[param.name]))
        return np.asarray(features, dtype=np.float64)

    @property
    def encoded_width(self) -> int:
        """Total feature-vector length."""
        return sum(param.width for param in self.params)

    def exhaustive_size(self) -> Optional[int]:
        """Points in the full grid (None when any parameter is continuous).

        This is the denominator of the "evaluated N of E exhaustive"
        efficiency claim searches log; a space with a float parameter has
        no finite grid.
        """
        total = 1
        for param in self.params:
            if param.n_values is None:
                return None
            total *= param.n_values
        return total

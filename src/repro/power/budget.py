"""Chip power budget (TDP) and budget accounting helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class PowerBudget:
    """The chip-level power cap and its guard band.

    ``tdp_w`` is the hard cap the package must not exceed; actuators aim at
    the *guarded* cap so that event-grained power wiggle between control
    epochs does not puncture the hard cap.
    """

    tdp_w: float
    guard_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.tdp_w <= 0:
            raise ValueError("TDP must be positive")
        if not 0.0 <= self.guard_fraction < 1.0:
            raise ValueError("guard_fraction must be in [0, 1)")

    @property
    def cap(self) -> float:
        return self.tdp_w

    @property
    def guarded_cap(self) -> float:
        return self.tdp_w * (1.0 - self.guard_fraction)

    def headroom(self, measured_w: float) -> float:
        """Power still spendable under the guarded cap."""
        return self.guarded_cap - measured_w

    def violated(self, measured_w: float) -> bool:
        return measured_w > self.tdp_w + 1e-9


@dataclass
class BudgetAudit:
    """Records budget-violation statistics from sampled chip power."""

    budget: PowerBudget
    samples: int = 0
    violations: int = 0
    worst_overshoot_w: float = 0.0
    _violation_spans: List[Tuple[float, float]] = field(default_factory=list)

    def observe(self, time: float, measured_w: float) -> None:
        self.samples += 1
        if self.budget.violated(measured_w):
            self.violations += 1
            overshoot = measured_w - self.budget.tdp_w
            self.worst_overshoot_w = max(self.worst_overshoot_w, overshoot)
            self._violation_spans.append((time, overshoot))

    @property
    def violation_rate(self) -> float:
        if self.samples == 0:
            return 0.0
        return self.violations / self.samples

    def violation_times(self) -> List[float]:
        return [t for t, _ in self._violation_spans]

"""Power-management policies (fine-grained PID vs. naive TDP baseline).

A power manager runs once per control epoch.  It reads the meter, decides
new DVFS levels for *busy* cores and applies them through a level actuator
callback supplied by the execution engine (which re-times in-flight tasks
when their core's speed changes).  Cores running SBST tests are left alone:
their level and power were budgeted by the test scheduler when the test was
admitted, and the scheduler aborts tests on emergency (see
:class:`repro.core.scheduler.PowerAwareTestScheduler`).

Two policies are provided:

* :class:`PIDPowerManager` — the ICCD'14 substrate: a PID controller tracks
  the TDP set-point and per-core DVFS steps close the gap; the fastest
  reaction is per-core and one ladder step per epoch, which is fine-grained
  enough to hug the budget without oscillation.
* :class:`NaiveTDPManager` — the baseline the ICCD'14 abstract compares
  against: one global V/F level for the whole chip, dropped a step when the
  cap is exceeded and raised a step only when power falls far below the
  cap.  It over-throttles, which is exactly the throughput gap E9 measures.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.obs.journal import NULL_JOURNAL
from repro.platform.chip import Chip
from repro.platform.core import Core
from repro.platform.dvfs import VFLevel
from repro.platform.techmodel import cached_model_dynamic, cached_model_leakage
from repro.power.budget import PowerBudget
from repro.power.meter import PowerMeter
from repro.power.pid import PIDController, PIDGains

#: Applies a new DVFS level to a busy core (re-timing its task).
LevelActuator = Callable[[Core, VFLevel], None]


class PowerManager:
    """Base class: owns chip, meter, budget and the actuation callback."""

    name = "base"

    def __init__(
        self,
        chip: Chip,
        meter: PowerMeter,
        budget: PowerBudget,
        actuator: Optional[LevelActuator] = None,
    ) -> None:
        self.chip = chip
        self.meter = meter
        self.budget = budget
        self._actuator = actuator
        self.level_changes = 0
        #: Observability sink (no-op by default; installed by the system).
        self.journal = NULL_JOURNAL
        #: Simulation time of the current tick; kept for journal emission
        #: from :meth:`_apply`, which has no ``now`` in scope.
        self._tick_now = 0.0
        #: Real-time rank of the work on a core (0 = hard-rt, 2 =
        #: best-effort; see repro.workload.generator.RT_CLASSES).  Bound
        #: by the system when mixed-criticality priorities are enabled;
        #: the default treats everything as best-effort.
        self.rt_rank: Callable[[Core], int] = lambda core: 2

    def bind_actuator(self, actuator: LevelActuator) -> None:
        self._actuator = actuator

    def _apply(self, core: Core, level: VFLevel) -> None:
        if level.index == core.level.index:
            return
        if self._actuator is None:
            raise RuntimeError(f"{self.name}: no level actuator bound")
        if self.journal.enabled:
            self.journal.emit(
                "dvfs.change",
                self._tick_now,
                core=core.core_id,
                from_level=core.level.index,
                to_level=level.index,
            )
        self._actuator(core, level)
        self.level_changes += 1

    def tick(self, now: float, dt: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def preferred_start_level(self) -> VFLevel:
        """Level a newly started task should begin at (policy-specific)."""
        return self.chip.vf_table.max_level

    def start_level_for(self, core: Core, activity: float) -> VFLevel:
        """Level to start a specific task at, given the current headroom.

        The base behaviour ignores power (ablation policies); budget-aware
        managers override it.
        """
        return self.preferred_start_level()

    def spare_core_slots(self) -> Optional[int]:
        """How many more cores may be activated, or ``None`` (no limit).

        Only admission-limiting policies (worst-case TDP scheduling)
        constrain this; DVFS-based policies fit any number of active cores
        under the budget by scaling V/F instead.
        """
        return None

    def explain(self, now: float) -> Dict[str, object]:
        """Read-only decision audit: the policy's view of the chip now.

        Subclasses extend this with their controller state; nothing here
        may mutate the manager or the chip.
        """
        measured = self.meter.chip_power()
        return {
            "time": now,
            "policy": self.name,
            "measured_w": measured,
            "cap_w": self.budget.cap,
            "guarded_cap_w": self.budget.guarded_cap,
            "headroom_w": self.budget.headroom(measured),
            "level_changes": self.level_changes,
            "core_levels": {
                core.core_id: core.level.index for core in self.chip.busy_cores()
            },
        }


class NoOpPowerManager(PowerManager):
    """Runs everything at nominal; never reacts to the budget (ablation)."""

    name = "none"

    def tick(self, now: float, dt: float) -> None:
        return


class NaiveTDPManager(PowerManager):
    """Chip-global DVFS stepped on threshold crossings (baseline)."""

    name = "naive"

    def __init__(
        self,
        chip: Chip,
        meter: PowerMeter,
        budget: PowerBudget,
        actuator: Optional[LevelActuator] = None,
        relax_fraction: float = 0.7,
    ) -> None:
        super().__init__(chip, meter, budget, actuator)
        if not 0.0 < relax_fraction < 1.0:
            raise ValueError("relax_fraction must be in (0, 1)")
        self.relax_fraction = relax_fraction
        self._global_level = chip.vf_table.max_level

    def preferred_start_level(self) -> VFLevel:
        return self._global_level

    def tick(self, now: float, dt: float) -> None:
        self._tick_now = now
        measured = self.meter.chip_power()
        table = self.chip.vf_table
        if measured > self.budget.guarded_cap:
            self._global_level = table.step(self._global_level, -1)
        elif measured < self.relax_fraction * self.budget.guarded_cap:
            self._global_level = table.step(self._global_level, +1)
        for core in self.chip.busy_cores():
            self._apply(core, self._global_level)


class WorstCaseTDPManager(PowerManager):
    """The "naive TDP scheduling policy" of the ICCD'14 comparison.

    Worst-case provisioning: every active core runs at nominal V/F, and the
    budget is honoured by *admission* — at most ``floor(TDP / peak core
    power)`` cores may be active simultaneously (the static dark-silicon
    lit count).  No DVFS ever happens, so the abundant low-voltage
    throughput that the PID policy unlocks is left on the table; the gap
    is what experiment E9 measures.
    """

    name = "worst-case"

    def max_active_cores(self) -> int:
        # Worst-case means worst-case: on a heterogeneous chip the
        # admission count provisions for the hungriest tile type.  On a
        # homogeneous-std chip this is the node's peak, bit for bit.
        chip = self.chip
        model = chip.tech_model
        peak = max(
            model.peak_core_power(chip.node, ctype)
            for ctype in chip.core_types
        )
        return max(1, int(self.budget.guarded_cap / peak))

    def spare_core_slots(self) -> Optional[int]:
        active = len(self.chip.busy_cores()) + len(self.chip.testing_cores())
        return max(0, self.max_active_cores() - active)

    def tick(self, now: float, dt: float) -> None:
        return


class PIDPowerManager(PowerManager):
    """Per-core fine-grained DVFS guided by a PID on chip power (ICCD'14)."""

    name = "pid"

    def __init__(
        self,
        chip: Chip,
        meter: PowerMeter,
        budget: PowerBudget,
        actuator: Optional[LevelActuator] = None,
        gains: PIDGains = PIDGains(),
        utilization_window_us: float = 1000.0,
    ) -> None:
        super().__init__(chip, meter, budget, actuator)
        self.controller = PIDController(budget.guarded_cap, gains)
        self.utilization_window_us = utilization_window_us
        # ``start_level_for`` may bisect the ladder instead of scanning it
        # iff busy power is nondecreasing level to level *in the cached
        # floats*.  Checking at activity 1.0 suffices: multiplying a sorted
        # pair by the same non-negative activity (or leak factor) and
        # adding componentwise sorted terms preserves order under IEEE
        # rounding, so sortedness here implies it for every task.
        node = chip.node
        model = chip.tech_model
        # Every type present on the chip must have a sorted ladder for the
        # bisection to be valid on any core the actuator may touch.
        self._ladder_sorted = True
        for ctype in chip.core_types:
            dyn = [
                cached_model_dynamic(model, node, ctype, lvl.vdd, lvl.f_mhz, 1.0)
                for lvl in chip.vf_table
            ]
            leak = [
                cached_model_leakage(model, node, ctype, lvl.vdd)
                for lvl in chip.vf_table
            ]
            if not all(
                dyn[i] <= dyn[i + 1] and leak[i] <= leak[i + 1]
                for i in range(len(dyn) - 1)
            ):
                self._ladder_sorted = False
                break

    def preferred_start_level(self) -> VFLevel:
        """Start new tasks one step below nominal; the PID lifts them."""
        return self.chip.vf_table.step(self.chip.vf_table.max_level, -1)

    def current_cap(self) -> float:
        """The power target ceiling this epoch (static guarded TDP here)."""
        return self.budget.guarded_cap

    def explain(self, now: float) -> Dict[str, object]:
        report = super().explain(now)
        report.update(
            cap_w=self.current_cap(),
            set_point_w=self.controller.set_point,
            integral=self.controller.integral,
            last_error_w=self.controller.last_error,
        )
        return report

    def start_level_for(self, core: Core, activity: float) -> VFLevel:
        """Fastest level whose added power fits the current headroom.

        Falls back to near-threshold when nothing fits: in the dark-silicon
        regime work is admitted at the lowest operating point rather than
        refused, and the PID lifts it as headroom appears.
        """
        meter = self.meter
        headroom = self.current_cap() - meter.chip_power()
        table = self.chip.vf_table
        # Inlined ``meter.added_power_if_busy`` with the loop-invariant
        # current core power hoisted; the float expression per level is
        # ``(dyn + leak·lf) - base``, identical to the meter's.
        base = meter.core_power(core)
        node = self.chip.node
        model = self.chip.tech_model
        ctype = core.core_type
        lf = core.leak_factor

        def fits(index: int) -> bool:
            level = table[index]
            busy = (
                cached_model_dynamic(
                    model, node, ctype, level.vdd, level.f_mhz, activity
                )
                + cached_model_leakage(model, node, ctype, level.vdd) * lf
            )
            return busy - base <= headroom

        top = len(table) - 1
        if self._ladder_sorted:
            # ``fits`` is then monotone (true on a prefix of the ladder),
            # so probe the common cases — unconstrained chips take the top
            # level, saturated ones the floor — and bisect the rest for
            # the highest fitting index.  Same level the scan returns.
            if fits(top):
                return table[top]
            if not fits(0):
                return table.min_level
            lo, hi = 0, top - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if fits(mid):
                    lo = mid
                else:
                    hi = mid - 1
            return table[lo]
        for index in range(top, -1, -1):
            if fits(index):
                return table[index]
        return table.min_level

    def tick(self, now: float, dt: float) -> None:
        self._tick_now = now
        measured = self.meter.chip_power()
        self.controller.set_point = self.current_cap()
        signal = self.controller.update(measured, dt)
        # Power we may spend next epoch: measured + signal, never above the
        # cap (anti-windup on the actuation side).
        target = min(self.current_cap(), measured + signal)
        if self.journal.enabled:
            self.journal.emit(
                "pid.step",
                now,
                measured_w=measured,
                set_point_w=self.controller.set_point,
                error_w=self.controller.last_error,
                integral=self.controller.integral,
                signal_w=signal,
                target_w=target,
            )
        self._actuate(now, measured, target)

    # ------------------------------------------------------------------
    def _actuate(self, now: float, measured: float, target: float) -> None:
        busy = self.chip.busy_cores()
        if not busy:
            return
        predicted = measured
        table = self.chip.vf_table
        # Cores pinned at the ladder's end contribute nothing to either
        # branch, so they are dropped before sorting; ``sorted`` is stable,
        # which keeps the surviving cores in exactly the order the full
        # sort would have visited them — the applied changes are identical.
        if predicted > target:
            # Slow down: lowest-criticality, biggest consumers first, one
            # ladder step per core per epoch until the prediction fits —
            # hard real-time work is throttled only after best-effort work
            # has given everything it can (the ICCD'14 priority model).
            candidates = [c for c in busy if c.level.index != 0]
            if not candidates:
                return
            order = sorted(
                candidates,
                key=lambda c: (-self.rt_rank(c), self.meter.core_power(c)),
                reverse=True,
            )
            for core in order:
                if predicted <= target:
                    break
                new_level = table.step(core.level, -1)
                predicted += self.meter.predicted_delta(core, new_level)
                self._apply(core, new_level)
        else:
            # Speed up: real-time work first, then most-utilized cores, so
            # throughput-critical tiles reclaim headroom before lightly
            # loaded ones.
            top = len(table) - 1
            candidates = [c for c in busy if c.level.index < top]
            if not candidates:
                return
            order = sorted(
                candidates,
                key=lambda c: (
                    self.rt_rank(c),
                    -c.utilization(now, self.utilization_window_us),
                ),
            )
            for core in order:
                new_level = table.step(core.level, +1)
                delta = self.meter.predicted_delta(core, new_level)
                if predicted + delta > target:
                    continue
                predicted += delta
                self._apply(core, new_level)


class TSPPowerManager(PIDPowerManager):
    """Thermal-Safe-Power budgeting (Pagani et al.; dark-silicon refinement).

    TDP is a single worst-case number; TSP recognises that the *safe*
    chip-level power depends on how many cores are active — a sparsely
    lit chip spreads heat into dark neighbours and may spend more per
    core.  Each epoch the manager recomputes its cap as

    ``min(guarded TDP, active_cores · TSP(active_cores))``

    and runs the same PID + per-core-DVFS actuation against it.  With few
    active cores the thermal term dominates (more aggressive boosting is
    allowed only if the TDP permits); near full occupation the cap drops
    towards the dense-packing thermal limit.
    """

    name = "tsp"

    def __init__(
        self,
        chip: Chip,
        meter: PowerMeter,
        budget: PowerBudget,
        actuator: Optional[LevelActuator] = None,
        gains: PIDGains = PIDGains(),
        utilization_window_us: float = 1000.0,
        thermal_params: Optional["ThermalParameters"] = None,
    ) -> None:
        super().__init__(
            chip, meter, budget, actuator, gains, utilization_window_us
        )
        from repro.platform.thermal import ThermalParameters

        self.thermal_params = (
            thermal_params if thermal_params is not None else ThermalParameters()
        )

    def current_cap(self) -> float:
        from repro.platform.thermal import thermal_safe_power

        active = len(self.chip.busy_cores()) + len(self.chip.testing_cores())
        if active == 0:
            return self.budget.guarded_cap
        per_core = thermal_safe_power(self.chip, self.thermal_params, active)
        return min(self.budget.guarded_cap, per_core * active)


def make_power_manager(
    policy: str,
    chip: Chip,
    meter: PowerMeter,
    budget: PowerBudget,
) -> PowerManager:
    """Factory used by configs: pid | naive | worst-case | none."""
    policies = {
        "pid": PIDPowerManager,
        "tsp": TSPPowerManager,
        "naive": NaiveTDPManager,
        "worst-case": WorstCaseTDPManager,
        "none": NoOpPowerManager,
    }
    try:
        cls = policies[policy]
    except KeyError:
        raise ValueError(
            f"unknown power policy {policy!r}; known: {sorted(policies)}"
        ) from None
    return cls(chip, meter, budget)

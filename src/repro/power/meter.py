"""Chip power metering.

The meter turns the instantaneous platform state (which cores are busy,
testing or gated, at which DVFS level, plus registered NoC transfer power)
into Watts, split into the channels the experiments report:

* ``workload`` — dynamic power of cores executing tasks;
* ``test``     — dynamic power of cores executing SBST routines;
* ``leakage``  — static power of all powered (non-gated) cores;
* ``noc``      — power of in-flight NoC transfers.

Idle cores are power gated and retain only a small gated-leakage fraction;
retired (faulty) cores are fully dark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.platform.chip import Chip
from repro.platform.core import Core, CoreState
from repro.platform.dvfs import VFLevel


@dataclass(frozen=True)
class PowerBreakdown:
    """Instantaneous chip power, per channel, in Watts."""

    workload: float
    test: float
    leakage: float
    noc: float

    @property
    def total(self) -> float:
        return self.workload + self.test + self.leakage + self.noc


class PowerMeter:
    """Computes instantaneous chip power from platform state."""

    def __init__(
        self,
        chip: Chip,
        gated_leak_fraction: float = 0.03,
        default_activity: float = 1.0,
    ) -> None:
        if not 0.0 <= gated_leak_fraction <= 1.0:
            raise ValueError("gated_leak_fraction must be in [0, 1]")
        self.chip = chip
        self.gated_leak_fraction = gated_leak_fraction
        self.default_activity = default_activity
        self._noc_power_w: float = 0.0
        # Activity/test factors set by the execution engine / test runner.
        self._core_activity: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # External load registration
    # ------------------------------------------------------------------
    def set_core_activity(self, core: Core, activity: Optional[float]) -> None:
        """Set (or clear with ``None``) the dynamic activity factor of a core.

        For workload this is the task's switching activity; for test it is
        the SBST routine's power factor (often > 1: tests maximise toggling).
        """
        if activity is None:
            self._core_activity.pop(core.core_id, None)
        else:
            if activity < 0:
                raise ValueError("activity must be >= 0")
            self._core_activity[core.core_id] = activity

    def add_noc_power(self, watts: float) -> None:
        self._noc_power_w += watts

    def remove_noc_power(self, watts: float) -> None:
        self._noc_power_w -= watts
        if self._noc_power_w < 0:
            # Guard against float drift; a genuinely negative load is a bug.
            if self._noc_power_w < -1e-6:
                raise ValueError("NoC power went negative")
            self._noc_power_w = 0.0

    @property
    def noc_power(self) -> float:
        return self._noc_power_w

    # ------------------------------------------------------------------
    # Power computation
    # ------------------------------------------------------------------
    def core_dynamic(self, core: Core, level: Optional[VFLevel] = None) -> float:
        """Dynamic power of ``core`` (0 unless busy or testing)."""
        if core.state not in (CoreState.BUSY, CoreState.TESTING):
            return 0.0
        lvl = level if level is not None else core.level
        activity = self._core_activity.get(core.core_id, self.default_activity)
        return self.chip.node.dynamic_power(lvl.vdd, lvl.f_mhz, activity)

    def core_leakage(self, core: Core, level: Optional[VFLevel] = None) -> float:
        """Leakage power of ``core`` given its gating state and variation."""
        if core.state is CoreState.FAULTY:
            return 0.0
        lvl = level if level is not None else core.level
        leak = self.chip.node.leakage_power(lvl.vdd) * core.leak_factor
        if core.state is CoreState.IDLE:
            return leak * self.gated_leak_fraction
        return leak

    def core_power(self, core: Core, level: Optional[VFLevel] = None) -> float:
        return self.core_dynamic(core, level) + self.core_leakage(core, level)

    def breakdown(self) -> PowerBreakdown:
        """Instantaneous chip power split into reporting channels."""
        workload = 0.0
        test = 0.0
        leakage = 0.0
        for core in self.chip:
            dyn = self.core_dynamic(core)
            if core.state is CoreState.BUSY:
                workload += dyn
            elif core.state is CoreState.TESTING:
                test += dyn
            leakage += self.core_leakage(core)
        return PowerBreakdown(
            workload=workload, test=test, leakage=leakage, noc=self._noc_power_w
        )

    def chip_power(self) -> float:
        return self.breakdown().total

    def headroom(self, budget_w: float) -> float:
        """Unused budget right now (may be negative when over budget)."""
        return budget_w - self.chip_power()

    def predicted_delta(self, core: Core, new_level: VFLevel) -> float:
        """Power change if ``core`` switched to ``new_level`` now."""
        return self.core_power(core, new_level) - self.core_power(core)

    def added_power_if_busy(
        self, core: Core, level: VFLevel, activity: float
    ) -> float:
        """Power added if the (currently gated) core started work at ``level``."""
        busy = self.chip.node.dynamic_power(
            level.vdd, level.f_mhz, activity
        ) + self.chip.node.leakage_power(level.vdd) * core.leak_factor
        return busy - self.core_power(core)

"""Chip power metering.

The meter turns the instantaneous platform state (which cores are busy,
testing or gated, at which DVFS level, plus registered NoC transfer power)
into Watts, split into the channels the experiments report:

* ``workload`` — dynamic power of cores executing tasks;
* ``test``     — dynamic power of cores executing SBST routines;
* ``leakage``  — static power of all powered (non-gated) cores;
* ``noc``      — power of in-flight NoC transfers.

Idle cores are power gated and retain only a small gated-leakage fraction;
retired (faulty) cores are fully dark.

**Fast path.** The meter subscribes to the chip's core-transition feed
and keeps a per-core cache of each core's dynamic and leakage
contribution (evaluated through the memoized technology model), plus
running per-channel sums that are refreshed lazily when some core changed
since the last query.  ``breakdown()``/``chip_power()``/``headroom()``
are therefore O(1) between transitions instead of an O(width·height)
rescan per query.  The refresh accumulates the cached per-core values in
ascending core-id order — exactly the order the original full scan used —
so the fast path is **bit-identical** to the scan, not an approximation.
The original scan survives as :meth:`scan_breakdown` and can be run as a
periodic audit against the incremental sums via ``verify_every_n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.platform.chip import Chip
from repro.platform.core import Core, CoreState
from repro.platform.dvfs import VFLevel
from repro.platform.techmodel import (
    cached_model_dynamic,
    cached_model_leakage,
    dyn_cache_for,
    leak_cache_for,
)


@dataclass(frozen=True)
class PowerBreakdown:
    """Instantaneous chip power, per channel, in Watts."""

    workload: float
    test: float
    leakage: float
    noc: float

    @property
    def total(self) -> float:
        return self.workload + self.test + self.leakage + self.noc


class MeterAuditError(RuntimeError):
    """Incremental sums diverged from the full-scan audit (a meter bug)."""


class PowerMeter:
    """Computes instantaneous chip power from platform state.

    ``verify_every_n`` is a debug knob: when positive, every n-th
    :meth:`breakdown` additionally runs the original full scan and raises
    :class:`MeterAuditError` if any channel deviates by more than
    ``audit_tolerance_w`` — an always-on self-check for long soak runs.
    """

    def __init__(
        self,
        chip: Chip,
        gated_leak_fraction: float = 0.03,
        default_activity: float = 1.0,
        verify_every_n: int = 0,
        audit_tolerance_w: float = 1e-9,
    ) -> None:
        if not 0.0 <= gated_leak_fraction <= 1.0:
            raise ValueError("gated_leak_fraction must be in [0, 1]")
        if verify_every_n < 0:
            raise ValueError("verify_every_n must be non-negative")
        self.chip = chip
        self.gated_leak_fraction = gated_leak_fraction
        self.default_activity = default_activity
        self.verify_every_n = verify_every_n
        self.audit_tolerance_w = audit_tolerance_w
        self.audits_passed = 0
        self._noc_power_w: float = 0.0
        # Activity/test factors set by the execution engine / test runner.
        self._core_activity: Dict[int, float] = {}
        # Incremental state: per-core channel contributions plus lazily
        # refreshed per-channel sums.
        n = len(chip.cores)
        self._dyn_w: List[float] = [0.0] * n
        self._leak_w: List[float] = [0.0] * n
        self._workload_w = 0.0
        self._test_w = 0.0
        self._leakage_w = 0.0
        self._sums_dirty = True
        # True whenever some per-core leakage value changed since the
        # leakage channel was last summed.  Most transitions (task start,
        # task end) leave every leakage value intact under a fixed-level
        # policy, and summing unchanged floats reproduces the previous
        # result bit for bit — so the 1-per-core re-sum can be skipped.
        self._leak_stale = True
        # Cores whose cached contributions are stale.  Transitions only
        # mark; the recompute happens on the next read, so the bursts of
        # back-to-back changes a task start produces (state, level,
        # activity) cost one refresh instead of three.
        self._dirty_cores: set = set()
        self._queries = 0
        # Direct references to the per-(model, type) memo dicts (see
        # repro.platform.techmodel): _refresh_core runs on every core
        # transition, so its cache hits must not pay a function call.
        # Indexed by ``Core.type_index`` — one dict pair per catalog type.
        node = chip.node
        model = chip.tech_model
        self._model = model
        max_level = self.chip.vf_table.max_level
        self._dyn_caches: List[Dict[tuple, float]] = []
        self._leak_caches: List[Dict[float, float]] = []
        for ctype in chip.core_types:
            cached_model_dynamic(
                model, node, ctype, max_level.vdd, max_level.f_mhz
            )
            cached_model_leakage(model, node, ctype, max_level.vdd)
            self._dyn_caches.append(dyn_cache_for(node, model, ctype))
            self._leak_caches.append(leak_cache_for(node, model, ctype))
        for core in chip:
            self._refresh_core(core)
        chip.add_transition_listener(self._on_core_transition)

    # ------------------------------------------------------------------
    # Incremental bookkeeping
    # ------------------------------------------------------------------
    def _on_core_transition(
        self, core: Core, old: CoreState, new: CoreState
    ) -> None:
        if new is not old and new in (CoreState.IDLE, CoreState.FAULTY):
            # A gated or retired core has no switching activity; dropping
            # the factor here guarantees a dead core can never contribute
            # dynamic power through a stale entry.
            self._core_activity.pop(core.core_id, None)
        self._dirty_cores.add(core.core_id)
        self._sums_dirty = True

    def _refresh_core(self, core: Core) -> None:
        """Re-derive one core's cached channel contributions.

        Reads the core's ``_state``/``_level``/``_leak_factor`` slots
        directly (skipping the observer properties) and hits the node memo
        dicts inline: this runs on every transition of every core.
        """
        cid = core.core_id
        state = core._state
        level = core._level
        tidx = core.type_index
        if state is CoreState.BUSY or state is CoreState.TESTING:
            activity = self._core_activity.get(cid, self.default_activity)
            key = (level.vdd, level.f_mhz, activity)
            dyn = self._dyn_caches[tidx].get(key)
            if dyn is None:
                dyn = cached_model_dynamic(
                    self._model,
                    self.chip.node,
                    core.core_type,
                    level.vdd,
                    level.f_mhz,
                    activity,
                )
            self._dyn_w[cid] = dyn
        else:
            self._dyn_w[cid] = 0.0
        if state is CoreState.FAULTY:
            leak = 0.0
        else:
            base = self._leak_caches[tidx].get(level.vdd)
            if base is None:
                base = cached_model_leakage(
                    self._model, self.chip.node, core.core_type, level.vdd
                )
            leak = base * core._leak_factor
            if state is CoreState.IDLE:
                leak = leak * self.gated_leak_fraction
        if leak != self._leak_w[cid]:
            self._leak_w[cid] = leak
            self._leak_stale = True

    def _refresh_sums(self) -> None:
        """Rebuild the channel sums from the per-core caches.

        Accumulation runs in ascending core-id order — the order of the
        original full scan — so the result is bit-identical to it.  Faulty
        cores hold a cached 0.0, matching the scan's explicit ``+= 0.0``.
        """
        if self._dirty_cores:
            self._flush_dirty()
        # ``sum`` adds left-to-right from zero exactly like the explicit
        # accumulation loop did, so the floats are unchanged.
        dyn = self._dyn_w
        chip = self.chip
        self._workload_w = sum(
            map(dyn.__getitem__, chip.sorted_state_ids(CoreState.BUSY))
        )
        self._test_w = sum(
            map(dyn.__getitem__, chip.sorted_state_ids(CoreState.TESTING))
        )
        if self._leak_stale:
            # Re-summing unchanged values would reproduce the previous
            # result exactly, so the leakage channel only pays the all-core
            # sum when some per-core leakage actually moved.
            self._leakage_w = sum(self._leak_w)
            self._leak_stale = False
        self._sums_dirty = False

    # ------------------------------------------------------------------
    # External load registration
    # ------------------------------------------------------------------
    def set_core_activity(self, core: Core, activity: Optional[float]) -> None:
        """Set (or clear with ``None``) the dynamic activity factor of a core.

        For workload this is the task's switching activity; for test it is
        the SBST routine's power factor (often > 1: tests maximise toggling).
        """
        if activity is None:
            self._core_activity.pop(core.core_id, None)
        else:
            if activity < 0:
                raise ValueError("activity must be >= 0")
            self._core_activity[core.core_id] = activity
        self._dirty_cores.add(core.core_id)
        self._sums_dirty = True

    def add_noc_power(self, watts: float) -> None:
        self._noc_power_w += watts

    def remove_noc_power(self, watts: float) -> None:
        self._noc_power_w -= watts
        if self._noc_power_w < 0:
            # Guard against float drift; a genuinely negative load is a bug.
            if self._noc_power_w < -1e-6:
                raise ValueError("NoC power went negative")
            self._noc_power_w = 0.0

    @property
    def noc_power(self) -> float:
        return self._noc_power_w

    def activity_of(self, core_id: int) -> Optional[float]:
        """The registered activity factor of a core (None when unset).

        An unset factor means a busy/testing core draws
        ``default_activity``; gated and retired cores have no factor by
        construction.  Read-only view used by the invariant checker's
        replay snapshots.
        """
        return self._core_activity.get(core_id)

    # ------------------------------------------------------------------
    # Power computation
    # ------------------------------------------------------------------
    def _flush_dirty(self) -> None:
        """Recompute every stale per-core contribution."""
        cores = self.chip.cores
        for cid in self._dirty_cores:
            self._refresh_core(cores[cid])
        self._dirty_cores.clear()

    def core_dynamic(self, core: Core, level: Optional[VFLevel] = None) -> float:
        """Dynamic power of ``core`` (0 unless busy or testing)."""
        if level is None:
            cid = core.core_id
            if cid in self._dirty_cores:
                self._refresh_core(core)
                self._dirty_cores.discard(cid)
            return self._dyn_w[cid]
        if core.state not in (CoreState.BUSY, CoreState.TESTING):
            return 0.0
        activity = self._core_activity.get(core.core_id, self.default_activity)
        return cached_model_dynamic(
            self._model,
            self.chip.node,
            core.core_type,
            level.vdd,
            level.f_mhz,
            activity,
        )

    def core_leakage(self, core: Core, level: Optional[VFLevel] = None) -> float:
        """Leakage power of ``core`` given its gating state and variation."""
        if level is None:
            cid = core.core_id
            if cid in self._dirty_cores:
                self._refresh_core(core)
                self._dirty_cores.discard(cid)
            return self._leak_w[cid]
        if core.state is CoreState.FAULTY:
            return 0.0
        leak = (
            cached_model_leakage(
                self._model, self.chip.node, core.core_type, level.vdd
            )
            * core.leak_factor
        )
        if core.state is CoreState.IDLE:
            return leak * self.gated_leak_fraction
        return leak

    def core_power(self, core: Core, level: Optional[VFLevel] = None) -> float:
        if level is None:
            cid = core.core_id
            if cid in self._dirty_cores:
                self._refresh_core(core)
                self._dirty_cores.discard(cid)
            return self._dyn_w[cid] + self._leak_w[cid]
        return self.core_dynamic(core, level) + self.core_leakage(core, level)

    def breakdown(self) -> PowerBreakdown:
        """Instantaneous chip power split into reporting channels."""
        if self._sums_dirty:
            self._refresh_sums()
        result = PowerBreakdown(
            workload=self._workload_w,
            test=self._test_w,
            leakage=self._leakage_w,
            noc=self._noc_power_w,
        )
        if self.verify_every_n:
            self._queries += 1
            if self._queries % self.verify_every_n == 0:
                self._audit(result)
        return result

    def scan_breakdown(self) -> PowerBreakdown:
        """Reference full scan over all cores (the pre-fast-path algorithm).

        Kept as the audit path: it re-derives every channel from live core
        state through the unmemoized analytic model.
        """
        workload = 0.0
        test = 0.0
        leakage = 0.0
        node = self.chip.node
        model = self._model
        for core in self.chip:
            if core.state in (CoreState.BUSY, CoreState.TESTING):
                activity = self._core_activity.get(
                    core.core_id, self.default_activity
                )
                dyn = model.dynamic_power(
                    node, core.core_type, core.level.vdd, core.level.f_mhz, activity
                )
                if core.state is CoreState.BUSY:
                    workload += dyn
                else:
                    test += dyn
            if core.state is CoreState.FAULTY:
                leak = 0.0
            else:
                leak = (
                    model.leakage_power(node, core.core_type, core.level.vdd)
                    * core.leak_factor
                )
                if core.state is CoreState.IDLE:
                    leak = leak * self.gated_leak_fraction
            leakage += leak
        return PowerBreakdown(
            workload=workload, test=test, leakage=leakage, noc=self._noc_power_w
        )

    def _audit(self, incremental: PowerBreakdown) -> None:
        reference = self.scan_breakdown()
        for channel in ("workload", "test", "leakage", "noc"):
            got = getattr(incremental, channel)
            want = getattr(reference, channel)
            if abs(got - want) > self.audit_tolerance_w:
                raise MeterAuditError(
                    f"incremental {channel} power {got!r} diverged from "
                    f"full-scan value {want!r} after {self._queries} queries"
                )
        self.audits_passed += 1

    def chip_power(self) -> float:
        """Total chip power; same additions as ``breakdown().total``.

        When auditing is enabled the query goes through :meth:`breakdown`
        so it counts toward the ``verify_every_n`` cadence.
        """
        if self.verify_every_n:
            return self.breakdown().total
        if self._sums_dirty:
            self._refresh_sums()
        return self._workload_w + self._test_w + self._leakage_w + self._noc_power_w

    def headroom(self, budget_w: float) -> float:
        """Unused budget right now (may be negative when over budget)."""
        return budget_w - self.chip_power()

    def predicted_delta(self, core: Core, new_level: VFLevel) -> float:
        """Power change if ``core`` switched to ``new_level`` now."""
        return self.core_power(core, new_level) - self.core_power(core)

    def added_power_if_busy(
        self, core: Core, level: VFLevel, activity: float
    ) -> float:
        """Power added if the (currently gated) core started work at ``level``."""
        node = self.chip.node
        busy = (
            cached_model_dynamic(
                self._model, node, core.core_type, level.vdd, level.f_mhz, activity
            )
            + cached_model_leakage(
                self._model, node, core.core_type, level.vdd
            )
            * core.leak_factor
        )
        return busy - self.core_power(core)

"""Power substrate: metering, TDP budget, PID budgeting, DVFS policies."""

from repro.power.budget import BudgetAudit, PowerBudget
from repro.power.manager import (
    NaiveTDPManager,
    NoOpPowerManager,
    PIDPowerManager,
    PowerManager,
    TSPPowerManager,
    WorstCaseTDPManager,
    make_power_manager,
)
from repro.power.meter import PowerBreakdown, PowerMeter
from repro.power.pid import PIDController, PIDGains

__all__ = [
    "BudgetAudit",
    "NaiveTDPManager",
    "NoOpPowerManager",
    "PIDController",
    "PIDGains",
    "PIDPowerManager",
    "PowerBreakdown",
    "PowerBudget",
    "PowerManager",
    "PowerMeter",
    "TSPPowerManager",
    "WorstCaseTDPManager",
    "make_power_manager",
]

"""Discrete PID controller (the ICCD'14 dynamic power budgeting substrate).

The controller regulates measured chip power towards the TDP set-point.
Its output is interpreted by :class:`repro.power.manager.PIDPowerManager`
as the *admissible power target* for the next control epoch: when the
workload ramps up the integral term backs the target off smoothly instead
of oscillating between full-speed and panic-throttle like the naive policy.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PIDGains:
    """Controller gains. Defaults tuned for Watt-scale errors, 100 µs epochs."""

    kp: float = 0.6
    ki: float = 0.15
    kd: float = 0.05

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ValueError("PID gains must be non-negative")


class PIDController:
    """Textbook discrete PID with anti-windup clamping on the integral."""

    def __init__(
        self,
        set_point: float,
        gains: PIDGains = PIDGains(),
        integral_limit: float = 50.0,
    ) -> None:
        if integral_limit <= 0:
            raise ValueError("integral_limit must be positive")
        self.set_point = set_point
        self.gains = gains
        self.integral_limit = integral_limit
        self._integral = 0.0
        self._last_error: float = 0.0
        self._primed = False

    def reset(self) -> None:
        self._integral = 0.0
        self._last_error = 0.0
        self._primed = False

    @property
    def integral(self) -> float:
        """Clamped integral term (read-only; for audit/journal output)."""
        return self._integral

    @property
    def last_error(self) -> float:
        """Error of the most recent :meth:`update` call."""
        return self._last_error

    def update(self, measured: float, dt: float) -> float:
        """Advance the controller; returns the control signal (Watts).

        Positive output means headroom exists (actuator may speed cores
        up); negative output means the budget is being violated (actuator
        must slow cores down).
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        error = self.set_point - measured
        self._integral += error * dt
        self._integral = max(
            -self.integral_limit, min(self.integral_limit, self._integral)
        )
        derivative = 0.0 if not self._primed else (error - self._last_error) / dt
        self._last_error = error
        self._primed = True
        g = self.gains
        return g.kp * error + g.ki * self._integral + g.kd * derivative

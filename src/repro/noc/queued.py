"""Queued (store-and-forward) NoC model — the fidelity cross-check.

The default :class:`~repro.noc.model.NocModel` is analytic: contention is
a latency penalty proportional to current link load.  This module offers
a more detailed alternative with explicit *temporal* link contention:
every unidirectional link keeps the absolute time it becomes free, and a
message reserves its links hop by hop (store-and-forward at message
granularity):

``start(link) = max(arrival + router_delay, link_free(link))``
``finish(link) = start + flits / bandwidth``

Messages queue *behind each other in time* instead of merely slowing each
other down, which is the first-order effect a wormhole NoC exhibits under
congestion.  Energy accounting is identical to the analytic model.

The point of carrying both models is experiment **A8**: running the same
workload under both and showing the scheduling/penalty results are
insensitive to the NoC abstraction — the justification for the analytic
substitution claimed in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict

from repro.noc.model import NocParameters, TransferEstimate
from repro.noc.routing import Link, xy_links
from repro.noc.topology import Mesh, Position


class QueuedNocModel:
    """Mesh NoC with per-link temporal reservations (store-and-forward)."""

    def __init__(self, mesh: Mesh, params: NocParameters = NocParameters()) -> None:
        self.mesh = mesh
        self.params = params
        self._link_free: Dict[Link, float] = {}
        self.total_flits: float = 0.0
        self.total_energy_uj: float = 0.0
        self.total_flit_hops: float = 0.0
        self.total_queue_wait_us: float = 0.0

    # ------------------------------------------------------------------
    def link_free_at(self, link: Link) -> float:
        return self._link_free.get(link, 0.0)

    def _walk(
        self, src: Position, dst: Position, flits: float, now: float, commit: bool
    ) -> TransferEstimate:
        if flits < 0:
            raise ValueError("flit volume must be non-negative")
        if now < 0:
            raise ValueError("now must be non-negative")
        links = xy_links(self.mesh, src, dst)
        hops = len(links)
        if flits == 0 or hops == 0:
            return TransferEstimate(0.0, 0.0, hops, 0.0)
        serial = flits / self.params.bandwidth_flits_per_us
        arrival = now
        max_wait = 0.0
        for link in links:
            ready = arrival + self.params.router_delay_us
            start = max(ready, self.link_free_at(link))
            max_wait = max(max_wait, start - ready)
            finish = start + serial
            if commit:
                self._link_free[link] = finish
            arrival = finish
        energy_pj = flits * (
            hops * self.params.e_link_pj + (hops + 1) * self.params.e_router_pj
        )
        return TransferEstimate(
            latency_us=arrival - now,
            energy_uj=energy_pj * 1e-6,
            hops=hops,
            max_link_load=max_wait,
        )

    # ------------------------------------------------------------------
    # NocModel-compatible interface
    # ------------------------------------------------------------------
    def estimate(
        self, src: Position, dst: Position, flits: float, now: float = 0.0
    ) -> TransferEstimate:
        return self._walk(src, dst, flits, now, commit=False)

    def begin_transfer(
        self, src: Position, dst: Position, flits: float, now: float = 0.0
    ) -> TransferEstimate:
        result = self._walk(src, dst, flits, now, commit=True)
        self.total_flits += flits
        self.total_flit_hops += flits * result.hops
        self.total_energy_uj += result.energy_uj
        self.total_queue_wait_us += result.max_link_load
        return result

    def end_transfer(self, src: Position, dst: Position, flits: float) -> None:
        """No-op: reservations expire with simulated time."""

    def average_hops(self) -> float:
        if self.total_flits == 0:
            return 0.0
        return self.total_flit_hops / self.total_flits

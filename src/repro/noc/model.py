"""Analytic NoC latency/energy model with link-load accounting.

The scheduling and mapping claims of the paper depend on communication
*trends* — contiguous mappings communicate over fewer hops, dispersed ones
congest shared links — not on per-flit cycle accuracy, so we use the
standard analytic model:

* latency of transferring ``volume`` flits over ``h`` hops:
  ``h * router_delay_us + volume / bandwidth * (1 + congestion_penalty)``
  where the congestion penalty grows with the current load of the busiest
  traversed link;
* energy: ``volume * (h * e_link_pj + (h + 1) * e_router_pj)`` pico-joules.

Link loads are tracked as flits currently in flight per unidirectional
link, so concurrent transfers across shared links slow each other down —
enough fidelity for the mapper comparisons (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.noc.routing import Link, link_id, xy_link_ids
from repro.noc.topology import Mesh, Position


@dataclass(frozen=True)
class NocParameters:
    """Electrical/timing parameters of the NoC."""

    router_delay_us: float = 0.005   # per-hop router+link traversal
    bandwidth_flits_per_us: float = 1000.0
    e_link_pj: float = 2.0           # per flit per link
    e_router_pj: float = 3.0         # per flit per router
    congestion_alpha: float = 1.0    # penalty slope per unit link load

    def __post_init__(self) -> None:
        if self.bandwidth_flits_per_us <= 0:
            raise ValueError("bandwidth must be positive")
        if self.router_delay_us < 0 or self.congestion_alpha < 0:
            raise ValueError("delays and penalties must be non-negative")


@dataclass(slots=True)
class TransferEstimate:
    """Result of admitting one transfer into the NoC model.

    Treat as immutable; a plain slots dataclass because one is built per
    transfer and the frozen-dataclass ``__setattr__`` guard makes
    construction measurably slower on that path.
    """

    latency_us: float
    energy_uj: float
    hops: int
    max_link_load: float


class NocModel:
    """Mesh NoC with XY routing and analytic contention."""

    def __init__(self, mesh: Mesh, params: NocParameters = NocParameters()) -> None:
        self.mesh = mesh
        self.params = params
        # Keyed by the links' small-int identities (see routing.link_id):
        # int keys hash substantially faster than nested position tuples,
        # and this table is touched several times per transfer.
        self._link_load: Dict[int, float] = {}
        self.total_flits: float = 0.0
        self.total_energy_uj: float = 0.0
        self.total_flit_hops: float = 0.0

    # ------------------------------------------------------------------
    # Load accounting
    # ------------------------------------------------------------------
    def link_load(self, link: Link) -> float:
        return self._link_load.get(link_id(self.mesh, link), 0.0)

    def link_loads(self) -> Dict[int, float]:
        """Current per-link flit loads keyed by link id (a copy).

        Only links with in-flight transfers appear; all loads are
        non-negative by construction (``release`` refuses to go below
        zero), which is what the NoC sanity invariant checks.
        """
        return dict(self._link_load)

    def occupy(self, link_ids: List[int], flits: float) -> None:
        loads = self._link_load
        get = loads.get
        for lid in link_ids:
            loads[lid] = get(lid, 0.0) + flits

    def release(self, link_ids: List[int], flits: float) -> None:
        loads = self._link_load
        get = loads.get
        for lid in link_ids:
            remaining = get(lid, 0.0) - flits
            if remaining < -1e-9:
                raise ValueError(f"link {lid} released below zero")
            if remaining <= 1e-9:
                loads.pop(lid, None)
            else:
                loads[lid] = remaining

    def busiest_load(self, link_ids: List[int]) -> float:
        if not link_ids:
            return 0.0
        get = self._link_load.get
        return max([get(lid, 0.0) for lid in link_ids])

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def estimate(
        self, src: Position, dst: Position, flits: float, now: float = 0.0
    ) -> TransferEstimate:
        """Latency/energy of a transfer given *current* link loads.

        ``now`` is accepted for interface parity with the queued model and
        ignored: the analytic model's state is load, not time.  Does not
        change model state; use :meth:`begin_transfer` /
        :meth:`end_transfer` around the transfer's lifetime.
        """
        if flits < 0:
            raise ValueError("flit volume must be non-negative")
        return self._estimate_ids(xy_link_ids(self.mesh, src, dst), flits)

    def _estimate_ids(self, link_ids, flits: float) -> TransferEstimate:
        """:meth:`estimate` with the route already resolved to link ids."""
        hops = len(link_ids)
        if flits == 0 or hops == 0:
            return TransferEstimate(0.0, 0.0, hops, 0.0)
        params = self.params
        load = self.busiest_load(link_ids)
        normalized = load / params.bandwidth_flits_per_us
        serial = flits / params.bandwidth_flits_per_us
        latency = (
            hops * params.router_delay_us
            + serial * (1.0 + params.congestion_alpha * normalized)
        )
        energy_pj = flits * (
            hops * params.e_link_pj + (hops + 1) * params.e_router_pj
        )
        return TransferEstimate(latency, energy_pj * 1e-6, hops, load)

    def begin_transfer(
        self, src: Position, dst: Position, flits: float, now: float = 0.0
    ) -> TransferEstimate:
        """Admit a transfer: account its load and return its estimate."""
        if flits < 0:
            raise ValueError("flit volume must be non-negative")
        link_ids = xy_link_ids(self.mesh, src, dst)
        hops = len(link_ids)
        loads = self._link_load
        get = loads.get
        if flits == 0 or hops == 0:
            estimate = TransferEstimate(0.0, 0.0, hops, 0.0)
        else:
            # Fused busiest-load scan + occupancy: one table read per link
            # instead of two.  Floats are untouched: ``max`` of the same
            # loads, additions in the same link order.
            params = self.params
            current = [get(lid, 0.0) for lid in link_ids]
            load = max(current)
            normalized = load / params.bandwidth_flits_per_us
            serial = flits / params.bandwidth_flits_per_us
            latency = (
                hops * params.router_delay_us
                + serial * (1.0 + params.congestion_alpha * normalized)
            )
            energy_pj = flits * (
                hops * params.e_link_pj + (hops + 1) * params.e_router_pj
            )
            estimate = TransferEstimate(latency, energy_pj * 1e-6, hops, load)
            for lid, seen in zip(link_ids, current):
                loads[lid] = seen + flits
            self.total_flits += flits
            self.total_flit_hops += flits * hops
            self.total_energy_uj += estimate.energy_uj
            return estimate
        self.occupy(link_ids, flits)
        self.total_flits += flits
        self.total_flit_hops += flits * estimate.hops
        self.total_energy_uj += estimate.energy_uj
        return estimate

    def end_transfer(self, src: Position, dst: Position, flits: float) -> None:
        """Retire a transfer admitted with :meth:`begin_transfer`."""
        self.release(xy_link_ids(self.mesh, src, dst), flits)

    def average_hops(self) -> float:
        """Mean hop count per flit transferred so far."""
        if self.total_flits == 0:
            return 0.0
        return self.total_flit_hops / self.total_flits

"""NoC substrate: mesh topology, XY routing, analytic latency/energy model."""

from repro.noc.model import NocModel, NocParameters, TransferEstimate
from repro.noc.queued import QueuedNocModel
from repro.noc.routing import Link, xy_links, xy_path
from repro.noc.topology import Mesh, Position

__all__ = [
    "Link",
    "Mesh",
    "NocModel",
    "NocParameters",
    "QueuedNocModel",
    "Position",
    "TransferEstimate",
    "xy_links",
    "xy_path",
]

"""2-D mesh topology used by the NoC substrate.

Positions are ``(x, y)`` with ``0 <= x < width`` and ``0 <= y < height``;
node ids are row-major (``id = y * width + x``) and consistent with
:class:`repro.platform.chip.Chip` core ids.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

Position = Tuple[int, int]


class RouteCache:
    """Per-mesh memo of XY routes, filled lazily by :mod:`repro.noc.routing`.

    Routes on a mesh are static (deterministic XY), so once a
    (source, destination) pair has been walked its node path and link
    sequence never change.  Both the analytic and the queued NoC models
    route through the same :class:`Mesh` instance and therefore share
    this table.  Entries are stored as tuples: callers may hold on to
    them without defensive copies.
    """

    __slots__ = ("paths", "links", "link_ids")

    def __init__(self) -> None:
        self.paths: Dict[Tuple[Position, Position], Tuple[Position, ...]] = {}
        self.links: Dict[
            Tuple[Position, Position],
            Tuple[Tuple[Position, Position], ...],
        ] = {}
        self.link_ids: Dict[Tuple[Position, Position], Tuple[int, ...]] = {}


#: Route tables depend only on the mesh geometry, so every Mesh of the
#: same size shares one cache — experiment sweeps build a fresh Mesh per
#: run and would otherwise re-walk every route from cold each time.
_SHARED_ROUTE_CACHES: Dict[Tuple[int, int], RouteCache] = {}


class Mesh:
    """A ``width x height`` 2-D mesh."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"invalid mesh {width}x{height}")
        self.width = width
        self.height = height
        cache = _SHARED_ROUTE_CACHES.get((width, height))
        if cache is None:
            cache = _SHARED_ROUTE_CACHES.setdefault((width, height), RouteCache())
        self.route_cache = cache

    def __len__(self) -> int:
        return self.width * self.height

    def contains(self, pos: Position) -> bool:
        x, y = pos
        return 0 <= x < self.width and 0 <= y < self.height

    def node_id(self, pos: Position) -> int:
        if not self.contains(pos):
            raise IndexError(f"{pos} outside {self.width}x{self.height} mesh")
        x, y = pos
        return y * self.width + x

    def position(self, node_id: int) -> Position:
        if not 0 <= node_id < len(self):
            raise IndexError(f"node id {node_id} out of range")
        return (node_id % self.width, node_id // self.width)

    def positions(self) -> Iterator[Position]:
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    def neighbors(self, pos: Position) -> List[Position]:
        x, y = pos
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            cand = (x + dx, y + dy)
            if self.contains(cand):
                out.append(cand)
        return out

    @staticmethod
    def manhattan(a: Position, b: Position) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def hop_count(self, a: Position, b: Position) -> int:
        """Hops an XY-routed packet traverses between ``a`` and ``b``."""
        if not (self.contains(a) and self.contains(b)):
            raise IndexError(f"{a} or {b} outside mesh")
        return self.manhattan(a, b)

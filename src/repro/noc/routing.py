"""Deterministic dimension-ordered (XY) routing.

XY routing first corrects the X coordinate, then the Y coordinate.  It is
deadlock-free on a mesh and is what the NoC manycore platforms this paper
targets (and the group's companion NoC papers) use.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.noc.topology import Mesh, Position

#: A unidirectional link between two adjacent mesh positions.
Link = Tuple[Position, Position]


def xy_path(mesh: Mesh, src: Position, dst: Position) -> List[Position]:
    """Sequence of positions an XY-routed packet visits, inclusive."""
    if not (mesh.contains(src) and mesh.contains(dst)):
        raise IndexError(f"{src} or {dst} outside mesh")
    path = [src]
    x, y = src
    dx = 1 if dst[0] > x else -1
    while x != dst[0]:
        x += dx
        path.append((x, y))
    dy = 1 if dst[1] > y else -1
    while y != dst[1]:
        y += dy
        path.append((x, y))
    return path


def xy_links(mesh: Mesh, src: Position, dst: Position) -> List[Link]:
    """Unidirectional links traversed by an XY-routed packet."""
    path = xy_path(mesh, src, dst)
    return list(zip(path, path[1:]))

"""Deterministic dimension-ordered (XY) routing.

XY routing first corrects the X coordinate, then the Y coordinate.  It is
deadlock-free on a mesh and is what the NoC manycore platforms this paper
targets (and the group's companion NoC papers) use.

Routes are static, so both :func:`xy_path` and :func:`xy_links` memoize
their walks in the mesh's :class:`~repro.noc.topology.RouteCache`; the
analytic and queued NoC models share one mesh and hence one table.
:func:`xy_links` returns the cached tuple directly — treat it as
immutable.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.noc.topology import Mesh, Position

#: A unidirectional link between two adjacent mesh positions.
Link = Tuple[Position, Position]


def _walk_xy(mesh: Mesh, src: Position, dst: Position) -> Tuple[Position, ...]:
    if not (mesh.contains(src) and mesh.contains(dst)):
        raise IndexError(f"{src} or {dst} outside mesh")
    path = [src]
    x, y = src
    dx = 1 if dst[0] > x else -1
    while x != dst[0]:
        x += dx
        path.append((x, y))
    dy = 1 if dst[1] > y else -1
    while y != dst[1]:
        y += dy
        path.append((x, y))
    return tuple(path)


def _cached_path(mesh: Mesh, src: Position, dst: Position) -> Tuple[Position, ...]:
    cache = mesh.route_cache.paths
    key = (src, dst)
    path = cache.get(key)
    if path is None:
        path = _walk_xy(mesh, src, dst)
        cache[key] = path
    return path


def xy_path(mesh: Mesh, src: Position, dst: Position) -> List[Position]:
    """Sequence of positions an XY-routed packet visits, inclusive."""
    return list(_cached_path(mesh, src, dst))


def xy_links(mesh: Mesh, src: Position, dst: Position) -> Sequence[Link]:
    """Unidirectional links traversed by an XY-routed packet.

    Returns the mesh's cached, immutable link tuple.
    """
    cache = mesh.route_cache.links
    key = (src, dst)
    links = cache.get(key)
    if links is None:
        path = _cached_path(mesh, src, dst)
        links = tuple(zip(path, path[1:]))
        cache[key] = links
    return links


def link_id(mesh: Mesh, link: Link) -> int:
    """Small-integer identity of a unidirectional link.

    ``endpoint-node-id x mesh-size + endpoint-node-id`` is a bijection on
    links, so load tables may key by it instead of the nested position
    tuples (int dict keys hash much faster on the per-transfer path).
    """
    return mesh.node_id(link[0]) * len(mesh) + mesh.node_id(link[1])


def xy_link_ids(mesh: Mesh, src: Position, dst: Position) -> Sequence[int]:
    """:func:`xy_links` as cached link-id tuples (same order)."""
    cache = mesh.route_cache.link_ids
    key = (src, dst)
    ids = cache.get(key)
    if ids is None:
        ids = tuple(link_id(mesh, link) for link in xy_links(mesh, src, dst))
        cache[key] = ids
    return ids

"""Crash-tolerant execution of campaign points.

``repro.experiments.run_many`` is the right tool for a quick sweep, but
it fails as a batch substrate: one worker exception aborts the whole
map, a hung run hangs the sweep, and a dead worker process kills the
pool.  :class:`RobustExecutor` is the supervisor a thousand-run
campaign needs:

* every point failure is caught, attributed to the point's config
  digest and retried with bounded exponential backoff;
* after ``RetryPolicy.max_attempts`` failures the point is
  **quarantined** — logged and skipped — instead of aborting the
  campaign;
* per-run timeouts are enforced inside the worker with ``SIGALRM``
  (plus a supervisor-side wedge deadline as a backstop), so a
  non-terminating simulation cannot wedge the campaign;
* a hard worker death (``BrokenProcessPool``) rebuilds the pool and
  requeues the in-flight points — conservatively charging each an
  attempt, so a reproducibly-crashing point still quarantines;
* completed results are delivered to the caller *as they finish* (the
  runner checkpoints each one), so no failure mode loses finished work.

The executor is deliberately policy-free about results: it hands each
completed record to ``on_record`` and failure attempts to
``on_failure`` and keeps no result state of its own.
"""

from __future__ import annotations

import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignPoint
from repro.campaign.store import record_from_result
from repro.core.system import run_system
from repro.telemetry import worker_telemetry
from repro.telemetry.registry import NULL_TELEMETRY


class CampaignInterrupted(RuntimeError):
    """Deterministic mid-campaign stop (the crash-simulation hook)."""

    def __init__(self, completed: int) -> None:
        super().__init__(
            f"campaign interrupted after {completed} new result(s); "
            f"checkpoint retained, resume to continue"
        )
        self.completed = completed


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff between attempts of one point."""

    max_attempts: int = 3
    backoff_s: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_s: float = 8.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay_s(self, failures: int) -> float:
        """Delay before the retry following the ``failures``-th failure."""
        if self.backoff_s <= 0:
            return 0.0
        return min(
            self.backoff_s * self.backoff_factor ** max(failures - 1, 0),
            self.max_backoff_s,
        )


@dataclass
class PointFailure:
    """A quarantined point and everything known about why it failed."""

    digest: str
    seed: int
    cell: Tuple[Tuple[str, object], ...]
    attempts: int
    errors: List[str] = field(default_factory=list)


@dataclass
class ExecutionStats:
    """What one executor invocation did."""

    completed: int = 0
    retried: int = 0
    quarantined: List[PointFailure] = field(default_factory=list)


class _PointTimeout(Exception):
    """Raised inside a worker when the per-run alarm fires."""


def _alarm_handler(signum, frame):  # pragma: no cover - fires in workers
    raise _PointTimeout()


def _run_point(point: CampaignPoint, timeout_s: Optional[float]):
    """Run one point, enforcing the timeout with ``SIGALRM`` if available."""
    use_alarm = bool(timeout_s) and hasattr(signal, "SIGALRM")
    if not use_alarm:
        return run_system(point.config)
    old = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return run_system(point.config)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)


def default_worker(payload):
    """Module-level worker (picklable): never raises, always attributes.

    ``payload`` is ``(point, timeout_s)`` or, when result caching is on,
    ``(point, timeout_s, cache_plan)`` — plus a trailing
    :class:`~repro.telemetry.spans.SpanContext` when the campaign
    collects telemetry, in which case the ok-outcome grows to ``("ok",
    digest, record, entry_or_None, telemetry_blob)``.  Without
    telemetry the legacy forms ``("ok", digest, record[, entry])`` and
    ``("err", digest, error)`` are returned unchanged, so custom
    workers and old tests keep working.

    With a :class:`repro.cache.CachePlan` the worker deposits the
    pickled result as a content-addressed blob (atomic, collision-free
    across workers) and hands the pending index entry back for the
    supervisor to adopt — workers never write the cache index.  A
    failed deposit degrades to an uncached success: memoization must
    never fail a run that computed fine.
    """
    point, timeout_s = payload[0], payload[1]
    cache_plan = payload[2] if len(payload) > 2 else None
    ctx = payload[3] if len(payload) > 3 else None
    try:
        with worker_telemetry(
            ctx, point.digest[:12], "campaign.point"
        ) as scope:
            result = _run_point(point, timeout_s)
        record = record_from_result(point, result)
        entry = None
        if cache_plan is not None:
            from repro.cache import store_result_blob

            try:
                entry = store_result_blob(cache_plan, point.config, result)
            except Exception:
                entry = None
        if scope is not None:
            return ("ok", point.digest, record, entry, scope.blob())
        if cache_plan is not None:
            return ("ok", point.digest, record, entry)
        return ("ok", point.digest, record)
    except _PointTimeout:
        return (
            "err",
            point.digest,
            f"Timeout: run exceeded {timeout_s:g}s",
        )
    except Exception as exc:
        return ("err", point.digest, f"{type(exc).__name__}: {exc}")


#: callback signatures
OnRecord = Callable[[CampaignPoint, Dict[str, object]], None]
OnFailure = Callable[[CampaignPoint, int, str, bool], None]
OnCacheEntry = Callable[[CampaignPoint, Dict[str, object]], None]


@dataclass
class _Pending:
    point: CampaignPoint
    failures: int = 0          # failed attempts so far
    errors: List[str] = field(default_factory=list)
    eligible_at: float = 0.0   # monotonic time the next attempt may start


class RobustExecutor:
    """Supervised, resumable execution of a set of campaign points."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        timeout_s: Optional[float] = None,
        worker: Callable = default_worker,
        cache_plan=None,
        telemetry=None,
        telemetry_ctx=None,
    ) -> None:
        if jobs is not None and jobs < 0:
            raise ValueError(f"jobs must be non-negative, got {jobs}")
        self.jobs = jobs or 0
        self.retry = retry or RetryPolicy()
        self.timeout_s = timeout_s
        self.worker = worker
        #: Optional :class:`repro.cache.CachePlan`.  When set, workers
        #: receive it as a third payload element and deposit result
        #: blobs; custom workers that unpack two elements should only be
        #: combined with ``cache_plan=None`` (the default).
        self.cache_plan = cache_plan
        #: Supervisor-side registry for the executor's own machinery
        #: metrics (``exec.*``: retries, quarantines, queue depth) — a
        #: no-op sink by default.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Optional :class:`~repro.telemetry.spans.SpanContext`.  When
        #: set, payloads grow a fourth element and telemetry-aware
        #: workers return a blob; leave ``None`` for custom workers
        #: that unpack fixed-size payloads.
        self.telemetry_ctx = telemetry_ctx
        self._on_cache_entry: Optional[OnCacheEntry] = None
        self._on_telemetry = None

    def _payload(self, point: CampaignPoint):
        if self.telemetry_ctx is not None:
            return (point, self.timeout_s, self.cache_plan, self.telemetry_ctx)
        if self.cache_plan is None:
            return (point, self.timeout_s)
        return (point, self.timeout_s, self.cache_plan)

    # ------------------------------------------------------------------
    def run(
        self,
        points: Sequence[CampaignPoint],
        on_record: OnRecord,
        on_failure: Optional[OnFailure] = None,
        interrupt_after: Optional[int] = None,
        on_cache_entry: Optional[OnCacheEntry] = None,
        on_telemetry=None,
    ) -> ExecutionStats:
        """Run every point; deliver records/failures through callbacks.

        ``interrupt_after`` raises :class:`CampaignInterrupted` once that
        many *new* results have been delivered — the deterministic
        crash-simulation hook used by the resume-identity tests and the
        CI smoke job.  Results delivered before the interrupt are
        already checkpointed by the callback; nothing is lost.

        ``on_cache_entry`` receives ``(point, entry_dict)`` for every
        completed point whose worker deposited a cache blob (requires
        ``cache_plan``); the supervisor-side callback owns the index.

        ``on_telemetry`` receives the telemetry blob of every completed
        point (requires ``telemetry_ctx``) for the supervisor to merge.
        """
        stats = ExecutionStats()
        if not points:
            return stats
        self._on_cache_entry = on_cache_entry
        self._on_telemetry = on_telemetry
        if self.jobs <= 1 or len(points) == 1:
            self._run_serial(
                points, stats, on_record, on_failure, interrupt_after
            )
        else:
            self._run_pool(
                points, stats, on_record, on_failure, interrupt_after
            )
        return stats

    # ------------------------------------------------------------------
    # Shared failure/success bookkeeping
    # ------------------------------------------------------------------
    def _complete(
        self,
        entry: _Pending,
        outcome: Tuple,
        stats: ExecutionStats,
        on_record: OnRecord,
        interrupt_after: Optional[int],
    ) -> None:
        # Adopt the worker's cache deposit (if any) before checkpointing:
        # an interrupt raised below must not orphan a blob that the next
        # overlapping grid could have been served from.
        if (
            self._on_cache_entry is not None
            and len(outcome) > 3
            and outcome[3] is not None
        ):
            try:
                self._on_cache_entry(entry.point, outcome[3])
            except Exception:
                pass  # memoization must never fail a completed run
        if (
            self._on_telemetry is not None
            and len(outcome) > 4
            and outcome[4] is not None
        ):
            self._on_telemetry(outcome[4])
        on_record(entry.point, outcome[2])
        stats.completed += 1
        self.telemetry.counter("exec.completed").inc()
        if interrupt_after is not None and stats.completed >= interrupt_after:
            raise CampaignInterrupted(stats.completed)

    def _fail(
        self,
        entry: _Pending,
        error: str,
        stats: ExecutionStats,
        on_failure: Optional[OnFailure],
    ) -> bool:
        """Record one failed attempt; True if the point should retry."""
        entry.failures += 1
        entry.errors.append(error)
        quarantine = entry.failures >= self.retry.max_attempts
        if on_failure is not None:
            on_failure(entry.point, entry.failures, error, quarantine)
        if quarantine:
            stats.quarantined.append(
                PointFailure(
                    digest=entry.point.digest,
                    seed=entry.point.seed,
                    cell=entry.point.cell,
                    attempts=entry.failures,
                    errors=list(entry.errors),
                )
            )
            self.telemetry.counter("exec.quarantined").inc()
            return False
        stats.retried += 1
        self.telemetry.counter("exec.retries").inc()
        entry.eligible_at = (
            time.monotonic() + self.retry.delay_s(entry.failures)
        )
        return True

    # ------------------------------------------------------------------
    # Serial path
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        points: Sequence[CampaignPoint],
        stats: ExecutionStats,
        on_record: OnRecord,
        on_failure: Optional[OnFailure],
        interrupt_after: Optional[int],
    ) -> None:
        queue: Deque[_Pending] = deque(_Pending(p) for p in points)
        while queue:
            entry = queue.popleft()
            delay = entry.eligible_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            outcome = self.worker(self._payload(entry.point))
            if outcome[0] == "ok":
                self._complete(
                    entry, outcome, stats, on_record, interrupt_after
                )
            elif self._fail(entry, outcome[2], stats, on_failure):
                queue.append(entry)

    # ------------------------------------------------------------------
    # Pooled path
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        points: Sequence[CampaignPoint],
        stats: ExecutionStats,
        on_record: OnRecord,
        on_failure: Optional[OnFailure],
        interrupt_after: Optional[int],
    ) -> None:
        workers = min(self.jobs, len(points))
        pending: List[_Pending] = [_Pending(p) for p in points]
        inflight: Dict[object, Tuple[_Pending, float]] = {}
        pool = ProcessPoolExecutor(max_workers=workers)
        # A worker that survives SIGALRM mis-delivery or runs where
        # SIGALRM is unavailable could wedge forever; give the supervisor
        # a generous hard deadline per attempt as the backstop.
        wedge_after = (
            self.timeout_s * 2.0 + 5.0 if self.timeout_s else None
        )
        try:
            while pending or inflight:
                now = time.monotonic()
                self.telemetry.gauge("exec.queue_depth").set(
                    float(len(pending) + len(inflight))
                )
                # Submit every eligible point up to pool capacity.
                still_waiting: List[_Pending] = []
                for entry in pending:
                    if (
                        len(inflight) < workers
                        and entry.eligible_at <= now
                    ):
                        try:
                            future = pool.submit(
                                self.worker, self._payload(entry.point)
                            )
                        except BrokenProcessPool:
                            pool = self._rebuild_pool(pool, workers)
                            self.telemetry.counter("exec.pool_rebuilds").inc()
                            still_waiting.append(entry)
                            continue
                        inflight[future] = (entry, now)
                    else:
                        still_waiting.append(entry)
                pending = still_waiting
                if not inflight:
                    # Nothing running: sleep until the earliest retry.
                    wake = min(e.eligible_at for e in pending)
                    time.sleep(max(0.0, min(wake - time.monotonic(), 0.5)))
                    continue
                done, _ = wait(
                    inflight, timeout=0.25, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in done:
                    entry, _started = inflight.pop(future)
                    exc = future.exception()
                    if isinstance(exc, BrokenProcessPool):
                        broken = True
                        if self._fail(
                            entry,
                            "worker process died (pool broken)",
                            stats,
                            on_failure,
                        ):
                            pending.append(entry)
                        continue
                    if exc is not None:
                        # The worker contract is "never raise"; anything
                        # arriving here is infrastructure (pickling, OS).
                        if self._fail(
                            entry,
                            f"{type(exc).__name__}: {exc}",
                            stats,
                            on_failure,
                        ):
                            pending.append(entry)
                        continue
                    outcome = future.result()
                    if outcome[0] == "ok":
                        self._complete(
                            entry,
                            outcome,
                            stats,
                            on_record,
                            interrupt_after,
                        )
                    elif self._fail(entry, outcome[2], stats, on_failure):
                        pending.append(entry)
                if broken:
                    # The pool is unusable; charge the remaining in-flight
                    # points an attempt (we cannot know which crashed) and
                    # rebuild.
                    for future, (entry, _started) in list(inflight.items()):
                        if self._fail(
                            entry,
                            "worker process died (pool broken)",
                            stats,
                            on_failure,
                        ):
                            pending.append(entry)
                    inflight.clear()
                    pool = self._rebuild_pool(pool, workers)
                    self.telemetry.counter("exec.pool_rebuilds").inc()
                    continue
                if wedge_after is not None:
                    now = time.monotonic()
                    wedged = [
                        (future, entry)
                        for future, (entry, started) in inflight.items()
                        if now - started > wedge_after
                    ]
                    if wedged:
                        # Cannot kill a single task: fail the wedged
                        # points, requeue the innocent ones un-charged,
                        # and start a fresh pool.
                        wedged_futures = {future for future, _ in wedged}
                        for future, entry in wedged:
                            if self._fail(
                                entry,
                                f"Timeout: worker wedged past "
                                f"{wedge_after:g}s supervisor deadline",
                                stats,
                                on_failure,
                            ):
                                pending.append(entry)
                        for future, (entry, _started) in inflight.items():
                            if future not in wedged_futures:
                                pending.append(entry)
                        inflight.clear()
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=workers)
                        self.telemetry.counter("exec.pool_rebuilds").inc()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _rebuild_pool(
        pool: ProcessPoolExecutor, workers: int
    ) -> ProcessPoolExecutor:
        pool.shutdown(wait=False, cancel_futures=True)
        return ProcessPoolExecutor(max_workers=workers)

"""Declarative campaign specifications.

A fault-injection *campaign* is the cross-product of a configuration
grid and a seed plan: every (grid cell × seed) pair is one **point**, a
fully-resolved :class:`~repro.core.system.SystemConfig` identified by a
stable content digest (:func:`repro.obs.provenance.config_digest`).
That digest is the campaign's unit of identity everywhere — the
checkpoint store keys completed results by it, the executor attributes
failures to it, and resume skips it.

Cells come from one of two sources:

* a **grid** — the cross-product of per-field value lists (the classic
  sweep);
* an explicit **cell list** (``fixed_cells`` / JSON key ``"cells"``) —
  arbitrary override dicts that need not form a cross-product.  This is
  what search layers (:mod:`repro.dse`) use: a generation of proposed
  candidates is exactly a list of cells.

Two sampling modes:

* **fixed** — ``seeds.count`` replicas per cell, planned up front;
* **sequential** — when a :class:`StopRule` is present, seeds are added
  per cell in deterministic batches until the confidence interval on
  the cell's fault-detection probability is tight enough (or
  ``max_runs`` is hit).  The rule is always evaluated on a fixed seed
  *prefix*, so an interrupted campaign resumes to byte-identical
  aggregates (see ``repro.campaign.runner``).

Specs serialize to JSON (``spec.json`` inside the campaign directory),
and the spec digest pins the directory to the spec that created it.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config_io import config_from_dict, config_to_dict
from repro.core.system import SystemConfig
from repro.metrics.stats import binomial_interval  # noqa: F401  (re-export convenience)
from repro.obs.provenance import config_digest, digest_of

#: One grid cell: the (field, value) overrides that define it, in the
#: spec's grid-field order.  Hashable so cells can key dictionaries.
Cell = Tuple[Tuple[str, object], ...]

_STOP_METHODS = ("wilson", "clopper-pearson")


def cell_label(cell: Cell) -> str:
    """Human-readable cell name (``field=value,field=value`` or ``default``)."""
    if not cell:
        return "default"
    return ",".join(f"{name}={value}" for name, value in cell)


def cell_digest(cell: Cell) -> str:
    """Stable identity of a grid cell (independent of seeds)."""
    return digest_of(sorted(cell))


@dataclass(frozen=True)
class SeedPlan:
    """Which seeds a campaign draws, per grid cell.

    ``start`` is the first seed; fixed mode runs exactly ``count``
    consecutive seeds, sequential mode starts from ``start`` and lets
    the stopping rule decide how many are needed.
    """

    start: int = 1
    count: int = 8

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"seed count must be >= 1, got {self.count}")

    def seed_at(self, i: int) -> int:
        """The i-th seed of the plan (0-based)."""
        return self.start + i

    def fixed_seeds(self) -> List[int]:
        """All ``count`` seeds of a fixed-mode campaign, in order."""
        return [self.start + i for i in range(self.count)]

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready form of the seed plan."""
        return {"start": self.start, "count": self.count}


@dataclass(frozen=True)
class StopRule:
    """Sequential stopping rule on the fault-detection probability.

    Every injected fault is a Bernoulli trial (detected / escaped);
    sampling of a cell stops once the two-sided CI half-width over the
    cell's accumulated trials drops to ``target_half_width``, evaluated
    after ``min_runs`` seeds and then after every further ``batch``
    seeds, hard-capped at ``max_runs``.  Evaluation points are fixed
    seed prefixes, never "whatever has finished", so the decision is
    identical on resume.
    """

    target_half_width: float
    min_runs: int = 4
    max_runs: int = 64
    batch: int = 4
    method: str = "wilson"

    def __post_init__(self) -> None:
        if self.target_half_width <= 0:
            raise ValueError(
                f"target_half_width must be positive, "
                f"got {self.target_half_width}"
            )
        if self.min_runs < 1:
            raise ValueError(f"min_runs must be >= 1, got {self.min_runs}")
        if self.max_runs < self.min_runs:
            raise ValueError(
                f"max_runs ({self.max_runs}) must be >= min_runs "
                f"({self.min_runs})"
            )
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.method not in _STOP_METHODS:
            raise ValueError(
                f"unknown interval method {self.method!r}; "
                f"known: {_STOP_METHODS}"
            )

    def evaluation_sizes(self) -> List[int]:
        """The deterministic ladder of prefix sizes the rule checks at."""
        sizes = [self.min_runs]
        while sizes[-1] < self.max_runs:
            sizes.append(min(sizes[-1] + self.batch, self.max_runs))
        return sizes

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of the stopping rule."""
        return {
            "target_half_width": self.target_half_width,
            "min_runs": self.min_runs,
            "max_runs": self.max_runs,
            "batch": self.batch,
            "method": self.method,
        }


@dataclass(frozen=True)
class CampaignPoint:
    """One fully-resolved run of a campaign."""

    index: int
    digest: str
    cell: Cell
    seed: int
    config: SystemConfig


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative definition of a campaign."""

    name: str
    base: Tuple[Tuple[str, object], ...] = ()
    grid: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    #: Explicit cell list (JSON key ``"cells"``), mutually exclusive
    #: with ``grid``: arbitrary per-cell overrides that need not form a
    #: cross-product.  Cells are canonicalized to sorted field order.
    fixed_cells: Tuple[Cell, ...] = ()
    seeds: SeedPlan = field(default_factory=SeedPlan)
    stop: Optional[StopRule] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if self.grid and self.fixed_cells:
            raise ValueError(
                "a campaign takes either a grid or an explicit cell "
                "list, not both"
            )
        known = {f.name for f in dataclasses.fields(SystemConfig)}
        for source, keys in (
            ("base", [k for k, _ in self.base]),
            ("grid", [k for k, _ in self.grid]),
            ("cells", [k for cell in self.fixed_cells for k, _ in cell]),
        ):
            unknown = [k for k in keys if k not in known]
            if unknown:
                raise ValueError(
                    f"unknown SystemConfig fields in {source}: {unknown}"
                )
            if "seed" in keys:
                raise ValueError(
                    f"'seed' cannot appear in {source}; seeds come from "
                    f"the seed plan"
                )
        for name, values in self.grid:
            if not values:
                raise ValueError(f"grid field {name!r} has no values")
        if self.fixed_cells:
            seen = set()
            for cell in self.fixed_cells:
                key = tuple(sorted(cell))
                if key in seen:
                    raise ValueError(
                        f"duplicate cell in cell list: {cell_label(cell)}"
                    )
                seen.add(key)

    # ------------------------------------------------------------------
    # Construction / serialisation
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        """Build a spec from a plain dict (e.g. parsed spec.json)."""
        known = {"schema", "name", "base", "grid", "cells", "seeds", "stop"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown campaign spec keys: {sorted(unknown)}")
        base = data.get("base") or {}
        grid = data.get("grid") or {}
        cells = data.get("cells") or []
        if not isinstance(base, dict) or not isinstance(grid, dict):
            raise ValueError("'base' and 'grid' must be JSON objects")
        if not isinstance(cells, list) or any(
            not isinstance(cell, dict) for cell in cells
        ):
            raise ValueError("'cells' must be a JSON array of objects")
        seeds_data = data.get("seeds") or {}
        stop_data = data.get("stop")
        return cls(
            name=str(data.get("name", "")),
            base=tuple((k, freeze_value(v)) for k, v in base.items()),
            grid=tuple(
                (k, tuple(freeze_value(v) for v in values))
                for k, values in grid.items()
            ),
            fixed_cells=tuple(freeze_cell(cell) for cell in cells),
            seeds=SeedPlan(**seeds_data),
            stop=StopRule(**stop_data) if stop_data else None,
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Parse a spec from its JSON text."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("campaign spec JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        """Read a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form, the inverse of :meth:`from_dict`."""
        data = {
            "schema": 1,
            "name": self.name,
            "base": {k: _thaw(v) for k, v in self.base},
            "grid": {k: [_thaw(v) for v in values] for k, values in self.grid},
            "seeds": self.seeds.to_dict(),
            "stop": self.stop.to_dict() if self.stop else None,
        }
        if self.fixed_cells:
            # Key omitted when empty so grid-spec digests predate this
            # field unchanged.
            data["cells"] = [
                {k: _thaw(v) for k, v in cell} for cell in self.fixed_cells
            ]
        return data

    def to_json(self) -> str:
        """Serialize to the canonical JSON form (sorted keys)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str) -> None:
        """Write the spec as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def spec_digest(self) -> str:
        """Content digest pinning a campaign directory to its spec."""
        return digest_of([json.dumps(self.to_dict(), sort_keys=True)])

    # ------------------------------------------------------------------
    # Point enumeration
    # ------------------------------------------------------------------
    @property
    def sequential(self) -> bool:
        """Whether a stopping rule drives per-cell sample sizes."""
        return self.stop is not None

    def cells(self) -> List[Cell]:
        """The campaign's cells, in spec order.

        Grid mode yields the cross-product; an explicit cell list yields
        itself; neither yields one empty (all-defaults) cell.
        """
        if self.fixed_cells:
            return list(self.fixed_cells)
        if not self.grid:
            return [()]
        names = [name for name, _ in self.grid]
        value_lists = [values for _, values in self.grid]
        return [
            tuple(zip(names, combo))
            for combo in itertools.product(*value_lists)
        ]

    def config_for(self, cell: Cell, seed: int) -> SystemConfig:
        """The fully-resolved config of one point (defaults < base < cell)."""
        data = config_to_dict(SystemConfig())
        for key, value in self.base:
            data[key] = _thaw(value)
        for key, value in cell:
            data[key] = _thaw(value)
        data["seed"] = seed
        return config_from_dict(data)

    def point(self, cell: Cell, seed: int, index: int = -1) -> CampaignPoint:
        """Materialize one (cell, seed) pair into a CampaignPoint."""
        config = self.config_for(cell, seed)
        return CampaignPoint(
            index=index,
            digest=config_digest(config),
            cell=cell,
            seed=seed,
            config=config,
        )

    def fixed_points(self) -> List[CampaignPoint]:
        """Every point of a fixed-mode campaign, in deterministic order."""
        points: List[CampaignPoint] = []
        for cell in self.cells():
            for seed in self.seeds.fixed_seeds():
                points.append(self.point(cell, seed, index=len(points)))
        return points

    def n_planned_points(self) -> Optional[int]:
        """Total planned points (``None`` in sequential mode: data-driven)."""
        if self.sequential:
            return None
        return len(self.cells()) * self.seeds.count


def freeze_value(value: object) -> object:
    """JSON value -> hashable spec value (lists become tuples)."""
    if isinstance(value, list):
        return tuple(freeze_value(v) for v in value)
    return value


def freeze_cell(overrides: Dict[str, object]) -> Cell:
    """Override dict -> canonical hashable cell (sorted field order)."""
    return tuple(
        (str(name), freeze_value(value))
        for name, value in sorted(overrides.items())
    )


def _thaw(value: object) -> object:
    """Spec value -> the form ``config_from_dict`` expects."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value

"""Campaign aggregation: per-cell statistics, report and manifest.

The report is a *pure function of the checkpoint store*: it is computed
from the JSONL records alone (never from in-memory results), sorted by
point digest, so the same set of completed points produces the same
bytes whether the campaign ran straight through, crashed and resumed,
or ran with a different worker count.  ``aggregate_digest`` pins that.

Per grid cell it reports the paper's campaign-grade robustness numbers:

* fault-detection probability with a Wilson (or Clopper-Pearson)
  confidence interval — every injected fault is one Bernoulli trial;
* detection-latency distribution (mean / p50 / p95), the E8 headline;
* **escapes** — faults still undetected at the end of a run, the
  zero-test-escapes claim;
* V/F-corner coverage — which DVFS levels ever ran a test, the E6/TC'16
  "test at every level" claim.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignSpec, Cell, cell_label, freeze_value
from repro.campaign.store import aggregate_digest
from repro.metrics.report import format_table
from repro.metrics.stats import BinomialEstimate, binomial_interval

_HEADERS = (
    "cell",
    "runs",
    "injected",
    "detected",
    "escapes",
    "det_rate",
    "ci_low",
    "ci_high",
    "mean_lat_us",
    "p95_lat_us",
    "vf_coverage",
)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return float("nan")
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


@dataclass
class CellSummary:
    """Aggregates over every completed run of one grid cell."""

    cell: Cell
    runs: int = 0
    injected: int = 0
    detected: int = 0
    latencies: List[float] = field(default_factory=list)
    levels_tested: set = field(default_factory=set)
    n_levels: int = 0

    @property
    def escapes(self) -> int:
        """Injected faults that were never detected."""
        return self.injected - self.detected

    def interval(self, method: str = "wilson") -> BinomialEstimate:
        """Confidence interval on the cell's detection probability."""
        return binomial_interval(self.detected, self.injected, method)

    @property
    def vf_coverage(self) -> float:
        """Fraction of the chip's V/F levels exercised by tests."""
        if self.n_levels == 0:
            return 0.0
        return len(self.levels_tested) / self.n_levels

    def row(self, method: str = "wilson") -> List[object]:
        """One formatted table row (see CampaignReport.headers)."""
        est = self.interval(method)
        latencies = sorted(self.latencies)
        mean = (
            sum(latencies) / len(latencies) if latencies else float("nan")
        )
        return [
            cell_label(self.cell),
            self.runs,
            self.injected,
            self.detected,
            self.escapes,
            est.point,
            est.low,
            est.high,
            mean,
            _percentile(latencies, 0.95),
            self.vf_coverage,
        ]


@dataclass
class CampaignReport:
    """The rendered outcome of a campaign (tables + manifest data)."""

    name: str
    spec_digest: str
    aggregate: str
    headers: Sequence[str]
    rows: List[List[object]]
    n_completed: int
    n_planned: Optional[int]
    interval_method: str
    quarantined: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self, precision: int = 4) -> str:
        """Human-readable report: table, notes, quarantine, digest."""
        parts = [
            format_table(
                list(self.headers),
                self.rows,
                precision=precision,
                title=(
                    f"campaign {self.name}: {self.n_completed} run(s)"
                    + (
                        f" of {self.n_planned} planned"
                        if self.n_planned is not None
                        else " (sequential)"
                    )
                ),
            )
        ]
        for note in self.notes:
            parts.append(f"note: {note}")
        if self.quarantined:
            parts.append(
                f"QUARANTINED {len(self.quarantined)} point(s):"
            )
            for entry in self.quarantined:
                parts.append(
                    f"  - digest {str(entry.get('digest'))[:12]} "
                    f"seed {entry.get('seed')} "
                    f"({entry.get('error', 'unknown error')})"
                )
        parts.append(f"aggregate digest: {self.aggregate}")
        return "\n".join(parts)

    def row_dicts(self) -> List[Dict[str, object]]:
        """Table rows as dicts keyed by the report's column headers."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def manifest(self, version: str) -> Dict[str, object]:
        """JSON-ready campaign manifest (the build artifact)."""
        return {
            "schema": 1,
            "name": self.name,
            "version": version,
            "spec_digest": self.spec_digest,
            "aggregate_digest": self.aggregate,
            "interval_method": self.interval_method,
            "n_completed": self.n_completed,
            "n_planned": self.n_planned,
            "n_quarantined": len(self.quarantined),
            "quarantined": self.quarantined,
            "rows": self.row_dicts(),
            "notes": self.notes,
        }

    def manifest_json(self, version: str) -> str:
        """The manifest rendered as pretty-printed, key-sorted JSON."""
        return json.dumps(self.manifest(version), indent=2, sort_keys=True)


def summarize_cells(
    records: Iterable[Dict[str, object]]
) -> Dict[Cell, CellSummary]:
    """Group completed records by grid cell and accumulate statistics."""
    cells: Dict[Cell, CellSummary] = {}
    for record in records:
        # JSON round-trips grid tuples as lists; re-freeze so the cell
        # key compares equal to the spec's enumeration.
        cell: Cell = tuple(
            (str(name), freeze_value(value))
            for name, value in record.get("cell", [])
        )
        summary = cells.get(cell)
        if summary is None:
            summary = cells[cell] = CellSummary(cell=cell)
        summary.runs += 1
        summary.n_levels = max(
            summary.n_levels, int(record.get("n_levels", 0))
        )
        for fault in record.get("faults", []):
            summary.injected += 1
            detected_at = fault.get("detected_at")
            if detected_at is not None:
                summary.detected += 1
                summary.latencies.append(
                    float(detected_at) - float(fault["injected_at"])
                )
        for level, count in record.get("per_level_tests", {}).items():
            if count:
                summary.levels_tested.add(int(level))
    return cells


def build_report(
    spec: CampaignSpec,
    records: Dict[str, Dict[str, object]],
    quarantined: Optional[List[Dict[str, object]]] = None,
) -> CampaignReport:
    """Build the campaign report from the checkpoint store's records."""
    method = spec.stop.method if spec.stop else "wilson"
    # Deterministic record order: sorted by point digest (see store).
    ordered = [records[d] for d in sorted(records)]
    by_cell = summarize_cells(ordered)
    # Row order follows the spec's cell enumeration; cells with no
    # completed runs yet still get a row (all-zero) so partial reports
    # show the full grid.
    rows: List[List[object]] = []
    total = CellSummary(cell=())
    for cell in spec.cells():
        summary = by_cell.get(cell, CellSummary(cell=cell))
        rows.append(summary.row(method))
        total.runs += summary.runs
        total.injected += summary.injected
        total.detected += summary.detected
        total.latencies.extend(summary.latencies)
        total.levels_tested |= summary.levels_tested
        total.n_levels = max(total.n_levels, summary.n_levels)
    if len(spec.cells()) > 1:
        row = total.row(method)
        row[0] = "ALL"
        rows.append(row)
    notes: List[str] = []
    if spec.stop is not None:
        notes.append(
            f"sequential mode: CI half-width target "
            f"{spec.stop.target_half_width:g} ({spec.stop.method}), "
            f"runs per cell in [{spec.stop.min_runs}, "
            f"{spec.stop.max_runs}] step {spec.stop.batch}"
        )
    return CampaignReport(
        name=spec.name,
        spec_digest=spec.spec_digest(),
        aggregate=aggregate_digest(ordered),
        headers=_HEADERS,
        rows=rows,
        n_completed=len(ordered),
        n_planned=spec.n_planned_points(),
        interval_method=method,
        quarantined=list(quarantined or []),
        notes=notes,
    )

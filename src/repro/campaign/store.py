"""Append-only JSONL checkpoint store for campaign results.

Every completed point becomes one JSON line in ``results.jsonl``, keyed
by the point's config digest and flushed+fsynced on append, so a crash
can lose at most the line being written — and a torn final line is
detected and ignored on load.  Records are plain JSON (no pickles):
the report layer recomputes every aggregate from them, which is what
makes an interrupted-then-resumed campaign byte-identical to an
uninterrupted one.

Failures get the same treatment in ``failures.jsonl``: one line per
failed attempt, with the digest, attempt number, error string and
whether the point was quarantined.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional

from repro.campaign.spec import CampaignPoint
from repro.core.config_io import config_to_dict
from repro.core.system import SimulationResult
from repro.obs.provenance import digest_of

RESULTS_FILE = "results.jsonl"
FAILURES_FILE = "failures.jsonl"
SPEC_FILE = "spec.json"
MANIFEST_FILE = "manifest.json"

_RECORD_SCHEMA = 1


def record_from_result(
    point: CampaignPoint, result: SimulationResult
) -> Dict[str, object]:
    """Flatten one run into the JSON record the store keeps.

    The record carries everything the campaign report needs — scalar
    summary, per-fault lifecycle, per-level test counts — so reports
    never have to re-run or unpickle anything.
    """
    return {
        "schema": _RECORD_SCHEMA,
        "digest": point.digest,
        "cell": [[name, value] for name, value in point.cell],
        "seed": point.seed,
        "config": config_to_dict(point.config),
        "summary": result.summary(),
        "faults": [
            {
                "core": r.core_id,
                "injected_at": r.injected_at,
                "detected_at": r.detected_at,
                "manifest_level": r.manifest_level,
                "kind": r.kind,
            }
            for r in result.fault_records
        ],
        "per_level_tests": {
            str(level): count
            for level, count in sorted(result.per_level_tests.items())
        },
        "n_levels": point.config.n_vf_levels,
        "names": {
            "scheduler": result.scheduler_name,
            "mapper": result.mapper_name,
            "power": result.power_policy_name,
        },
    }


def record_line(record: Dict[str, object]) -> str:
    """Canonical serialized form of one record (sorted keys, one line)."""
    return json.dumps(record, sort_keys=True)


def aggregate_digest(records: Iterable[Dict[str, object]]) -> str:
    """Digest over the canonical lines of all records, sorted by point.

    Execution order (parallelism, retries, resume) must not matter, so
    the digest sorts by the point digest before hashing.
    """
    lines = sorted(
        (str(record.get("digest", "")), record_line(record))
        for record in records
    )
    return digest_of(line for _, line in lines)


class ResultStore:
    """The ``results.jsonl`` checkpoint file of one campaign directory."""

    def __init__(self, path: str) -> None:
        self.path = path

    def load(self) -> Dict[str, Dict[str, object]]:
        """All checkpointed records keyed by point digest."""
        """All completed records, keyed by digest (first record wins).

        Tolerates exactly one torn line at the end of the file — the
        signature of a crash mid-append.  Corruption anywhere else is an
        error: that is not a crash artefact, and silently dropping good
        results would break resume identity.
        """
        if not os.path.exists(self.path):
            return {}
        records: Dict[str, Dict[str, object]] = {}
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                if lineno == len(lines):
                    break  # torn final line from a crash mid-write
                raise ValueError(
                    f"{self.path}:{lineno}: corrupt record: {exc}"
                ) from exc
            digest = record.get("digest")
            if not isinstance(digest, str) or not digest:
                raise ValueError(
                    f"{self.path}:{lineno}: record has no digest"
                )
            records.setdefault(digest, record)
        return records

    def append(self, record: Dict[str, object]) -> None:
        """Append one completed-point record and fsync it."""
        """Durably append one record (flush + fsync before returning)."""
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(record_line(record))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())


class FailureLog:
    """The ``failures.jsonl`` attempt/quarantine log (append-only)."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(
        self,
        digest: str,
        seed: int,
        cell: Iterable[Iterable[object]],
        attempt: int,
        error: str,
        quarantined: bool,
    ) -> None:
        """Append one attempt failure (fsynced), marking quarantine."""
        entry = {
            "digest": digest,
            "seed": seed,
            "cell": [list(pair) for pair in cell],
            "attempt": attempt,
            "error": error,
            "quarantined": quarantined,
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> List[Dict[str, object]]:
        """All failure records, in append order."""
        if not os.path.exists(self.path):
            return []
        entries: List[Dict[str, object]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except ValueError:
                if lineno == len(lines):
                    break  # torn final line; attempts are best-effort data
                raise
        return entries

    def quarantined(
        self, completed: Optional[Dict[str, object]] = None
    ) -> List[Dict[str, object]]:
        """Quarantine entries whose point never completed afterwards.

        A later resume may have successfully rerun a quarantined point;
        passing the completed-records map filters those out.
        """
        done = set(completed or ())
        out: List[Dict[str, object]] = []
        seen = set()
        for entry in self.load():
            digest = entry.get("digest")
            if not entry.get("quarantined") or digest in done:
                continue
            if digest in seen:
                continue
            seen.add(digest)
            out.append(entry)
        return out

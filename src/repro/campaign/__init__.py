"""Fault-injection campaigns: resumable, crash-tolerant Monte-Carlo
batches with statistical stopping rules.

A single-seed fault-injection run is an anecdote; the paper's
robustness claims (detection latency, V/F-corner coverage, zero escapes
under the power budget) need *campaigns* — systematic sampling of the
(config × seed × fault-space) cross-product with confidence intervals,
checkpointed execution and failure quarantine.  This package turns the
deterministic simulator into that batch workload:

>>> from repro.campaign import CampaignSpec, run_campaign
>>> spec = CampaignSpec.from_dict({
...     "name": "doc-smoke",
...     "base": {"width": 4, "height": 4, "horizon_us": 3000.0,
...              "fault_hazard_per_us": 2e-4},
...     "grid": {"test_policy": ["power-aware", "none"]},
...     "seeds": {"start": 1, "count": 1},
... })
>>> len(spec.fixed_points())
2

See ``repro.campaign.runner`` for the resume-identity contract and the
CLI (``python -m repro campaign run/resume/report``) for the shell
interface.
"""

from repro.campaign.executor import (
    CampaignInterrupted,
    ExecutionStats,
    PointFailure,
    RetryPolicy,
    RobustExecutor,
    default_worker,
)
from repro.campaign.report import (
    CampaignReport,
    CellSummary,
    build_report,
    summarize_cells,
)
from repro.campaign.runner import (
    load_spec,
    plan_missing,
    report_campaign,
    run_campaign,
)
from repro.campaign.spec import (
    CampaignPoint,
    CampaignSpec,
    SeedPlan,
    StopRule,
    cell_digest,
    cell_label,
    freeze_cell,
)
from repro.campaign.store import (
    FailureLog,
    ResultStore,
    aggregate_digest,
    record_from_result,
)

__all__ = [
    "CampaignInterrupted",
    "CampaignPoint",
    "CampaignReport",
    "CampaignSpec",
    "CellSummary",
    "ExecutionStats",
    "FailureLog",
    "PointFailure",
    "ResultStore",
    "RetryPolicy",
    "RobustExecutor",
    "SeedPlan",
    "StopRule",
    "aggregate_digest",
    "build_report",
    "cell_digest",
    "cell_label",
    "default_worker",
    "freeze_cell",
    "load_spec",
    "plan_missing",
    "record_from_result",
    "report_campaign",
    "run_campaign",
    "summarize_cells",
]

"""Campaign orchestration: run, resume, plan, report.

A campaign lives in a directory:

* ``spec.json``      — the :class:`~repro.campaign.spec.CampaignSpec`;
  ``run`` writes it, ``resume``/``report`` read it back, and a digest
  mismatch between an existing directory and a new spec is an error;
* ``results.jsonl``  — the append-only checkpoint store (one record per
  completed point, fsynced);
* ``failures.jsonl`` — per-attempt failure log with quarantine marks;
* ``manifest.json``  — the aggregate report written on completion.

**Resume identity.**  The planner derives the points still to run as a
pure function of (spec, completed records): fixed mode filters the
static cross-product by digest; sequential mode grows each cell by
deterministic seed-prefix batches and evaluates the stopping rule only
on complete prefixes.  Combined with a report computed solely from the
store, killing a campaign at *any* point and resuming it yields a
byte-identical ``aggregate_digest`` to an uninterrupted run — pinned by
``tests/test_campaign.py`` and the CI smoke job.

Quarantined points stay incomplete: within one invocation they are
skipped after quarantine (the campaign finishes without them, fully
attributed), and a later ``resume`` retries them with a fresh attempt
budget — quarantine is how transient infrastructure failures are kept
from aborting thousand-run batches, not a permanent verdict on the
point.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.batch import run_batch
from repro.campaign.executor import (
    CampaignInterrupted,
    ExecutionStats,
    RetryPolicy,
    RobustExecutor,
    _alarm_handler,
    _PointTimeout,
)
from repro.campaign.report import CampaignReport, build_report
from repro.campaign.spec import CampaignPoint, CampaignSpec, Cell
from repro.campaign.store import (
    FAILURES_FILE,
    MANIFEST_FILE,
    RESULTS_FILE,
    SPEC_FILE,
    FailureLog,
    ResultStore,
    record_from_result,
)
from repro.metrics.stats import halfwidth_met
from repro.telemetry import TelemetrySession, worker_telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.status import CampaignStatusWriter


def _spec_path(campaign_dir: str) -> str:
    return os.path.join(campaign_dir, SPEC_FILE)


def load_spec(campaign_dir: str) -> CampaignSpec:
    """Read the spec of an existing campaign directory."""
    path = _spec_path(campaign_dir)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"{campaign_dir!r} is not a campaign directory (no {SPEC_FILE})"
        )
    return CampaignSpec.load(path)


def _prepare_dir(spec: CampaignSpec, campaign_dir: str) -> None:
    """Create/validate the campaign directory for a fresh ``run``."""
    os.makedirs(campaign_dir, exist_ok=True)
    spec_path = _spec_path(campaign_dir)
    results_path = os.path.join(campaign_dir, RESULTS_FILE)
    if os.path.exists(spec_path):
        existing = CampaignSpec.load(spec_path)
        if existing.spec_digest() != spec.spec_digest():
            raise ValueError(
                f"{campaign_dir!r} already holds campaign "
                f"{existing.name!r} with a different spec; refusing to "
                f"mix campaigns in one directory"
            )
        if os.path.exists(results_path):
            raise ValueError(
                f"{campaign_dir!r} already has results for this spec; "
                f"use resume to continue it"
            )
    else:
        spec.save(spec_path)


# ----------------------------------------------------------------------
# Planning: which points still need to run
# ----------------------------------------------------------------------
def _records_by_cell_seed(
    records: Dict[str, Dict[str, object]]
) -> Dict[Tuple[Cell, int], Dict[str, object]]:
    from repro.campaign.spec import freeze_value

    out: Dict[Tuple[Cell, int], Dict[str, object]] = {}
    for record in records.values():
        cell: Cell = tuple(
            (str(name), freeze_value(value))
            for name, value in record.get("cell", [])
        )
        out[(cell, int(record["seed"]))] = record
    return out


def _cell_trials(record: Dict[str, object]) -> Tuple[int, int]:
    """(detected, injected) Bernoulli counts of one record."""
    faults = record.get("faults", [])
    detected = sum(1 for f in faults if f.get("detected_at") is not None)
    return detected, len(faults)


def plan_missing(
    spec: CampaignSpec,
    records: Dict[str, Dict[str, object]],
    exclude: Optional[Set[str]] = None,
) -> List[CampaignPoint]:
    """The points the campaign still needs, as a pure function of state.

    ``exclude`` holds digests quarantined *in this invocation*: they are
    not replanned (the campaign completes without them), but they also
    stop sequential growth of their cell — the stopping rule cannot be
    evaluated on a prefix with a hole in it.
    """
    exclude = exclude or set()
    if not spec.sequential:
        return [
            point
            for point in spec.fixed_points()
            if point.digest not in records and point.digest not in exclude
        ]
    by_cell_seed = _records_by_cell_seed(records)
    stop = spec.stop
    missing: List[CampaignPoint] = []
    index = 0
    for cell in spec.cells():
        for n in stop.evaluation_sizes():
            prefix = [spec.seeds.seed_at(i) for i in range(n)]
            holes = [
                seed for seed in prefix if (cell, seed) not in by_cell_seed
            ]
            if holes:
                for seed in holes:
                    point = spec.point(cell, seed, index=index)
                    index += 1
                    if point.digest not in exclude:
                        missing.append(point)
                break  # need this prefix complete before evaluating
            detected = injected = 0
            for seed in prefix:
                d, i = _cell_trials(by_cell_seed[(cell, seed)])
                detected += d
                injected += i
            if halfwidth_met(
                detected,
                injected,
                stop.target_half_width,
                stop.method,
            ):
                break  # cell satisfied
            # else: not satisfied — continue to the next ladder size
            # (the final size is max_runs; running past it stops here).
    return missing


# ----------------------------------------------------------------------
# Batched execution: seed-groups as executor work items
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _PointGroup:
    """A seed-chunk of one cell, duck-typing a point for the executor.

    The executor only ever reads ``digest``/``seed``/``cell`` (failure
    attribution) and passes the work item through to its worker, so a
    group — digest derived from the member digests, representative
    seed/cell from the first member — slots into the same machinery:
    retries, timeouts and quarantine all operate at group granularity.
    """

    digest: str
    seed: int
    cell: Tuple[Tuple[str, object], ...]
    points: Tuple[CampaignPoint, ...]

    @staticmethod
    def build(members: List[CampaignPoint]) -> "_PointGroup":
        from repro.obs.provenance import digest_of

        return _PointGroup(
            digest=digest_of([point.digest for point in members]),
            seed=members[0].seed,
            cell=members[0].cell,
            points=tuple(members),
        )


def _group_points(
    points: List[CampaignPoint], batch: int
) -> List["_PointGroup"]:
    """Chunk the planner's missing points per cell, in plan order.

    Points within one cell differ only in seed (that is what a cell
    *is*), so each chunk is a valid lockstep batch; cells with fewer
    missing points than ``batch`` simply yield smaller groups.
    """
    by_cell: Dict[Tuple, List[CampaignPoint]] = {}
    order: List[Tuple] = []
    for point in points:
        members = by_cell.get(point.cell)
        if members is None:
            by_cell[point.cell] = members = []
            order.append(point.cell)
        members.append(point)
    groups: List[_PointGroup] = []
    for cell in order:
        members = by_cell[cell]
        for start in range(0, len(members), batch):
            groups.append(_PointGroup.build(members[start : start + batch]))
    return groups


def _batched_worker(payload):
    """Module-level batched worker (picklable); never raises.

    Mirrors :func:`repro.campaign.executor.default_worker` — same
    ``SIGALRM`` timeout enforcement, same tagged-tuple protocol — but
    runs a whole :class:`_PointGroup` through the lockstep batch engine
    and returns one checkpoint-ready record *per member point*, so the
    store rows are identical to what scalar execution would have
    written.  The timeout budget covers the whole group (one dispatch).

    Payload layout matches the executor's: ``(group, timeout_s)`` plus
    an always-``None`` cache-plan slot and a trailing
    :class:`~repro.telemetry.spans.SpanContext` when the campaign
    collects telemetry (then the ok-outcome grows to ``("ok", digest,
    records, None, telemetry_blob)``).
    """
    group, timeout_s = payload[0], payload[1]
    ctx = payload[3] if len(payload) > 3 else None
    seeds = [point.seed for point in group.points]
    use_alarm = bool(timeout_s) and hasattr(signal, "SIGALRM")
    try:
        if use_alarm:
            old = signal.signal(signal.SIGALRM, _alarm_handler)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
        try:
            with worker_telemetry(
                ctx, group.digest[:12], "campaign.batch"
            ) as scope:
                results = run_batch(group.points[0].config, seeds)
        finally:
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, old)
        records = [
            record_from_result(point, result)
            for point, result in zip(group.points, results)
        ]
        if scope is not None:
            return ("ok", group.digest, records, None, scope.blob())
        return ("ok", group.digest, records)
    except _PointTimeout:
        return (
            "err",
            group.digest,
            f"Timeout: batch of {len(seeds)} exceeded {timeout_s:g}s",
        )
    except Exception as exc:
        return ("err", group.digest, f"{type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# Run / resume / report
# ----------------------------------------------------------------------
def _serve_from_cache(
    cache,
    points: List[CampaignPoint],
    store: ResultStore,
) -> Tuple[int, List[CampaignPoint]]:
    """Checkpoint every point the cache already holds; return the rest.

    A cached :class:`SimulationResult` is a pickle round-trip of the
    original, so the record built from it is byte-identical to the one
    a fresh run would have produced — the aggregate digest cannot tell
    warm cells from cold ones.
    """
    served = 0
    still_missing: List[CampaignPoint] = []
    for point in points:
        result = cache.get_result(point.config)
        if result is None:
            still_missing.append(point)
            continue
        store.append(record_from_result(point, result))
        served += 1
    return served, still_missing


def run_campaign(
    campaign_dir: str,
    spec: Optional[CampaignSpec] = None,
    jobs: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    timeout_s: Optional[float] = None,
    interrupt_after: Optional[int] = None,
    worker=None,
    resume: bool = False,
    cache=None,
    batch: Optional[int] = None,
    telemetry: bool = True,
) -> CampaignReport:
    """Execute a campaign to completion (or controlled interruption).

    ``resume=True`` reads the spec from the directory and skips every
    checkpointed point; a fresh ``run`` requires a spec and an empty (or
    brand-new) directory.  Returns the final :class:`CampaignReport`,
    whose ``aggregate_digest`` is independent of interruptions, worker
    counts and retry history; also writes ``manifest.json``.

    ``interrupt_after`` (testing/ops hook) deterministically simulates a
    crash after N newly-checkpointed results by raising
    :class:`CampaignInterrupted`.

    ``batch`` (``None`` disables) consumes each cell's missing seeds as
    whole lockstep batches of at most ``batch`` lanes per dispatch
    (:func:`repro.batch.run_batch`).  Checkpoint rows are unchanged —
    one record per point, digest-identical to scalar execution, so the
    ``aggregate_digest`` cannot tell a batched campaign from a scalar
    one.  Retries, ``timeout_s`` and quarantine operate at *group*
    granularity (a failing group quarantines all its member points), and
    ``interrupt_after`` counts checkpointed groups rather than single
    results.  Incompatible with a custom ``worker``, and cache blob
    deposits are disabled (cache *serving* still works).

    ``cache`` (a :class:`repro.cache.RunCache`) memoizes points across
    campaigns: before each execution wave the planner's missing points
    are probed and hits are checkpointed directly (served warm), and —
    with the default worker — completed runs deposit result blobs that
    the supervisor adopts into the cache index, so a later grid with
    overlapping cells is served without re-simulating.  Cache-served
    records do not count toward ``interrupt_after`` (they cost no work
    worth crash-testing), and a custom ``worker`` disables deposits but
    still benefits from warm serving.

    ``telemetry=True`` (the default) collects per-point metric deltas
    and trace spans from the workers, merges them supervisor-side, and
    flushes ``status.json``/``telemetry.prom``/``telemetry.json`` into
    the campaign directory for ``repro campaign status``/``repro top``.
    Telemetry is a write-only sink: checkpoint rows and the aggregate
    digest are byte-identical with it on or off.  Span contexts only
    ride along with the stock workers — a custom ``worker`` still gets
    supervisor-side progress/status, just no per-point blobs.
    """
    if batch is not None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if worker is not None:
            raise ValueError("batch uses its own worker; pass one or the other")
    if resume:
        spec = load_spec(campaign_dir)
    else:
        if spec is None:
            raise ValueError("a fresh run needs a spec")
        _prepare_dir(spec, campaign_dir)
    store = ResultStore(os.path.join(campaign_dir, RESULTS_FILE))
    failures = FailureLog(os.path.join(campaign_dir, FAILURES_FILE))
    records = store.load()
    session: Optional[TelemetrySession] = None
    status: Optional[CampaignStatusWriter] = None
    on_telemetry = None
    prev_cache_telemetry = None
    if telemetry:
        registry = MetricsRegistry()
        session = TelemetrySession(
            "campaign", registry=registry, attrs={"name": spec.name}
        )
        status = CampaignStatusWriter(
            campaign_dir,
            spec.name,
            registry,
            planned=spec.n_planned_points(),
            already_done=len(records),
            cache=cache,
        )
        if cache is not None:
            prev_cache_telemetry = cache.telemetry
            cache.bind_telemetry(registry)

        def on_telemetry(blob) -> None:
            session.merge_blob(blob)
            status.note_worker(blob)

    if batch is not None:
        executor_kwargs = {"worker": _batched_worker}
    else:
        executor_kwargs = {} if worker is None else {"worker": worker}
    cache_plan = (
        cache.plan()
        if cache is not None and worker is None and batch is None
        else None
    )
    executor = RobustExecutor(
        jobs=jobs,
        retry=retry,
        timeout_s=timeout_s,
        cache_plan=cache_plan,
        telemetry=session.registry if session is not None else None,
        # Span contexts ride only with the stock workers: a custom
        # worker may unpack a fixed-size payload.
        telemetry_ctx=(
            session.ctx if session is not None and worker is None else None
        ),
        **executor_kwargs,
    )

    def on_record(point, record) -> None:
        # The batched worker delivers one record per member point.
        if isinstance(record, list):
            for member_record in record:
                store.append(member_record)
            n = len(record)
        else:
            store.append(record)
            n = 1
        if status is not None:
            status.note_points(n)
            status.write("running")

    def on_failure(
        point: CampaignPoint, attempt: int, error: str, quarantined: bool
    ) -> None:
        failures.append(
            point.digest, point.seed, point.cell, attempt, error, quarantined
        )
        if status is not None and quarantined:
            # A quarantined batch group takes all its members with it.
            status.note_quarantine(len(getattr(point, "points", ())) or 1)
            status.write("running")

    def on_cache_entry(
        point: CampaignPoint, entry: Dict[str, object]
    ) -> None:
        cache.adopt(
            str(entry["key"]), str(entry["blob"]), int(entry["size"])
        )
    quarantined_digests: Set[str] = set()
    # Group digest -> member point digests, for quarantine expansion: the
    # planner excludes *points*, so a quarantined group must poison every
    # member or its survivors would be replanned forever.
    group_members: Dict[str, List[str]] = {}
    completed_this_invocation = 0
    final_state = "interrupted"
    try:
        # Wave loop: fixed mode needs one wave (plus one to observe
        # "done"); sequential mode grows cells until the planner returns
        # nothing.
        while True:
            missing = plan_missing(
                spec, records, exclude=quarantined_digests
            )
            if not missing:
                break
            if cache is not None:
                served, missing = _serve_from_cache(cache, missing, store)
                if status is not None and served:
                    status.note_points(served)
                    status.write("running")
                if served and not missing:
                    records = store.load()
                    continue
            if batch is not None:
                work_items = _group_points(missing, batch)
                for group in work_items:
                    group_members[group.digest] = [
                        point.digest for point in group.points
                    ]
            else:
                work_items = missing
            remaining_interrupt = (
                None
                if interrupt_after is None
                else interrupt_after - completed_this_invocation
            )
            try:
                stats: ExecutionStats = executor.run(
                    work_items,
                    on_record=on_record,
                    on_failure=on_failure,
                    interrupt_after=remaining_interrupt,
                    on_cache_entry=(
                        on_cache_entry if cache_plan is not None else None
                    ),
                    on_telemetry=on_telemetry,
                )
            except CampaignInterrupted as exc:
                raise CampaignInterrupted(
                    completed_this_invocation + exc.completed
                ) from None
            completed_this_invocation += stats.completed
            for failure in stats.quarantined:
                quarantined_digests |= set(
                    group_members.get(failure.digest, [failure.digest])
                )
            records = store.load()
        final_state = "complete"
    finally:
        # The forced final flush makes kill-and-resume inspectable: an
        # interrupted campaign leaves a status file saying so.
        if status is not None:
            status.write(final_state, force=True)
        if session is not None:
            session.finish(
                state=final_state, points=completed_this_invocation
            )
        if cache is not None and prev_cache_telemetry is not None:
            cache.bind_telemetry(prev_cache_telemetry)
    report = build_report(
        spec, records, quarantined=failures.quarantined(records)
    )
    _write_manifest(campaign_dir, report)
    return report


def report_campaign(campaign_dir: str) -> CampaignReport:
    """Rebuild the report of an existing campaign directory."""
    spec = load_spec(campaign_dir)
    store = ResultStore(os.path.join(campaign_dir, RESULTS_FILE))
    failures = FailureLog(os.path.join(campaign_dir, FAILURES_FILE))
    records = store.load()
    report = build_report(
        spec, records, quarantined=failures.quarantined(records)
    )
    _write_manifest(campaign_dir, report)
    return report


def _write_manifest(campaign_dir: str, report: CampaignReport) -> None:
    import repro

    path = os.path.join(campaign_dir, MANIFEST_FILE)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            report.manifest_json(getattr(repro, "__version__", "0"))
        )
        handle.write("\n")

"""Invariant-checker gate: verification must be read-only and cheap.

Runs the same seeded simulation twice — plain, then with the full
:class:`~repro.verify.InvariantChecker` attached — and gates on the
checker's whole contract:

* **identity** — the verified run's full-precision summary digest is
  byte-identical to the plain run's.  The checker promises to *look,
  never touch*: one RNG draw or perturbed float breaks the digest;
* **cleanliness** — the invariant catalog reports zero violations on
  the reference config (the no-violation pin `tests/test_verify.py`
  makes over E1–E9, kept here so the perf gate cannot pass on a broken
  model);
* **overhead** — the verified run's best-of-``--repeats`` wall clock is
  within ``--max-overhead`` (default 10%) of the plain run's.  The
  checker re-derives every power channel through the unmemoized scan
  each epoch, so this bounds the *audit* cost, not just the hook cost.

Usage::

    PYTHONPATH=src python benchmarks/bench_verify.py                    # full scale
    PYTHONPATH=src python benchmarks/bench_verify.py --horizon-us 20000 # CI smoke
    PYTHONPATH=src python benchmarks/bench_verify.py --max-overhead 0.25

CI runs with a relaxed ``--max-overhead``: shared runners are noisy and
the local 10% tripwire would flake there.  Exit status is non-zero on a
digest mismatch, any violation, or a blown overhead budget.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.system import SystemConfig, run_system
from repro.obs.provenance import digest_of
from repro.verify import InvariantChecker


def bench_config(horizon_us: float) -> SystemConfig:
    """The paper's default scale (8x8 mesh, 16 nm, proposed policies)."""
    return SystemConfig(
        width=8,
        height=8,
        node_name="16nm",
        horizon_us=horizon_us,
        test_policy="power-aware",
        power_policy="pid",
        seed=17,
    )


def run_gate(horizon_us: float, repeats: int, max_overhead: float) -> dict:
    """Plain run vs verified run, plus every gate check; returns the report.

    The two variants are timed in interleaved pairs (best-of-``repeats``
    each) after one untimed warmup: timing one variant's block after the
    other's lets CPU frequency drift masquerade as checker overhead.
    """
    config = bench_config(horizon_us)

    run_system(config)  # warmup, untimed

    plain_s = verified_s = float("inf")
    plain = verified = checker = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        plain = run_system(config)
        plain_s = min(plain_s, time.perf_counter() - t0)

        candidate = InvariantChecker()
        t0 = time.perf_counter()
        result = run_system(config, verifier=candidate)
        verified_s = min(verified_s, time.perf_counter() - t0)
        verified, checker = result, candidate

    plain_digest = digest_of(sorted(plain.summary().items()))
    verified_digest = digest_of(sorted(verified.summary().items()))
    overhead = verified_s / plain_s - 1.0 if plain_s > 0 else float("inf")
    summary = checker.summary()
    report = {
        "horizon_us": horizon_us,
        "repeats": repeats,
        "plain_s": round(plain_s, 4),
        "verified_s": round(verified_s, 4),
        "overhead": round(overhead, 4),
        "max_overhead": max_overhead,
        "plain_digest": plain_digest,
        "verified_digest": verified_digest,
        "ticks_checked": summary["ticks_checked"],
        "checks_run": summary["checks_run"],
        "violations": summary["violations"],
        "failures": [],
    }
    if verified_digest != plain_digest:
        report["failures"].append(
            "digest mismatch: the checker perturbed the run"
        )
    if summary["violations"]:
        report["failures"].append(
            f"{summary['violations']} invariant violation(s) on the "
            f"reference config: {summary['per_invariant']}"
        )
    if summary["ticks_checked"] == 0:
        report["failures"].append("checker observed zero control epochs")
    if overhead > max_overhead:
        report["failures"].append(
            f"verification overhead {overhead:.1%} exceeds the "
            f"{max_overhead:.0%} budget"
        )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--horizon-us", type=float, default=60_000.0)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="wall-clock measurements per variant; best is kept (default 3)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.10,
        help="verified/plain wall-clock overhead ceiling (default 0.10)",
    )
    parser.add_argument(
        "--json", default=None, help="write the report to this path"
    )
    args = parser.parse_args(argv)

    report = run_gate(args.horizon_us, args.repeats, args.max_overhead)

    print(
        f"plain: {report['plain_s']:.3f}s   "
        f"verified: {report['verified_s']:.3f}s   "
        f"overhead: {report['overhead']:+.1%} "
        f"(budget {report['max_overhead']:.0%})"
    )
    print(
        f"checks: {report['checks_run']} over {report['ticks_checked']} "
        f"epoch(s), {report['violations']} violation(s)"
    )
    print(f"plain digest:    {report['plain_digest']}")
    print(f"verified digest: {report['verified_digest']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    for failure in report["failures"]:
        print(f"FAIL: {failure}", file=sys.stderr)
    if report["failures"]:
        return 1
    print("verify gate ok: read-only, clean, within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Telemetry gate: the metrics pipeline must be invisible and cheap.

Runs the paper's E2 sweep (four test-scheduler policies at 16 nm) twice
— plain, then with a process-wide telemetry registry installed — and
gates on telemetry's whole contract:

* **identity** — the instrumented sweep's ``rows_digest`` over the
  full-precision summary rows is byte-identical to the plain sweep's.
  Telemetry is a write-only sink: one perturbed float or stolen RNG
  draw breaks the digest;
* **liveness** — the registry actually collected the sweep (``sim.runs``
  equals the number of configs, ``sim.events`` is positive, power
  gauges sampled every control epoch).  A gate that passes with an
  empty registry would also pass with the instrumentation deleted;
* **overhead** — the instrumented sweep's best-of-``--repeats`` wall
  clock is within ``--max-overhead`` of the plain sweep's.  The
  default budget is deliberately loose for shared CI runners;
  ``--strict`` tightens it to the 5% contract for local runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry.py                    # full scale
    PYTHONPATH=src python benchmarks/bench_telemetry.py --horizon-us 20000 # CI smoke
    PYTHONPATH=src python benchmarks/bench_telemetry.py --strict           # 5% budget

Exit status is non-zero on a digest mismatch, a dead registry, or a
blown overhead budget.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace

from repro.core.system import SystemConfig, run_system
from repro.experiments.parallel import run_many
from repro.obs.provenance import rows_digest
from repro.telemetry import MetricsRegistry, configure_telemetry

#: The 5% contract (docs/observability.md) enforced under ``--strict``.
STRICT_MAX_OVERHEAD = 0.05

#: E2's policy axis: the throughput-penalty sweep at 16 nm.
E2_POLICIES = ("none", "power-aware", "unaware", "round-robin")


def bench_configs(horizon_us: float):
    """The E2 sweep configs (8x8 mesh, 16 nm, one config per policy)."""
    base = SystemConfig(
        width=8,
        height=8,
        node_name="16nm",
        horizon_us=horizon_us,
        seed=11,
    )
    return [replace(base, test_policy=policy) for policy in E2_POLICIES]


def run_gate(horizon_us: float, repeats: int, max_overhead: float) -> dict:
    """Plain sweep vs instrumented sweep, plus every gate check.

    The two variants are timed in interleaved pairs (best-of-``repeats``
    each) after one untimed warmup run: timing one variant's block after
    the other's lets CPU frequency drift masquerade as telemetry cost.
    """
    configs = bench_configs(horizon_us)

    run_system(configs[0])  # warmup, untimed

    plain_s = instrumented_s = float("inf")
    plain = instrumented = registry = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        plain = run_many(configs)
        plain_s = min(plain_s, time.perf_counter() - t0)

        candidate = MetricsRegistry()
        configure_telemetry(candidate)
        try:
            t0 = time.perf_counter()
            result = run_many(configs)
            instrumented_s = min(instrumented_s, time.perf_counter() - t0)
        finally:
            configure_telemetry(None)
        instrumented, registry = result, candidate

    plain_digest = rows_digest([r.summary() for r in plain])
    instrumented_digest = rows_digest([r.summary() for r in instrumented])
    overhead = (
        instrumented_s / plain_s - 1.0 if plain_s > 0 else float("inf")
    )
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    report = {
        "horizon_us": horizon_us,
        "repeats": repeats,
        "plain_s": round(plain_s, 4),
        "instrumented_s": round(instrumented_s, 4),
        "overhead": round(overhead, 4),
        "max_overhead": max_overhead,
        "plain_digest": plain_digest,
        "instrumented_digest": instrumented_digest,
        "sim_runs": counters.get("sim.runs", 0),
        "sim_events": counters.get("sim.events", 0),
        "power_samples": gauges.get("power.measured_w", {}).get("count", 0),
        "failures": [],
    }
    if instrumented_digest != plain_digest:
        report["failures"].append(
            "digest mismatch: telemetry perturbed the sweep"
        )
    if report["sim_runs"] != len(configs):
        report["failures"].append(
            f"registry counted {report['sim_runs']} run(s), expected "
            f"{len(configs)}: instrumentation is not wired through"
        )
    if report["sim_events"] <= 0 or report["power_samples"] <= 0:
        report["failures"].append(
            "registry collected no events/power samples: dead pipeline"
        )
    if overhead > max_overhead:
        report["failures"].append(
            f"telemetry overhead {overhead:.1%} exceeds the "
            f"{max_overhead:.0%} budget"
        )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--horizon-us", type=float, default=60_000.0)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="wall-clock measurements per variant; best is kept (default 3)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.25,
        help="instrumented/plain wall-clock overhead ceiling "
             "(default 0.25; CI runners are noisy)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help=f"enforce the {STRICT_MAX_OVERHEAD:.0%} overhead contract "
             f"regardless of --max-overhead",
    )
    parser.add_argument(
        "--json", default=None, help="write the report to this path"
    )
    args = parser.parse_args(argv)
    max_overhead = STRICT_MAX_OVERHEAD if args.strict else args.max_overhead

    report = run_gate(args.horizon_us, args.repeats, max_overhead)

    print(
        f"plain: {report['plain_s']:.3f}s   "
        f"instrumented: {report['instrumented_s']:.3f}s   "
        f"overhead: {report['overhead']:+.1%} "
        f"(budget {report['max_overhead']:.0%})"
    )
    print(
        f"collected: {report['sim_runs']} run(s), "
        f"{report['sim_events']} event(s), "
        f"{report['power_samples']} power sample(s)"
    )
    print(f"plain digest:        {report['plain_digest']}")
    print(f"instrumented digest: {report['instrumented_digest']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    for failure in report["failures"]:
        print(f"FAIL: {failure}", file=sys.stderr)
    if report["failures"]:
        return 1
    print("telemetry gate ok: invisible, live, within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Cache effectiveness gate: warm sweeps must be fast *and* identical.

Runs the same ``run_many`` sweep twice against one cache directory:

* **cold** — every point is a miss, computed and stored;
* **warm** — a fresh :class:`~repro.cache.RunCache` over the same
  directory must serve every point (100% hit rate, zero misses).

and gates on both halves of the cache's contract:

* **identity** — the cold and warm sweeps' ``rows_digest`` over the
  full-precision summary rows are byte-identical (a cached result is a
  pickle round-trip of the original, so any drift is a bug);
* **speed** — the warm sweep is at least ``--min-speedup`` (default
  10x) faster than the cold one.  Deserializing a blob is orders of
  magnitude cheaper than simulating, so 10x is a conservative floor
  even at CI smoke scale.

Usage::

    PYTHONPATH=src python benchmarks/bench_cache.py                   # full scale
    PYTHONPATH=src python benchmarks/bench_cache.py --horizon-us 5000 # CI smoke
    PYTHONPATH=src python benchmarks/bench_cache.py --jobs 2 --json out.json

Exit status is non-zero on a digest mismatch, an imperfect warm hit
rate, or a missed speedup floor.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
import time

from repro.cache import RunCache
from repro.core.system import SystemConfig
from repro.experiments.parallel import run_many
from repro.obs.provenance import rows_digest


def sweep_configs(horizon_us: float, points: int):
    """A TDP sweep at the paper's default scale (8x8 mesh, 16 nm)."""
    return [
        SystemConfig(
            width=8,
            height=8,
            node_name="16nm",
            horizon_us=horizon_us,
            tdp_w=40.0 + 10.0 * i,
            test_policy="power-aware",
            seed=17 + i,
        )
        for i in range(points)
    ]


def run_gate(
    cache_dir: str,
    horizon_us: float,
    points: int,
    jobs: int,
    min_speedup: float,
) -> dict:
    """Cold sweep, warm sweep, and every gate check; returns the report."""
    configs = sweep_configs(horizon_us, points)

    cold_cache = RunCache(cache_dir=cache_dir)
    t0 = time.perf_counter()
    cold = run_many(configs, jobs, cache=cold_cache)
    cold_s = time.perf_counter() - t0

    warm_cache = RunCache(cache_dir=cache_dir)
    t0 = time.perf_counter()
    warm = run_many(configs, jobs, cache=warm_cache)
    warm_s = time.perf_counter() - t0

    cold_digest = rows_digest([r.summary() for r in cold])
    warm_digest = rows_digest([r.summary() for r in warm])
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    report = {
        "points": points,
        "horizon_us": horizon_us,
        "jobs": jobs,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "min_speedup": min_speedup,
        "cold_digest": cold_digest,
        "warm_digest": warm_digest,
        "cold_stats": cold_cache.stats.as_dict(),
        "warm_stats": warm_cache.stats.as_dict(),
        "failures": [],
    }
    if warm_digest != cold_digest:
        report["failures"].append("digest mismatch: warm != cold")
    if cold_cache.stats.misses != points or cold_cache.stats.hits != 0:
        report["failures"].append(
            f"cold run expected {points} misses, got "
            f"{cold_cache.stats.as_dict()}"
        )
    if warm_cache.stats.hits != points or warm_cache.stats.misses != 0:
        report["failures"].append(
            f"warm run expected {points} hits (100%), got "
            f"{warm_cache.stats.as_dict()}"
        )
    if speedup < min_speedup:
        report["failures"].append(
            f"speedup {speedup:.1f}x below the {min_speedup:g}x floor"
        )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--horizon-us", type=float, default=30_000.0)
    parser.add_argument("--points", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="warm/cold wall-clock floor (default 10x)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="reuse a directory (default: fresh temp dir)",
    )
    parser.add_argument(
        "--json", default=None, help="write the report to this path"
    )
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        report = run_gate(
            args.cache_dir,
            args.horizon_us,
            args.points,
            args.jobs,
            args.min_speedup,
        )
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as d:
            report = run_gate(
                d, args.horizon_us, args.points, args.jobs, args.min_speedup
            )

    print(
        f"cold: {report['cold_s']:.2f}s ({report['points']} miss(es))   "
        f"warm: {report['warm_s']:.3f}s "
        f"({report['warm_stats']['hits']} hit(s))   "
        f"speedup: {report['speedup']:.1f}x "
        f"(floor {report['min_speedup']:g}x)"
    )
    print(f"cold digest: {report['cold_digest']}")
    print(f"warm digest: {report['warm_digest']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    for failure in report["failures"]:
        print(f"FAIL: {failure}", file=sys.stderr)
    if report["failures"]:
        return 1
    print("cache gate ok: warm sweep identical and fast")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""A2: TDP guard-band ablation — safety margin vs. throughput."""

from conftest import run_once

from repro.experiments import run_a2_guard_band


def test_a2_guard_band(benchmark):
    result = run_once(benchmark, run_a2_guard_band, horizon_us=60_000.0)
    rows = result.rows
    # The default 2% guard keeps the hard cap clean.
    assert result.scalars["violations_at_default_guard"] == 0.0
    # Throughput degrades gracefully as the guard grows.
    assert rows[-1][1] <= rows[0][1] + 1e-6

"""A1: criticality-metric composition ablation.

The stress term is what makes testing adaptive (high busy-tests
correlation); the time term is what bounds staleness on idle cores
(more tests overall). The balanced default buys both.
"""

from conftest import run_once

from repro.experiments import run_a1_criticality_weights


def test_a1_criticality_weights(benchmark):
    result = run_once(benchmark, run_a1_criticality_weights, horizon_us=60_000.0)
    assert result.scalars["corr[stress-only]"] > result.scalars["corr[time-only]"]
    rows = {r[0]: r for r in result.rows}
    assert rows["time-only"][1] > rows["stress-only"][1]

"""A3: concurrent-test-cap ablation — campaign speed vs. intrusiveness."""

from conftest import run_once

from repro.experiments import run_a3_test_concurrency


def test_a3_test_concurrency(benchmark):
    result = run_once(benchmark, run_a3_test_concurrency, horizon_us=60_000.0)
    rows = {r[0]: r for r in result.rows}
    assert rows[16][1] >= rows[1][1]          # more slots, more tests
    assert all(row[3] < 1.0 for row in result.rows)  # penalty stays < 1%
    assert all(row[5] == 0.0 for row in result.rows)  # cap never violated

"""E8: permanent-fault detection latency per scheduler.

Online testing exists to catch runtime faults: schedulers that test detect
injected faults with bounded latency; the no-test baseline never does.
"""

import math

from conftest import run_once

from repro.experiments import run_e8_detection_latency


def test_e8_detection_latency(benchmark):
    result = run_once(
        benchmark, run_e8_detection_latency, horizon_us=60_000.0
    )
    rows = {r[0]: r for r in result.rows}
    assert rows["none"][2] == 0              # no tests, no detections
    assert rows["power-aware"][2] > 0        # proposed detects faults
    assert not math.isnan(rows["power-aware"][4])

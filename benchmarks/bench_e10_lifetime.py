"""E10: lifetime extension from utilization-oriented mapping (DATE'16).

Wear-levelled mapping slows the aging of the worst-stressed core, which
is what sets the chip's expected time-to-first-failure.
"""

from conftest import run_once

from repro.experiments import run_e10_lifetime


def test_e10_lifetime(benchmark):
    result = run_once(benchmark, run_e10_lifetime, horizon_us=60_000.0)
    rows = {r[0]: r for r in result.rows}
    # The proposed mapper levels wear at least as well as contiguous...
    assert rows["test-aware"][2] <= rows["contiguous"][2] + 0.05
    # ...and extends expected lifetime.
    assert result.scalars["lifetime_gain_pct"] > 0.0

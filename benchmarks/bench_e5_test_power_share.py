"""E5: energy share dedicated to online testing (TC'16: ~2%).

Across offered loads the proposed scheduler dedicates only a few percent
of consumed energy to SBST sessions.
"""

from conftest import run_once

from repro.experiments import run_e5_test_power_share


def test_e5_test_power_share(benchmark):
    result = run_once(benchmark, run_e5_test_power_share, horizon_us=60_000.0)
    assert 0.0 < result.scalars["mean_share"] < 0.05
    assert result.scalars["max_share"] < 0.08

#!/usr/bin/env python
"""Documentation hygiene checks: links, orphan guides, docstrings.

Three independent gates, all stdlib-only:

* **Link check** — every relative Markdown link in ``README.md`` and
  ``docs/**/*.md`` must point at a file that exists (external
  ``http(s)``/``mailto`` links and pure ``#anchor`` links are skipped;
  anchors on relative links are stripped before the existence check).

* **Orphan-guide check** — every guide page directly under ``docs/``
  must be reachable from the ``docs/index.md`` landing page, so no
  guide silently drops out of the documentation graph.

* **Docstring lint** — every public module, class, function, and public
  method under the lint roots (see ``LINT_ROOTS``) must carry a
  docstring.  "Public" means: reachable via a name that does not start
  with ``_``.  Inherited members defined outside the linted package are
  not re-linted.

Exit status is non-zero if any gate fails; CI runs this in the docs
job so undocumented surface, dead links, or orphan guides fail the
build.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import os
import pkgutil
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Packages whose public surface must be fully docstring'd.
LINT_ROOTS = [
    "repro.cache",
    "repro.campaign",
    "repro.dse",
    "repro.obs",
    "repro.serve",
    "repro.telemetry",
    "repro.verify",
]

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


# ----------------------------------------------------------------------
# Link checking
# ----------------------------------------------------------------------
def doc_files() -> list:
    """README plus every Markdown file under docs/, repo-relative."""
    files = ["README.md"]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    for dirpath, _dirnames, filenames in os.walk(docs_dir):
        for filename in sorted(filenames):
            if filename.endswith(".md"):
                path = os.path.join(dirpath, filename)
                files.append(os.path.relpath(path, REPO_ROOT))
    return files


def check_links() -> list:
    """Dead relative links as ``"file: target"`` strings."""
    problems = []
    for rel_path in doc_files():
        path = os.path.join(REPO_ROOT, rel_path)
        if not os.path.exists(path):
            continue
        text = open(path, encoding="utf-8").read()
        base = os.path.dirname(path)
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.normpath(os.path.join(base, target_path))
            if not os.path.exists(resolved):
                problems.append(f"{rel_path}: dead link -> {target}")
    return problems


def check_orphan_guides() -> list:
    """Guide pages under ``docs/`` not linked from ``docs/index.md``.

    Only top-level guides are gated; the generated ``docs/api/`` tree
    is reachable through ``docs/api/index.md`` and regenerated
    wholesale, so it polices itself via ``gen_api_docs.py --check``.
    """
    docs_dir = os.path.join(REPO_ROOT, "docs")
    index_path = os.path.join(docs_dir, "index.md")
    if not os.path.exists(index_path):
        return ["docs/index.md: missing (the landing page is mandatory)"]
    text = open(index_path, encoding="utf-8").read()
    linked = set()
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        linked.add(os.path.normpath(os.path.join(docs_dir, target_path)))
    problems = []
    for filename in sorted(os.listdir(docs_dir)):
        if not filename.endswith(".md") or filename == "index.md":
            continue
        if os.path.join(docs_dir, filename) not in linked:
            problems.append(
                f"docs/{filename}: orphan guide (not linked from "
                f"docs/index.md)"
            )
    return problems


# ----------------------------------------------------------------------
# Docstring lint
# ----------------------------------------------------------------------
def _iter_modules(root: str):
    module = importlib.import_module(root)
    yield root, module
    search_path = getattr(module, "__path__", None)
    if search_path is None:
        return
    for info in pkgutil.walk_packages(search_path, prefix=root + "."):
        yield info.name, importlib.import_module(info.name)


def _missing_in_class(qualname: str, cls, module_name: str) -> list:
    missing = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        target = member
        if isinstance(member, (classmethod, staticmethod)):
            target = member.__func__
        elif isinstance(member, property):
            target = member.fget
        if target is None or not callable(target):
            continue
        if getattr(target, "__module__", None) != module_name:
            continue
        if not inspect.getdoc(target):
            missing.append(f"{qualname}.{name}")
    return missing


def check_docstrings(roots=None) -> list:
    """Public names lacking docstrings, as dotted-path strings."""
    missing = []
    for root in roots or LINT_ROOTS:
        for module_name, module in _iter_modules(root):
            if module_name.rsplit(".", 1)[-1].startswith("_"):
                continue
            if not inspect.getdoc(module):
                missing.append(module_name)
            for name in dir(module):
                if name.startswith("_"):
                    continue
                obj = getattr(module, name)
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module_name:
                    continue  # re-export; linted at its defining module
                qualname = f"{module_name}.{name}"
                if not inspect.getdoc(obj):
                    missing.append(qualname)
                if inspect.isclass(obj):
                    missing.extend(
                        _missing_in_class(qualname, obj, module_name)
                    )
    return sorted(set(missing))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--links-only", action="store_true", help="skip the docstring lint"
    )
    parser.add_argument(
        "--docstrings-only", action="store_true", help="skip the link check"
    )
    args = parser.parse_args(argv)
    failed = False
    if not args.docstrings_only:
        dead = check_links()
        for problem in dead:
            print(problem, file=sys.stderr)
        if dead:
            failed = True
        else:
            print(f"links ok ({len(doc_files())} files scanned)")
        orphans = check_orphan_guides()
        for problem in orphans:
            print(problem, file=sys.stderr)
        if orphans:
            failed = True
        else:
            print("guides ok (all reachable from docs/index.md)")
    if not args.links_only:
        missing = check_docstrings()
        for name in missing:
            print(f"missing docstring: {name}", file=sys.stderr)
        if missing:
            failed = True
        else:
            print(f"docstrings ok ({', '.join(LINT_ROOTS)})")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

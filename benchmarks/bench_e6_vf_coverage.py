"""E6: test coverage across voltage/frequency levels (TC'16 extension).

The rotating level policy covers every DVFS level of the ladder during
the campaign; the nominal-only policy leaves low-voltage corners dark.
"""

from conftest import run_once

from repro.experiments import run_e6_vf_coverage


def test_e6_vf_coverage(benchmark):
    result = run_once(benchmark, run_e6_vf_coverage, horizon_us=60_000.0)
    assert result.scalars["levels_covered_rotate"] == 8.0
    assert (
        result.scalars["levels_covered_rotate"]
        > result.scalars["levels_covered_nominal"]
    )

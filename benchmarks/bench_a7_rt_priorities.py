"""A7: mixed-criticality priorities (hard/soft/no real-time, ICCD'14)."""

from conftest import run_once

from repro.experiments import run_a7_rt_priorities


def test_a7_rt_priorities(benchmark):
    result = run_once(benchmark, run_a7_rt_priorities, horizon_us=60_000.0)
    rows = {(r[0], r[1]): r for r in result.rows}
    fifo_hard = rows[("fifo", "hard-rt")][2]
    prio_hard = rows[("priorities", "hard-rt")][2]
    # Hard real-time waiting collapses by orders of magnitude.
    assert prio_hard < fifo_hard / 10.0
    # Soft-RT also improves; best-effort pays, but the budget stays safe.
    assert rows[("priorities", "soft-rt")][2] < rows[("fifo", "soft-rt")][2]
    assert all(r[4] == 0.0 for r in result.rows)

"""E1: chip power vs. time against the TDP budget (16 nm).

Reconstructs the power-trace figure: the proposed scheduler fills budget
valleys with test power without ever puncturing the cap; the power-unaware
baseline violates it.
"""

from conftest import run_once

from repro.experiments import run_e1_power_trace


def test_e1_power_trace(benchmark):
    result = run_once(benchmark, run_e1_power_trace, horizon_us=60_000.0)
    rows = {r[0]: r for r in result.rows}
    # Proposed: peak power at or under the cap, zero violations.
    assert rows["power-aware"][3] == 0.0
    assert rows["power-aware"][2] <= result.scalars["tdp_w"] + 1e-6
    # Test power actually flowed (budget valleys were used).
    assert rows["power-aware"][4] > 0

"""Lockstep batch-engine gate: digest identity plus throughput floor.

The batch engine (``repro.batch``) promises an *exact refactor*:
``run_batch(config, seeds)`` must be digest-identical, per seed, to
``run_system(replace(config, seed=s))`` — and it must be worth having,
i.e. faster per event than one scalar run at a time.  This gate checks
both on the default-scale E2 workload (8x8 mesh at 16 nm):

* **identity** (always) — every lane of a ``--batch`` lockstep run is
  compared against its scalar twin on :func:`repro.batch.result_digest`
  (summary row, per-core tallies, fault records, counters — everything
  observable).  One diverged float anywhere breaks the gate.  The
  comparison runs twice: on the homogeneous grid and on a mixed
  four-type grid (:data:`MIXED_TYPE_CYCLE`), so the per-lane
  type-index column of the SoA arrays is exercised too;
* **throughput** (``--strict`` only) — the batched kernel's best-of-
  ``--repeats`` events/s at ``--batch`` lanes must be at least
  ``--min-speedup`` (default 3x) the *recorded* scalar kernel rate in
  ``BENCH_perf.json`` — the same frozen pre-optimisation baseline the
  fast-path gate (``bench_perf_kernel.py``) measures against, on both
  the homogeneous and the mixed-type grid.  The comparison is only
  made when the horizon matches the recording.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py                  # digest gate
    PYTHONPATH=src python benchmarks/bench_batch.py --strict         # + 3x floor
    PYTHONPATH=src python benchmarks/bench_batch.py --horizon-us 5000  # CI smoke

Exit status is non-zero on any digest mismatch (and, with ``--strict``,
a missed throughput floor).  Like every wall-clock gate in this repo,
the floor is meaningful only on the machine that recorded the baseline;
digests are meaningful everywhere.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.batch import run_batch, result_digest
from repro.core.system import ManycoreSystem, run_system
from repro.experiments.runners import DEFAULT_CONFIG

#: Lane seeds follow the batch-kernel protocol recorded in
#: ``BENCH_perf.json`` (lane i runs ``START + STEP * i``), disjoint from
#: the E2 sweep seeds so neither benchmark warms the other's caches.
BATCH_SEED_START = 101
BATCH_SEED_STEP = 7

#: Tile-type cycle of the mixed-grid gate: the batch engine's SoA
#: arrays carry a per-lane type-index column, and its digest-identity
#: and throughput-floor contracts must hold on heterogeneous grids too.
MIXED_TYPE_CYCLE = ("std", "io", "o3", "accel")

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def lane_seeds(n: int) -> list:
    """The first ``n`` lane seeds of the batch-kernel protocol."""
    return [BATCH_SEED_START + BATCH_SEED_STEP * i for i in range(n)]


def mixed_type_grid(n_cores: int) -> tuple:
    """A deterministic four-type grid cycling :data:`MIXED_TYPE_CYCLE`."""
    cycle = MIXED_TYPE_CYCLE
    return tuple(cycle[i % len(cycle)] for i in range(n_cores))


def _bench_config(horizon_us: float, mixed: bool):
    config = replace(DEFAULT_CONFIG, horizon_us=horizon_us)
    if mixed:
        grid = mixed_type_grid(config.width * config.height)
        config = replace(config, type_grid=grid)
    return config


def digest_gate(horizon_us: float, batch: int, mixed: bool = False) -> dict:
    """Per-seed digest comparison: one lockstep run vs. scalar twins."""
    config = _bench_config(horizon_us, mixed)
    seeds = lane_seeds(batch)
    batched = run_batch(config, seeds)
    mismatches = []
    for seed, result in zip(seeds, batched):
        scalar = run_system(replace(config, seed=seed))
        if result_digest(result) != result_digest(scalar):
            mismatches.append(seed)
    return {
        "batch": batch,
        "seeds": seeds,
        "mixed": mixed,
        "events_fired": sum(r.events_fired for r in batched),
        "mismatched_seeds": mismatches,
    }


def throughput(
    horizon_us: float, batch: int, repeats: int, mixed: bool = False
) -> dict:
    """Best-of-``repeats`` batched kernel rate at ``batch`` lanes.

    Protocol matches the ``batch`` section of ``BENCH_perf.json``:
    arrival traces pre-generated untimed, one untimed warm-up batch,
    then the best rate over ``repeats`` timed runs (noise only ever
    slows a run down, so the best repeat is the tightest bound on the
    true kernel speed).
    """
    config = _bench_config(horizon_us, mixed)
    seeds = lane_seeds(batch)
    for seed in seeds:
        ManycoreSystem(replace(config, seed=seed)).generate_arrivals()
    run_batch(config, seeds[:1])
    best = None
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        results = run_batch(config, seeds)
        wall = time.perf_counter() - t0
        events = sum(r.events_fired for r in results)
        rate = events / wall if wall > 0 else 0.0
        if best is None or rate > best["events_per_s"]:
            best = {"events_fired": events, "wall_s": wall, "events_per_s": rate}
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--horizon-us",
        type=float,
        default=60_000.0,
        help="simulation horizon (default: the full 60 ms scale)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=16,
        help="lockstep lanes for both gates (default 16)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed throughput repeats, best kept (default 3)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="events/s floor vs. the recorded scalar kernel (default 3.0)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail when the throughput floor vs. BENCH_perf.json is missed",
    )
    parser.add_argument(
        "--json", default=None, help="write the report to this path"
    )
    args = parser.parse_args(argv)

    failures = []
    print(
        f"batch gate: 8x8 mesh, {args.horizon_us / 1000:g} ms, "
        f"B={args.batch} lanes, seeds {BATCH_SEED_START}+{BATCH_SEED_STEP}k"
    )
    identities = {}
    rates = {}
    for label, mixed in (("homogeneous", False), ("mixed-type", True)):
        identity = digest_gate(args.horizon_us, args.batch, mixed=mixed)
        identities[label] = identity
        if identity["mismatched_seeds"]:
            failures.append(
                f"{label} batched results diverge from scalar runs for "
                f"seed(s) {identity['mismatched_seeds']}"
            )
        else:
            print(
                f"digest identity ({label}): {args.batch}/{args.batch} "
                f"lanes match their scalar twins "
                f"({identity['events_fired']} events)"
            )

        rate = throughput(args.horizon_us, args.batch, args.repeats, mixed)
        rates[label] = rate
        print(
            f"batched kernel ({label}): {rate['events_fired']} events in "
            f"{rate['wall_s']:.2f} s -> {rate['events_per_s']:.0f} events/s "
            f"(best of {args.repeats})"
        )

    speedups = {}
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; skipping the throughput floor")
    else:
        baseline = json.loads(BASELINE_PATH.read_text())
        scalar_rate = baseline.get("kernel", {}).get("events_per_s", 0.0)
        if baseline.get("horizon_us") != args.horizon_us:
            print(
                "baseline recorded at a different scale; "
                "skipping the throughput floor"
            )
        elif scalar_rate <= 0:
            print("baseline has no scalar kernel rate; skipping the floor")
        else:
            # Both grids must clear the same floor against the recorded
            # homogeneous scalar rate: heterogeneity may not cost the
            # lockstep engine its reason to exist.
            for label, rate in rates.items():
                speedup = rate["events_per_s"] / scalar_rate
                speedups[label] = speedup
                print(
                    f"{label} vs recorded scalar kernel "
                    f"({scalar_rate:.0f} events/s): {speedup:.2f}x "
                    f"(floor {args.min_speedup:g}x"
                    f"{', gated' if args.strict else ', informational'})"
                )
                if args.strict and speedup < args.min_speedup:
                    failures.append(
                        f"{label} batched events/s {speedup:.2f}x below "
                        f"the {args.min_speedup:g}x floor vs. the recorded "
                        f"scalar kernel"
                    )

    if args.json:
        report = {
            "horizon_us": args.horizon_us,
            "batch": args.batch,
            "repeats": args.repeats,
            "identity": identities["homogeneous"],
            "identity_mixed": identities["mixed-type"],
            "throughput": rates["homogeneous"],
            "throughput_mixed": rates["mixed-type"],
            "speedup_vs_recorded_scalar": speedups.get("homogeneous"),
            "speedup_vs_recorded_scalar_mixed": speedups.get("mixed-type"),
            "min_speedup": args.min_speedup,
            "strict": args.strict,
            "failures": failures,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("batch gate ok: lockstep lanes are digest-exact scalar twins")
    return 0


if __name__ == "__main__":
    sys.exit(main())

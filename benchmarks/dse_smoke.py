"""DSE resume-identity smoke: kill a search, resume, compare fronts.

This is the CI gate for the contracts ``repro.dse`` makes on top of the
campaign layer:

* **resume identity** — a search killed mid-generation (simulated with
  the deterministic ``--interrupt-after`` hook) and then resumed
  produces a ``front.json`` byte-identical to a straight uninterrupted
  run of the same spec, ``front_digest`` and all;
* **decision quality** — on the smoke space the finished search finds
  at least one configuration that strictly dominates the paper-default
  configuration on >= 2 objectives at equal escapes;
* **efficiency** — the search evaluates at most 70% of the exhaustive
  grid, and both surrogate pruning and archive cache hits contribute
  (``dse.pruned`` and ``dse.cache_hits`` counters are non-zero).

The script drives the real CLI (``python -m repro dse ...``), so
argument plumbing, exit codes and the artifact paths are exercised:

1. ``dse run`` on the smoke spec with ``--interrupt-after`` set inside
   generation 1 — must exit with code 3 (interrupted) and leave the
   completed generation-0 campaign behind;
2. ``dse run --dir`` on the same directory (no spec argument: the saved
   ``spec.json`` is reused) — must exit 0;
3. ``dse run`` of the same spec into a *fresh* directory, straight
   through — must exit 0;
4. the two ``front.json`` files must be byte-identical;
5. the resumed search's ``report.json`` must pass the quality and
   efficiency gates above (checked through ``repro.dse.report_search``,
   the same reader the ``dse report`` command uses).

``--artifacts DIR`` copies the resumed search's ``front.json`` and
``report.json`` there for CI artifact upload.  Exit status is non-zero
on any step failure, digest mismatch, or gate violation.

Usage::

    PYTHONPATH=src python benchmarks/dse_smoke.py --jobs 2
    PYTHONPATH=src python benchmarks/dse_smoke.py --artifacts out/
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

SPEC = Path(__file__).resolve().parent / "dse_smoke_spec.json"

#: Interrupt after this many checkpointed seed-level results.  The
#: smoke spec's generation 0 evaluates 8 candidates x 2 seeds = 16
#: points, so a budget of 20 kills the search 4 points into
#: generation 1 — after a full generation completed, mid-way through
#: the next.
INTERRUPT_AFTER = 20

#: The search must evaluate at most this fraction of the exhaustive
#: grid (pruning + cache hits make up the rest).
MAX_EVALUATED_FRACTION = 0.7


def _cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
    )


def _step(name: str, proc: subprocess.CompletedProcess, want_rc: int) -> None:
    status = "ok" if proc.returncode == want_rc else "FAIL"
    print(f"[{status}] {name}: exit {proc.returncode} (want {want_rc})")
    if proc.returncode != want_rc:
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        sys.exit(1)


def _check_gates(search_dir: Path) -> int:
    from repro.dse import report_search

    outcome = report_search(str(search_dir))
    if not outcome.complete:
        print("FAIL: resumed search is not complete", file=sys.stderr)
        return 1

    dominating = outcome.dominating_default(min_better=2)
    if not dominating:
        print(
            "FAIL: no front point dominates the paper-default config "
            "on >= 2 objectives at equal escapes",
            file=sys.stderr,
        )
        return 1
    best = dominating[0]
    print(
        f"[ok]   decision quality: {len(dominating)} front point(s) "
        f"dominate the default, e.g. {best['params']}"
    )

    exhaustive = outcome.exhaustive_size
    evaluated = outcome.counters["evaluated"]
    budget = int(MAX_EVALUATED_FRACTION * exhaustive)
    if evaluated > budget:
        print(
            f"FAIL: evaluated {evaluated} points, budget is {budget} "
            f"(70% of the exhaustive {exhaustive})",
            file=sys.stderr,
        )
        return 1
    pruned = outcome.counters["pruned"]
    hits = outcome.counters["cache_hits"]
    if pruned < 1 or hits < 1:
        print(
            f"FAIL: expected both pruning and cache hits to contribute "
            f"(pruned={pruned}, cache_hits={hits})",
            file=sys.stderr,
        )
        return 1
    print(
        f"[ok]   efficiency: evaluated {evaluated}/{exhaustive} exhaustive "
        f"points (pruned {pruned}, archive hits {hits})"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", default="2", help="worker processes")
    parser.add_argument(
        "--artifacts", default=None,
        help="directory to copy front.json and report.json into",
    )
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="dse-smoke-"))
    interrupted = workdir / "interrupted"
    straight = workdir / "straight"

    proc = _cli(
        "dse", "run", str(SPEC), "--dir", str(interrupted),
        "--interrupt-after", str(INTERRUPT_AFTER), "--jobs", args.jobs,
    )
    _step("run (killed inside generation 1)", proc, want_rc=3)

    gen0 = interrupted / "gen-000" / "results.jsonl"
    if not gen0.exists():
        print("FAIL: generation 0 checkpoint missing after the kill",
              file=sys.stderr)
        return 1
    print("[ok]   generation-0 checkpoint survived the kill")

    _step(
        "resume to completion",
        _cli("dse", "run", "--dir", str(interrupted), "--jobs", args.jobs),
        want_rc=0,
    )
    _step(
        "uninterrupted control run",
        _cli("dse", "run", str(SPEC), "--dir", str(straight),
             "--jobs", args.jobs),
        want_rc=0,
    )

    resumed_front = (interrupted / "front.json").read_bytes()
    straight_front = (straight / "front.json").read_bytes()
    if resumed_front != straight_front:
        print("FAIL: resume identity broken: front.json differs between "
              "the resumed and uninterrupted searches", file=sys.stderr)
        return 1
    import json
    digest = json.loads(resumed_front)["front_digest"]
    print(f"[ok]   resume identity: front digest {digest}")

    rc = _check_gates(interrupted)
    if rc:
        return rc

    proc = _cli("dse", "report", str(interrupted))
    _step("dse report renders", proc, want_rc=0)

    if args.artifacts:
        dest = Path(args.artifacts)
        dest.mkdir(parents=True, exist_ok=True)
        for name in ("front.json", "report.json", "spec.json"):
            shutil.copy(interrupted / name, dest / name)
        print(f"[ok]   artifacts copied to {dest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

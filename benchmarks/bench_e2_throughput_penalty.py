"""E2: system-throughput penalty of online testing (headline table).

Paper claim: the proposed power-aware scheduler tests the manycore within
less than 1% penalty on system throughput at the 16 nm node.
"""

from conftest import run_once

from repro.experiments import run_e2_throughput_penalty


def test_e2_throughput_penalty(benchmark):
    result = run_once(benchmark, run_e2_throughput_penalty, horizon_us=60_000.0)
    assert result.scalars["proposed_penalty_pct"] < 1.0
    rows = {r[0]: r for r in result.rows}
    # The power-unaware baseline costs measurably more throughput.
    assert rows["unaware"][2] > rows["power-aware"][2]
    assert rows["power-aware"][3] > 0  # and tests actually ran

"""A6: process-variation ablation — claims on a non-uniform die."""

from conftest import run_once

from repro.experiments import run_a6_variation


def test_a6_variation(benchmark):
    result = run_once(benchmark, run_a6_variation, horizon_us=60_000.0)
    rows = {r[0]: r for r in result.rows}
    assert rows["varied-die"][4] == 0.0       # budget still safe
    assert result.scalars["penalty[varied-die]"] < 1.0  # headline claim holds

"""Serving crash-recovery smoke: overlap, kill -9, restart, resume.

This is the CI gate for the server's durability story, driven through
real subprocesses of ``python -m repro serve``:

1. boot a server; two clients submit **overlapping** sweeps
   concurrently — both streams must complete, agree with each other,
   and agree with a direct :func:`repro.experiments.run_many` oracle;
2. submit a campaign and ``SIGKILL`` the server mid-run (after at least
   one checkpointed result, before the manifest exists) — the ugliest
   possible death: no drain, no flush, no goodbye;
3. restart a server on the same state dir — startup auto-resume must
   pick the interrupted campaign up and finish it;
4. the resumed campaign's ``aggregate_digest`` must be byte-identical
   to the same spec run uninterrupted through
   :func:`repro.campaign.run_campaign` in this process;
5. the restarted server must still answer ``/status`` and ``/metrics``
   (both archived with ``--artifacts``), and shut down gracefully with
   exit code 0.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py
    PYTHONPATH=src python benchmarks/serve_smoke.py --artifacts out/

Exit status is non-zero on any stream failure, digest mismatch, missed
resume, or unclean shutdown.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.batch import result_digest
from repro.campaign import CampaignSpec, run_campaign
from repro.core.system import SystemConfig
from repro.experiments.parallel import run_many
from repro.serve.campaigns import CAMPAIGNS_SUBDIR
from repro.serve.client import LocalServer, ServeClient, sweep_request_doc

BASE = {"width": 2, "height": 2, "horizon_us": 2000.0}

#: The campaign is sized so the kill lands mid-run: enough points that
#: checkpoint N exists while the manifest does not.
CAMPAIGN_SPEC = {
    "name": "serve-smoke",
    "base": dict(BASE, horizon_us=20000.0),
    "grid": {"tdp_w": [40.0, 60.0]},
    "seeds": {"start": 1, "count": 4},
}


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


async def overlapping_sweeps(port: int) -> dict:
    """Two tenants sweep overlapping seed ranges concurrently."""
    client = ServeClient("127.0.0.1", port)
    doc_a = sweep_request_doc(
        [{"seed": s} for s in (1, 2, 3, 4)], tenant="alice", base=BASE
    )
    doc_b = sweep_request_doc(
        [{"seed": s} for s in (3, 4, 5, 6)], tenant="bob", base=BASE
    )
    events_a, events_b = await asyncio.gather(
        client.sweep(doc_a, max_retries=10),
        client.sweep(doc_b, max_retries=10),
    )
    status = await client.status()
    return {"a": events_a, "b": events_b, "status": status}


def check_overlap(load: dict) -> int:
    by_seed = {}
    for name, seeds in (("a", (1, 2, 3, 4)), ("b", (3, 4, 5, 6))):
        events = load[name]
        if events[-1].get("event") != "done" or events[-1].get("errors"):
            return fail(f"stream {name} ended badly: {events[-1]}")
        results = ServeClient.results_by_index(events)
        for index, seed in enumerate(seeds):
            served = results[index]["result_digest"]
            previous = by_seed.setdefault(seed, served)
            if previous != served:
                return fail(f"seed {seed}: the two streams disagree")
    direct = run_many(
        [SystemConfig(**BASE, seed=s) for s in sorted(by_seed)]
    )
    for seed, result in zip(sorted(by_seed), direct):
        if by_seed[seed] != result_digest(result):
            return fail(f"seed {seed}: served != direct run_many")
    counters = load["status"]["engine"]["counters"]
    print(
        f"[ok]   overlapping sweeps agree with run_many "
        f"({int(counters.get('serve.computed', 0))} computed, "
        f"{int(counters.get('serve.coalesced', 0))} coalesced)"
    )
    return 0


async def submit_campaign_detached(port: int) -> None:
    """Fire the campaign submission and read only the accept event.

    The stream is abandoned afterwards on purpose — the server is about
    to be SIGKILLed and nobody will be left to answer.
    """
    client = ServeClient("127.0.0.1", port)
    stream = client.campaign_events(
        {"tenant": "alice", "spec": CAMPAIGN_SPEC}
    )
    accepted = await stream.__anext__()
    if accepted.get("event") != "accepted":
        raise RuntimeError(f"campaign not accepted: {accepted}")
    await stream.aclose()


def campaign_dir(state_dir: Path) -> Path:
    spec = CampaignSpec.from_dict(CAMPAIGN_SPEC)
    job_id = f"{spec.name}-{spec.spec_digest()[:12]}"
    return state_dir / CAMPAIGNS_SUBDIR / job_id


def wait_for_checkpoints(directory: Path, n: int, timeout_s: float) -> int:
    """Block until ``results.jsonl`` holds >= n records (or time out)."""
    deadline = time.monotonic() + timeout_s
    results = directory / "results.jsonl"
    while time.monotonic() < deadline:
        if results.exists():
            count = len(results.read_text().splitlines())
            if count >= n:
                return count
        time.sleep(0.1)
    return 0


def wait_for_manifest(directory: Path, timeout_s: float) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if (directory / "manifest.json").exists():
            return True
        time.sleep(0.2)
    return False


async def archive_endpoints(port: int, artifacts: Path) -> None:
    client = ServeClient("127.0.0.1", port)
    status = await client.status()
    (artifacts / "status.json").write_text(
        json.dumps(status, indent=2, sort_keys=True) + "\n"
    )
    (artifacts / "metrics.prom").write_text(await client.metrics_text())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--artifacts", default=None,
        help="directory to copy /status, /metrics and the campaign "
             "manifest into",
    )
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    state = workdir / "state"

    # Phase 1: overlapping sweeps against a live server.
    first = LocalServer(state_dir=str(state), jobs=args.jobs)
    first.start()
    print(f"[ok]   server up on port {first.port}")
    rc = check_overlap(asyncio.run(overlapping_sweeps(first.port)))
    if rc:
        first.stop()
        return rc

    # Phase 2: campaign submitted, then SIGKILL mid-run.
    asyncio.run(submit_campaign_detached(first.port))
    directory = campaign_dir(state)
    kept = wait_for_checkpoints(directory, 1, timeout_s=120.0)
    if not kept:
        first.stop()
        return fail("campaign produced no checkpoint within the budget")
    first.kill()
    print(f"[ok]   SIGKILLed the server after {kept} checkpoint(s)")
    if (directory / "manifest.json").exists():
        return fail("campaign finished before the kill — nothing resumed")

    # Phase 3: restart on the same state dir; auto-resume finishes it.
    second = LocalServer(state_dir=str(state), jobs=args.jobs)
    second.start()
    print(f"[ok]   restarted on port {second.port}")
    if not wait_for_manifest(directory, timeout_s=300.0):
        second.stop()
        return fail("resumed campaign did not finish within the budget")
    manifest = json.loads((directory / "manifest.json").read_text())
    resumed_digest = manifest["aggregate_digest"]
    print(f"[ok]   resume completed: aggregate {resumed_digest[:16]}")

    # Phase 4: uninterrupted oracle in this process.
    straight = run_campaign(
        str(workdir / "straight"),
        spec=CampaignSpec.from_dict(CAMPAIGN_SPEC),
        jobs=args.jobs,
        telemetry=False,
    )
    if straight.aggregate != resumed_digest:
        second.stop()
        return fail(
            f"resume identity broken: resumed {resumed_digest[:16]} != "
            f"uninterrupted {straight.aggregate[:16]}"
        )
    print("[ok]   resumed aggregate identical to uninterrupted run")

    # Phase 5: live endpoints + graceful shutdown.
    if args.artifacts:
        artifacts = Path(args.artifacts)
        artifacts.mkdir(parents=True, exist_ok=True)
        asyncio.run(archive_endpoints(second.port, artifacts))
        shutil.copy2(directory / "manifest.json", artifacts / "manifest.json")
        print(f"[ok]   artifacts archived to {artifacts}")
    code = second.stop()
    if code != 0:
        return fail(f"graceful shutdown exit code {code}")
    print("[ok]   graceful shutdown exit 0")
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""A8: NoC abstraction fidelity — validates the analytic substitution."""

from conftest import run_once

from repro.experiments import run_a8_noc_fidelity


def test_a8_noc_fidelity(benchmark):
    result = run_once(benchmark, run_a8_noc_fidelity, horizon_us=60_000.0)
    # The headline throughput must agree within 2% between NoC models.
    assert result.scalars["throughput_delta_pct"] < 2.0
    assert all(row[5] == 0.0 for row in result.rows)
